//! **Design ablation (the paper's kernel signature)**: in-kernel
//! triangulation vs host-precomputed depth tables.
//!
//! The original `setTwo` kernel receives precomputed `edge` / `firstedge` /
//! `gpuPointArray` arrays — the triangulation inputs were partially built on
//! the host and shipped over PCIe. This ablation brackets that design
//! space: triangulate entirely on-device (compute-heavy, transfer-light) or
//! ship the complete per-(pixel, step) depth table (transfer-heavy,
//! compute-light, plus a host-side table-building cost modeled on the
//! E5630).
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_depth_table`

use cuda_sim::{Cost, Device, DeviceProps, HostProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, GpuOptions, Layout, Triangulation};

fn main() {
    let cfg = standard_config();
    let host = HostProps::xeon_e5630();
    println!("depth-table ablation — in-kernel vs host-precomputed triangulation\n");
    let mut rows = Vec::new();
    for mb in [2.1f64, 5.2] {
        let w = Workload::of_megabytes(mb, 606);
        let mut reference: Option<Vec<f64>> = None;
        for (name, tri) in [
            ("in-kernel", Triangulation::InKernel),
            ("host tables", Triangulation::HostTables),
        ] {
            let device = Device::new(DeviceProps::tesla_m2070());
            let mut source = w.source();
            let out = gpu::reconstruct_with_options(
                &device,
                &mut source,
                &w.scan.geometry,
                &cfg,
                GpuOptions {
                    layout: Layout::Flat1d,
                    triangulation: tri,
                    ..GpuOptions::default()
                },
            )
            .expect("run");
            match &reference {
                None => reference = Some(out.image.data.clone()),
                Some(r) => assert_eq!(r, &out.image.data, "modes diverge"),
            }
            // Host-side table building runs on one E5630 core.
            let host_s = host.kernel_time(
                &Cost {
                    flops: out.host_table_flops,
                    ..Cost::default()
                },
                1,
            );
            rows.push(vec![
                w.label.clone(),
                name.to_string(),
                ms(out.elapsed_s + host_s),
                ms(out.meters.compute_time_s),
                ms(out.meters.comm_time_s),
                ms(host_s),
            ]);
        }
    }
    print_table(
        &[
            "dataset",
            "triangulation",
            "total (ms)",
            "kernel (ms)",
            "transfer (ms)",
            "host prep (ms)",
        ],
        &rows,
    );
    println!(
        "\nthe depth table doubles the shipped bytes and moves the \
         triangulation onto one slow CPU core — on this workload the paper's \
         in-kernel choice wins, which is why its kernel computes \
         device_pixel_xyz_to_depth on the GPU."
    );
}
