//! **Fig 8 of the paper** (and the §IV headline): CPU vs GPU total running
//! time across data-set sizes.
//!
//! The paper sweeps 2.1 / 2.7 / 3.6 / 5.2 GB beamline scans and reports the
//! GPU finishing in 25–30 % of the CPU time, with a much flatter growth
//! curve. This binary reproduces the sweep at 1/1000 scale on the
//! calibrated virtual-time models.
//!
//! Run: `cargo run --release -p laue-bench --bin fig8_datasize`

use laue_bench::{assert_same_image, ms, print_table, standard_config, Workload};
use laue_core::gpu::Layout;
use laue_pipeline::Engine;

fn main() {
    let cfg = standard_config();
    println!("Fig 8 reproduction — data-size sweep (1/1000 scale), virtual E5630 vs M2070\n");
    let mut rows = Vec::new();
    let mut first_pair: Option<(f64, f64)> = None;
    let mut last_pair = (0.0f64, 0.0f64);
    for w in Workload::fig8_set() {
        let cpu = w.run(&cfg, Engine::CpuSeq);
        let gpu = w.run(
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        assert_same_image(&cpu, &gpu);
        let ratio = gpu.total_time_s / cpu.total_time_s;
        rows.push(vec![
            w.label.clone(),
            format!("{}×{}", w.side(), w.side()),
            ms(cpu.total_time_s),
            ms(gpu.total_time_s),
            ms(gpu.comm_time_s),
            ms(gpu.compute_time_s),
            format!("{:.1} %", ratio * 100.0),
        ]);
        if first_pair.is_none() {
            first_pair = Some((cpu.total_time_s, gpu.total_time_s));
        }
        last_pair = (cpu.total_time_s, gpu.total_time_s);
    }
    print_table(
        &[
            "dataset",
            "detector",
            "CPU (ms)",
            "GPU (ms)",
            "GPU xfer (ms)",
            "GPU kern (ms)",
            "GPU/CPU",
        ],
        &rows,
    );
    let (cpu0, gpu0) = first_pair.unwrap();
    let (cpu3, gpu3) = last_pair;
    println!(
        "\nheadline: at the largest size the GPU needs {:.1} % of the CPU time \
         (paper: 25–30 %).",
        100.0 * gpu3 / cpu3
    );
    println!(
        "scalability: from the smallest to the largest set the CPU time grows \
         {:.2}×, the GPU time only {:.2}× — the flatter GPU curve of Fig 8.",
        cpu3 / cpu0,
        gpu3 / gpu0
    );
}
