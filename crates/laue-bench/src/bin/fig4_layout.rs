//! **Fig 4 of the paper**: performance comparison between the 1-D array and
//! 3-D (pointer-table) array implementations.
//!
//! The paper ran one "5 GB" dataset through both designs and found the 1-D
//! flat layout faster because the 3-D design ships extra pointer tables
//! (and pays per-allocation transfers). This binary reproduces that
//! comparison on the 1/1000-scale 5.2 MB workload and prints where the gap
//! comes from.
//!
//! Run: `cargo run --release -p laue-bench --bin fig4_layout`

use laue_bench::{assert_same_image, ms, print_table, standard_config, Workload};
use laue_core::gpu::Layout;
use laue_pipeline::Engine;

fn main() {
    let w = Workload::of_megabytes(5.2, 404);
    let cfg = standard_config();
    println!(
        "Fig 4 reproduction — {} stack ({}×{}×{} px), virtual M2070\n",
        w.label,
        w.scan.geometry.wire.n_steps,
        w.side(),
        w.side()
    );

    let flat = w.run(
        &cfg,
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    );
    let ptr = w.run(
        &cfg,
        Engine::Gpu {
            layout: Layout::Pointer3d,
        },
    );
    assert_same_image(&flat, &ptr);

    print_table(
        &[
            "layout",
            "total (ms)",
            "compute (ms)",
            "transfer (ms)",
            "transfers",
            "slabs",
        ],
        &[&flat, &ptr]
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    ms(r.total_time_s),
                    ms(r.compute_time_s),
                    ms(r.comm_time_s),
                    r.transfers.to_string(),
                    r.n_slabs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n3-D/1-D total-time ratio: {:.2}× — the paper picks the 1-D design \
         (its Fig 4 shows the same ordering).",
        ptr.total_time_s / flat.total_time_s
    );
    println!(
        "gap decomposition: +{} ms transfers, +{} ms compute (pointer chases)",
        ms(ptr.comm_time_s - flat.comm_time_s),
        ms(ptr.compute_time_s - flat.compute_time_s),
    );
}
