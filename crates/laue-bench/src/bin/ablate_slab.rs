//! **Design ablation (paper Fig 2)**: rows-per-slab sweep.
//!
//! The paper chunks the input by detector rows so each slab fits the
//! M2070's 6 GB. Slab size trades per-transfer latency (many small slabs)
//! against device memory footprint (few big slabs). This ablation sweeps
//! the slab size on a memory-capped device and shows the trade-off the
//! paper's design navigates.
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_slab`

use cuda_sim::{Device, DeviceProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};

fn main() {
    let w = Workload::of_megabytes(2.1, 777);
    let base_cfg = standard_config();
    println!(
        "slab-size ablation — {} stack on a 64 MiB-capped device\n",
        w.label
    );
    let device_props = DeviceProps {
        total_mem: 64 * 1024 * 1024,
        ..DeviceProps::tesla_m2070()
    };

    let mut rows = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    for slab_rows in [1usize, 2, 4, 8, 16, 32, 0] {
        let mut cfg = base_cfg.clone();
        cfg.rows_per_slab = if slab_rows == 0 {
            None
        } else {
            Some(slab_rows)
        };
        let device = Device::new(device_props.clone());
        let mut source = w.source();
        let out =
            match gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d) {
                Ok(out) => out,
                Err(e) => {
                    rows.push(vec![
                        slab_rows.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("error: {e}"),
                    ]);
                    continue;
                }
            };
        match &reference {
            None => reference = Some(out.image.data.clone()),
            Some(r) => assert_eq!(r, &out.image.data, "slab size changed the answer"),
        }
        rows.push(vec![
            if slab_rows == 0 {
                format!("auto({})", out.rows_per_slab)
            } else {
                slab_rows.to_string()
            },
            out.n_slabs.to_string(),
            ms(out.elapsed_s),
            ms(out.meters.comm_time_s),
            out.meters.transfers.to_string(),
            format!("{:.1} MiB", out.peak_device_mem as f64 / (1024.0 * 1024.0)),
        ]);
    }
    print_table(
        &[
            "rows/slab",
            "slabs",
            "total (ms)",
            "transfer (ms)",
            "transfers",
            "peak dev mem",
        ],
        &rows,
    );
    println!(
        "\nsmall slabs pay PCIe latency per transfer; big slabs need device \
         memory. The auto fit picks the largest slab that fits (the paper's \
         Fig 2 policy)."
    );
}
