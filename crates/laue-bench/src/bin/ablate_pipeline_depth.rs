//! **Extension ablation (related work, §II)**: ring depth of the
//! copy/compute pipeline.
//!
//! The paper's related-work section surveys systems that overlap PCIe
//! transfers with kernels but its own pipeline is strictly serial (copy →
//! kernel → copy). This ablation sweeps the ring depth k of the three-stream
//! slab pipeline — k = 1 is the paper's serial schedule, k = 2 classic
//! double buffering, deeper rings keep more slabs in flight — and measures
//! how much of the transfer time each depth hides.
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_pipeline_depth`

use cuda_sim::{Device, DeviceProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, GpuOptions, PipelineDepth};

fn main() {
    let w = Workload::of_megabytes(5.2, 321);
    println!("pipeline ring-depth ablation — {} stack\n", w.label);
    // Cap the device so the stack streams in several slabs.
    let props = DeviceProps {
        total_mem: 32 * 1024 * 1024,
        ..DeviceProps::tesla_m2070()
    };
    let mut cfg = standard_config();
    cfg.rows_per_slab = Some(8);

    let mut serial_elapsed = 0.0;
    let mut serial_image = Vec::new();
    let mut rows = Vec::new();
    for k in [1usize, 2, 3, 4] {
        let device = Device::new(props.clone());
        let mut source = w.source();
        let out = gpu::reconstruct_pipelined(
            &device,
            &mut source,
            &w.scan.geometry,
            &cfg,
            GpuOptions::default(),
            PipelineDepth(k),
            None,
        )
        .expect("reconstruction");
        if k == 1 {
            serial_elapsed = out.elapsed_s;
            serial_image = out.image.data.clone();
        } else {
            assert_eq!(
                serial_image, out.image.data,
                "ring depth {k} diverges from serial — ablation invalid"
            );
            assert!(
                out.elapsed_s < serial_elapsed,
                "ring depth {k} must beat the serial pipeline \
                 ({} vs {} s)",
                out.elapsed_s,
                serial_elapsed
            );
        }
        rows.push(vec![
            k.to_string(),
            out.pipeline_depth.to_string(),
            out.n_slabs.to_string(),
            ms(out.meters.comm_time_s),
            ms(out.meters.compute_time_s),
            ms(out.elapsed_s),
            format!(
                "{:.1} %",
                100.0 * (serial_elapsed - out.elapsed_s) / serial_elapsed
            ),
        ]);
    }
    print_table(
        &[
            "ring k",
            "used",
            "slabs",
            "xfer (ms)",
            "kernel (ms)",
            "elapsed (ms)",
            "saved",
        ],
        &rows,
    );
    println!(
        "\nthe ring hides kernel time behind transfers, but the shared \
         half-duplex PCIe bus meters uploads and downloads against each \
         other: k = 2 already drives the link to 100 % occupancy, so the \
         elapsed floor is the total transfer time and deeper rings change \
         nothing — the optimisation the paper leaves on the table is \
         real but bus-bound, not free."
    );
}
