//! Reconstruction-as-a-service benchmark: saturation sweep over arrival
//! rate × batching on/off × fleet size (`BENCH_serve.json`).
//!
//! Times are **virtual seconds** from the calibrated M2070/E5630 models
//! over the fleet clock, so goodput and latency percentiles are
//! deterministic and machine-independent; `wall_clock_s` is the real
//! time the harness took, for CI trend-watching only.
//!
//! Run: `cargo run --release -p laue-bench --bin bench_serve -- \
//!       [--quick] [--out BENCH_serve.json] [--check ci/perf_smoke_baseline.txt]`
//!
//! `--check FILE` shares `ci/perf_smoke_baseline.txt` with the other
//! bench bins: the **eighth** ratio line is the minimum allowed
//! batched/unbatched goodput ratio on the small-job-heavy burst mix, the
//! **ninth** the maximum allowed p99/p50 latency ratio at the ~70 %-load
//! operating point (batching on). The process exits non-zero when either
//! regresses.

use std::fmt::Write as _;
use std::time::Instant;

use laue_serve::{
    serve, AdmissionPolicy, Arrival, BatchPolicy, ServeConfig, ServeReport, WorkloadSpec,
};

/// The small-job-heavy mix every headline number uses: 3 tenants, 90 %
/// small quick-look jobs, half interactive.
fn base_spec(n_jobs: usize, rate_hz: f64) -> WorkloadSpec {
    WorkloadSpec::small_heavy(n_jobs, rate_hz, 42)
}

/// Serve one open-loop run of the base mix at `rate_hz`.
fn run_at(cfg: &ServeConfig, n_jobs: usize, rate_hz: f64) -> ServeReport {
    let spec = base_spec(n_jobs, rate_hz);
    serve(cfg, spec.generate()).expect("serve run")
}

fn report_row(label: &str, rate_hz: f64, r: &ServeReport) -> String {
    format!(
        "    {{\"label\": \"{label}\", \"offered_rate_hz\": {rate_hz:.6}, \
         \"completed\": {}, \"goodput_jobs_per_s\": {:.6}, \
         \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"makespan_s\": {:.9}, \
         \"utilization\": {:.6}, \"preemptions\": {}, \"migrations\": {}, \
         \"fused_jobs\": {}, \"batches\": {}, \"mean_batch\": {:.3}, \
         \"singles\": {}, \"cache_host_hits\": {}, \"cache_host_misses\": {}, \
         \"cache_device_hits\": {}, \"cache_device_misses\": {}}}",
        r.outcomes.len(),
        r.goodput_jobs_per_s(),
        r.p50_s(),
        r.p99_s(),
        r.makespan_s,
        r.utilization,
        r.preemptions,
        r.migrations,
        r.batch.fused_jobs,
        r.batch.batches,
        r.batch.mean_batch(),
        r.batch.singles,
        r.cache.host_hits,
        r.cache.host_misses,
        r.cache.device_hits,
        r.cache.device_misses,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    let started = Instant::now();

    let n_jobs = if quick { 32 } else { 96 };
    // A burst rate far above any fleet capacity: the whole budget is
    // queued almost instantly, so goodput measures pure service capacity.
    let burst_hz = 1.0e6;
    let cfg = ServeConfig::for_tenants(3);

    // 1. The headline gate pair: the same saturating small-heavy burst
    // through the fused batch former vs per-job FIFO dispatch. Both runs
    // complete identical job sets (the identity suite proves the outputs
    // are bit-identical to standalone runs), so the goodput ratio is
    // exactly the batching speedup.
    let batched = run_at(&cfg, n_jobs, burst_hz);
    let mut fifo_cfg = cfg.clone();
    fifo_cfg.batch = BatchPolicy::unbatched();
    let unbatched = run_at(&fifo_cfg, n_jobs, burst_hz);
    assert_eq!(
        batched.outcomes.len(),
        unbatched.outcomes.len(),
        "both modes must serve the whole burst"
    );
    assert!(
        batched.batch.fused_jobs > 0,
        "the small-heavy burst must form fused batches"
    );
    let goodput_ratio = batched.goodput_jobs_per_s() / unbatched.goodput_jobs_per_s();
    // Capacity: completed jobs per fleet second at saturation, batching
    // on — the denominator of every load fraction below.
    let capacity_hz = batched.goodput_jobs_per_s();

    // 2. Saturation sweep: offered load as a fraction of measured
    // capacity, batching on and off. Latency percentiles come from the
    // same deterministic fleet timeline, so the knee of the p99 curve is
    // reproducible bit-for-bit.
    let fractions: &[f64] = if quick {
        &[0.5, 0.7, 1.1]
    } else {
        &[0.3, 0.5, 0.7, 0.9, 1.1]
    };
    let mut sweep_rows = Vec::new();
    let mut at_70: Option<ServeReport> = None;
    for &frac in fractions {
        let rate = frac * capacity_hz;
        let on = run_at(&cfg, n_jobs, rate);
        let off = run_at(&fifo_cfg, n_jobs, rate);
        sweep_rows.push(report_row(&format!("load-{frac:.1}-batched"), rate, &on));
        sweep_rows.push(report_row(&format!("load-{frac:.1}-fifo"), rate, &off));
        if (frac - 0.7).abs() < 1e-9 {
            at_70 = Some(on);
        }
    }
    let at_70 = at_70.expect("the sweep always includes the 0.7 operating point");
    let tail_ratio = at_70.p99_s() / at_70.p50_s();

    // 3. Fleet-size sweep: the same burst over 1, 2, and 4 devices
    // (two per chassis), batching on — how capacity and the tail scale
    // with devices when the PCIe bus and host CPU are shared pairwise.
    let mut fleet_rows = Vec::new();
    for &n_dev in &[1usize, 2, 4] {
        let mut fleet_cfg = cfg.clone();
        fleet_cfg.n_devices = n_dev;
        fleet_cfg.devices_per_chassis = 2;
        let r = run_at(&fleet_cfg, n_jobs, burst_hz);
        fleet_rows.push(report_row(&format!("fleet-{n_dev}"), burst_hz, &r));
    }

    // 4. Admission control under overload: the same burst with a backlog
    // bound sized to half the burst's service demand. Some arrivals are
    // turned away with a reason; the jobs the service does accept see a
    // far shorter queue.
    let mut bounded_cfg = cfg.clone();
    bounded_cfg.admission = AdmissionPolicy {
        max_tenant_depth: usize::MAX,
        max_backlog_s: (n_jobs as f64 / capacity_hz) * 0.25,
    };
    let bounded = run_at(&bounded_cfg, n_jobs, burst_hz);
    assert!(
        !bounded.rejected.is_empty(),
        "a burst against a bounded backlog must shed load"
    );
    assert_eq!(
        bounded.admission.offered() as usize,
        n_jobs,
        "every arrival is judged"
    );
    assert!(
        bounded.p99_s() < batched.p99_s(),
        "shedding load must shorten the accepted jobs' tail \
         ({:.4} s vs {:.4} s unbounded)",
        bounded.p99_s(),
        batched.p99_s()
    );

    // 5. Closed-loop clients: each completion triggers the next
    // submission after a think time, so the offered load self-regulates
    // at the service's pace instead of queueing without bound.
    let mut closed_spec = base_spec(n_jobs, burst_hz);
    closed_spec.arrival = Arrival::Closed {
        clients: 4,
        think_s: 1e-4,
    };
    let closed = serve(&cfg, closed_spec.generate()).expect("closed-loop run");
    assert_eq!(
        closed.outcomes.len(),
        n_jobs,
        "the closed loop serves its whole budget"
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"generated_by\": \"bench_serve\",").unwrap();
    writeln!(json, "  \"quick\": {quick},").unwrap();
    writeln!(json, "  \"n_jobs\": {n_jobs},").unwrap();
    writeln!(
        json,
        "  \"workload\": \"small-heavy (90% small, 3 tenants)\","
    )
    .unwrap();
    writeln!(json, "  \"fleet\": \"2x tesla-m2070, shared chassis\",").unwrap();
    writeln!(json, "  \"capacity_jobs_per_s\": {capacity_hz:.6},").unwrap();
    writeln!(json, "  \"batching\": {{").unwrap();
    writeln!(
        json,
        "    \"batched_goodput_jobs_per_s\": {:.6},",
        batched.goodput_jobs_per_s()
    )
    .unwrap();
    writeln!(
        json,
        "    \"unbatched_goodput_jobs_per_s\": {:.6},",
        unbatched.goodput_jobs_per_s()
    )
    .unwrap();
    writeln!(json, "    \"goodput_ratio\": {goodput_ratio:.6},").unwrap();
    writeln!(json, "    \"fused_jobs\": {},", batched.batch.fused_jobs).unwrap();
    writeln!(json, "    \"batches\": {},", batched.batch.batches).unwrap();
    writeln!(
        json,
        "    \"mean_batch\": {:.3},",
        batched.batch.mean_batch()
    )
    .unwrap();
    writeln!(json, "    \"max_batch\": {}", batched.batch.max_batch).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"tail_at_70pct\": {{").unwrap();
    writeln!(json, "    \"offered_rate_hz\": {:.6},", 0.7 * capacity_hz).unwrap();
    writeln!(json, "    \"utilization\": {:.6},", at_70.utilization).unwrap();
    writeln!(json, "    \"p50_s\": {:.9},", at_70.p50_s()).unwrap();
    writeln!(json, "    \"p99_s\": {:.9},", at_70.p99_s()).unwrap();
    writeln!(json, "    \"p99_over_p50\": {tail_ratio:.6}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"saturation_sweep\": [").unwrap();
    writeln!(json, "{}", sweep_rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"fleet_sweep\": [").unwrap();
    writeln!(json, "{}", fleet_rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"admission\": {{").unwrap();
    writeln!(
        json,
        "    \"max_backlog_s\": {:.9},",
        bounded_cfg.admission.max_backlog_s
    )
    .unwrap();
    writeln!(json, "    \"offered\": {},", bounded.admission.offered()).unwrap();
    writeln!(json, "    \"accepted\": {},", bounded.admission.accepted).unwrap();
    writeln!(
        json,
        "    \"rejected_depth\": {},",
        bounded.admission.rejected_depth
    )
    .unwrap();
    writeln!(
        json,
        "    \"rejected_backlog\": {},",
        bounded.admission.rejected_backlog
    )
    .unwrap();
    writeln!(json, "    \"accepted_p99_s\": {:.9},", bounded.p99_s()).unwrap();
    writeln!(json, "    \"unbounded_p99_s\": {:.9}", batched.p99_s()).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"closed_loop\": {{").unwrap();
    writeln!(json, "    \"clients\": 4,").unwrap();
    writeln!(json, "    \"completed\": {},", closed.outcomes.len()).unwrap();
    writeln!(
        json,
        "    \"goodput_jobs_per_s\": {:.6},",
        closed.goodput_jobs_per_s()
    )
    .unwrap();
    writeln!(json, "    \"p50_s\": {:.9},", closed.p50_s()).unwrap();
    writeln!(json, "    \"p99_s\": {:.9}", closed.p99_s()).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"wall_clock_s\": {:.3}",
        started.elapsed().as_secs_f64()
    )
    .unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path} ({} bytes)", json.len());
    println!(
        "batching: {:.2} jobs/s fused vs {:.2} jobs/s FIFO (ratio {goodput_ratio:.3}, \
         mean batch {:.2})",
        batched.goodput_jobs_per_s(),
        unbatched.goodput_jobs_per_s(),
        batched.batch.mean_batch(),
    );
    println!(
        "tail at 70% load: p50 {:.4} s, p99 {:.4} s (ratio {tail_ratio:.2}, \
         utilization {:.2})",
        at_70.p50_s(),
        at_70.p99_s(),
        at_70.utilization,
    );
    println!(
        "admission under overload: {}/{} accepted, accepted p99 {:.4} s vs \
         {:.4} s unbounded",
        bounded.admission.accepted,
        bounded.admission.offered(),
        bounded.p99_s(),
        batched.p99_s(),
    );

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        let budgets: Vec<f64> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse()
                    .unwrap_or_else(|_| panic!("--check: bad ratio line {l:?} in {path}"))
            })
            .collect();
        let Some(&goodput_floor) = budgets.get(7) else {
            panic!("--check: {path} holds no batching goodput floor (eighth ratio)");
        };
        if goodput_ratio < goodput_floor {
            eprintln!(
                "PERF REGRESSION: batched/unbatched goodput ratio {goodput_ratio:.4} \
                 fell below the committed floor {goodput_floor:.4} ({path}) — \
                 fused-launch batching stopped paying for itself"
            );
            std::process::exit(1);
        }
        println!(
            "perf gate: batched/unbatched goodput ratio {goodput_ratio:.4} \
             above floor {goodput_floor:.4}"
        );
        let Some(&tail_budget) = budgets.get(8) else {
            panic!("--check: {path} holds no tail-latency budget (ninth ratio)");
        };
        if tail_ratio > tail_budget {
            eprintln!(
                "PERF REGRESSION: p99/p50 latency ratio {tail_ratio:.4} at the \
                 70% operating point exceeds the committed budget {tail_budget:.4} \
                 ({path}) — the scheduler stopped protecting the tail"
            );
            std::process::exit(1);
        }
        println!("perf gate: p99/p50 ratio {tail_ratio:.4} within budget {tail_budget:.4}");
    }
}
