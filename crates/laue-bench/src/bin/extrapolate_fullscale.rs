//! **Full-scale extrapolation**: what would the paper's *actual* 2.1–5.2 GB
//! runs take on the modeled machines?
//!
//! The scaled sweeps (fig8_datasize) execute every simulated thread, which
//! is only feasible at MB scale. But the cost model is linear in the meters,
//! so per-pair costs measured on a scaled run extrapolate exactly to the
//! paper's true sizes — giving absolute seconds to set against the paper's
//! Fig 8 y-axis (which plots seconds in the few-hundreds for the CPU).
//!
//! Run: `cargo run --release -p laue-bench --bin extrapolate_fullscale`

use cuda_sim::{Cost, Device, DeviceProps, HostProps};
use laue_bench::{print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};
use laue_core::ScanView;
use laue_wire::builder::dims_for_bytes;

fn main() {
    let cfg = standard_config();
    println!("full-scale extrapolation — per-pair costs from a measured 5.2 MB run\n");

    // Measure per-pair work on the scaled run.
    let w = Workload::of_megabytes(5.2, 707);
    let g = w.scan.geometry.clone();
    let (rows, cols, steps) = (g.detector.n_rows, g.detector.n_cols, g.wire.n_steps);
    let pairs_scaled = (rows * cols * (steps - 1)) as f64;

    let view = ScanView::new(&w.scan.images, steps, rows, cols).unwrap();
    let cpu = laue_core::cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let device = Device::new(DeviceProps::tesla_m2070());
    let mut source = w.source();
    let gpu_out =
        gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d).unwrap();

    // Per-pair meters.
    let cpu_flops_pp = cpu.cost.flops as f64 / pairs_scaled;
    let cpu_bytes_pp = cpu.cost.mem_bytes as f64 / pairs_scaled;
    let k = &gpu_out.meters.kernel_cost;
    let gpu_flops_pp = k.flops as f64 / pairs_scaled;
    let gpu_bytes_pp = k.mem_bytes as f64 / pairs_scaled;
    let gpu_atomics_pp = k.atomic_ops as f64 / pairs_scaled;
    // PCIe bytes per *pixel* (input image + pixel table + output bins).
    let pixels_scaled = (rows * cols) as f64;
    let pcie_pp = (gpu_out.meters.h2d_bytes + gpu_out.meters.d2h_bytes) as f64 / pixels_scaled;

    println!(
        "measured per pair: CPU {cpu_flops_pp:.0} flops / {cpu_bytes_pp:.0} B; \
         GPU {gpu_flops_pp:.0} flops / {gpu_bytes_pp:.0} B / {gpu_atomics_pp:.2} atomics; \
         PCIe {pcie_pp:.0} B per pixel\n"
    );

    let host = HostProps::xeon_e5630();
    let dev = DeviceProps::tesla_m2070();
    let mut table = Vec::new();
    for gb in [2.1f64, 2.7, 3.6, 5.2] {
        let bytes = (gb * 1024.0 * 1024.0 * 1024.0) as u64;
        let side = dims_for_bytes(bytes, steps) as f64;
        let pixels = side * side;
        let pairs = pixels * (steps - 1) as f64;

        let cpu_cost = Cost {
            flops: (cpu_flops_pp * pairs) as u64,
            mem_bytes: (cpu_bytes_pp * pairs) as u64,
            ..Cost::default()
        };
        let cpu_s = host.kernel_time(&cpu_cost, 1);

        let gpu_cost = Cost {
            flops: (gpu_flops_pp * pairs) as u64,
            mem_bytes: (gpu_bytes_pp * pairs) as u64,
            atomic_ops: (gpu_atomics_pp * pairs) as u64,
            ..Cost::default()
        };
        // Slabs: a 6 GB device minus headroom over the per-row working set.
        let kernel_s = dev.kernel_time(&gpu_cost);
        let pcie_bytes = pcie_pp * pixels;
        let comm_s = pcie_bytes / dev.pcie_bw; // latency negligible at GB scale
        let gpu_s = kernel_s + comm_s;

        table.push(vec![
            format!("{gb:.1} GB"),
            format!("{:.0}×{:.0}", side, side),
            format!("{cpu_s:.1}"),
            format!("{gpu_s:.1}"),
            format!("{:.1}", comm_s),
            format!("{:.1} %", 100.0 * gpu_s / cpu_s),
        ]);
    }
    print_table(
        &[
            "dataset",
            "detector",
            "CPU (s)",
            "GPU (s)",
            "GPU xfer (s)",
            "GPU/CPU",
        ],
        &table,
    );
    println!(
        "\nat the paper's true scale the modeled reconstruction takes ≈ 1 min \
         (CPU) vs ≈ 13 s (GPU) for 5.2 GB, with the ratio pinned at ≈ 24 %. \
         The paper's absolute times also include HDF5 reading and host-side \
         assembly (identical for both versions), which this kernel-only \
         extrapolation deliberately excludes."
    );
}
