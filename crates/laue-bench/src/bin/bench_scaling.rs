//! Multi-node scaling study: strong and weak scaling of the distributed
//! `gpu-cluster` engine over a metered interconnect (`BENCH_scaling.json`).
//!
//! Times are **virtual seconds** from the calibrated M2070/E5630 models and
//! the interconnect presets, so the curves are deterministic and
//! machine-independent. Every cluster run is asserted bit-identical to the
//! single-GPU reference before its time is recorded — a scaling curve over
//! diverging results is meaningless.
//!
//! Run: `cargo run --release -p laue-bench --bin bench_scaling -- \
//!       [--quick] [--out BENCH_scaling.json] [--check ci/perf_smoke_baseline.txt]`
//!
//! `--check FILE` shares `ci/perf_smoke_baseline.txt` with `bench_report`:
//! the **sixth** ratio line is the minimum allowed 8-node strong-scaling
//! efficiency, the **seventh** the maximum allowed overlap-on/off
//! total-time ratio at 8 nodes. The process exits non-zero when either
//! regresses.

use std::fmt::Write as _;
use std::time::Instant;

use cuda_sim::InterconnectProps;
use laue_bench::{devices, Workload, N_STEPS};
use laue_core::{ReconstructionConfig, ReductionTopology};
use laue_pipeline::{Engine, Pipeline, RunReport};
use laue_wire::builder::dims_for_bytes;

/// One cluster run with an explicit fabric and reduction schedule.
fn run_cluster(
    w: &Workload,
    cfg: &ReconstructionConfig,
    net: InterconnectProps,
    nodes: usize,
    topology: ReductionTopology,
    overlap: bool,
) -> RunReport {
    let p = Pipeline {
        interconnect: net,
        reduction: Some(topology),
        overlap: Some(overlap),
        ..Pipeline::default()
    };
    let mut source = w.source();
    p.run_source(
        &mut source,
        &w.scan.geometry,
        cfg,
        Engine::GpuCluster {
            nodes,
            devices_per_node: 1,
        },
    )
    .expect("cluster run")
}

fn cluster_row(n: usize, r: &RunReport, efficiency: f64) -> String {
    let c = r.cluster.as_ref().expect("cluster accounting");
    format!(
        "    {{\"nodes\": {n}, \"total_s\": {:.9}, \"compute_s\": {:.9}, \
         \"reduction_exposed_s\": {:.9}, \"net_wait_s\": {:.9}, \
         \"net_bytes\": {}, \"net_messages\": {}, \"efficiency\": {:.6}}}",
        r.total_time_s,
        c.compute_s,
        c.reduction_exposed_s,
        c.net_wait_s,
        c.net_bytes,
        c.net_messages,
        efficiency
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    let started = Instant::now();

    // The headline stack is Fig 8's largest (5.2 MB at 1/1000 scale);
    // slabs small enough that every node commits several reduction
    // segments — the overlap schedule needs a compute tail to hide behind.
    let w = if quick {
        Workload::of_megabytes(1.0, 100)
    } else {
        Workload::of_megabytes(5.2, 103)
    };
    // The 1/1000 data scale shrinks compute a thousandfold, but the
    // standard 200-bin depth window keeps the reduction payload (the full
    // depth image) at its full-scale size — which would drown the study in
    // fabric drain no real deployment sees. Narrowing the window to 50
    // bins scales the image with the data and restores the paper-scale
    // compute/communication balance; see EXPERIMENTS.md.
    let mut cfg = ReconstructionConfig::new(-4000.0, 4000.0, 50);
    cfg.rows_per_slab = Some(if quick { 4 } else { 8 });
    let net = InterconnectProps::nvlink_class();
    let gate_nodes = 8usize;
    let strong_counts: &[usize] = if quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 12]
    };

    // Single-GPU reference for bit-identity.
    let mut source = w.source();
    let reference = Pipeline::default()
        .run_source(&mut source, &w.scan.geometry, &cfg, Engine::GpuPipelined)
        .expect("reference run");

    // 1. Strong scaling: the same stack split over 1..12 nodes, tree
    // reduction overlapped with the compute tail.
    let mut strong_rows = Vec::new();
    let mut strong = Vec::new();
    for &n in strong_counts {
        let r = run_cluster(&w, &cfg, net.clone(), n, ReductionTopology::Tree, true);
        assert_eq!(
            r.image.data, reference.image.data,
            "{} node(s) diverge from the single-GPU reference",
            n
        );
        let efficiency = if strong.is_empty() {
            1.0
        } else {
            let (_, t1): &(usize, f64) = &strong[0];
            t1 / (n as f64 * r.total_time_s)
        };
        strong_rows.push(cluster_row(n, &r, efficiency));
        strong.push((n, r.total_time_s));
    }
    let t1 = strong[0].1;
    let t_gate = strong
        .iter()
        .find(|(n, _)| *n == gate_nodes)
        .expect("gate node count in the strong sweep")
        .1;
    let strong_efficiency = t1 / (gate_nodes as f64 * t_gate);

    // 2. Weak scaling: per-node work held constant by scaling detector
    // rows with the node count (cols fixed, one seed for every size), so
    // W_n partitions into n shards each structurally identical to W_1.
    // Efficiency is t_single(W_n) / (n * t_n(W_n)) — the same workload on
    // both sides of the ratio, which makes 1.0 a structural ceiling. (The
    // old per-size byte targets rounded to square detectors and reseeded
    // per size, so a 2-node run could report ~1.03 "efficiency" against a
    // mismatched 1-node reference.)
    let mut weak_rows = Vec::new();
    let per_node_mb = if quick { 0.25 } else { 0.65 };
    let base = dims_for_bytes((per_node_mb * 1024.0 * 1024.0) as u64, N_STEPS);
    for &n in &[1usize, 2, 4, 8] {
        let wn = Workload::of_dims(base * n, base, 200);
        let mut source = wn.source();
        let single = Pipeline::default()
            .run_source(&mut source, &wn.scan.geometry, &cfg, Engine::GpuPipelined)
            .expect("weak reference run");
        let r = run_cluster(&wn, &cfg, net.clone(), n, ReductionTopology::Tree, true);
        assert_eq!(
            r.image.data, single.image.data,
            "weak-scaling {n} node(s) diverge from the single-GPU reference"
        );
        let efficiency = single.total_time_s / (n as f64 * r.total_time_s);
        assert!(
            efficiency <= 1.0 + 1e-9,
            "weak-scaling efficiency {efficiency:.4} at {n} node(s) exceeds the \
             structural ceiling — per-node work is no longer normalized"
        );
        weak_rows.push(cluster_row(n, &r, efficiency));
    }

    // 3. Overlap ablation at the gate node count: releasing reduction
    // segments at slab-commit time vs. a barrier after the compute phase.
    // The ratio is the CI gate — overlap must keep paying for itself.
    let on = run_cluster(
        &w,
        &cfg,
        net.clone(),
        gate_nodes,
        ReductionTopology::Tree,
        true,
    );
    let off = run_cluster(
        &w,
        &cfg,
        net.clone(),
        gate_nodes,
        ReductionTopology::Tree,
        false,
    );
    assert_eq!(on.image.data, off.image.data, "overlap changed the bits");
    let overlap_ratio = on.total_time_s / off.total_time_s;

    // 4. Topology ablation at the gate node count: hierarchical tree vs
    // neighbour-relay ring, both overlapped.
    let ring = run_cluster(
        &w,
        &cfg,
        net.clone(),
        gate_nodes,
        ReductionTopology::Ring,
        true,
    );
    assert_eq!(on.image.data, ring.image.data, "ring changed the bits");
    // The origin payload is identical by construction; what the topology
    // changes is how many link traversals each byte pays.
    let byte_hops = |r: &RunReport, topology: ReductionTopology| -> u64 {
        r.cluster
            .as_ref()
            .unwrap()
            .nodes
            .iter()
            .map(|o| o.net_bytes * laue_core::cluster::route_hops(topology, o.node) as u64)
            .sum()
    };
    let tree_byte_hops = byte_hops(&on, ReductionTopology::Tree);
    let ring_byte_hops = byte_hops(&ring, ReductionTopology::Ring);

    // 5. Fabric sweep at the gate node count: the same reduction schedule
    // over each era fabric, exposing how interconnect wait scales with
    // bandwidth and latency.
    let mut fabric_rows = Vec::new();
    for f in devices::fabric_matrix() {
        let r = run_cluster(
            &w,
            &cfg,
            f.clone(),
            gate_nodes,
            ReductionTopology::Tree,
            true,
        );
        assert_eq!(r.image.data, reference.image.data, "{} diverges", f.name);
        let c = r.cluster.as_ref().unwrap();
        fabric_rows.push(format!(
            "    {{\"fabric\": \"{}\", \"bandwidth_gb_s\": {:.3}, \
             \"latency_us\": {:.2}, \"total_s\": {:.9}, \
             \"reduction_exposed_s\": {:.9}, \"net_wait_s\": {:.9}}}",
            f.name,
            f.bandwidth_bytes_per_s / 1e9,
            f.latency_s * 1e6,
            r.total_time_s,
            c.reduction_exposed_s,
            c.net_wait_s
        ));
    }

    let on_c = on.cluster.as_ref().unwrap();
    let off_c = off.cluster.as_ref().unwrap();
    let ring_c = ring.cluster.as_ref().unwrap();
    let mut json = String::from("{\n");
    writeln!(json, "  \"generated_by\": \"bench_scaling\",").unwrap();
    writeln!(json, "  \"quick\": {quick},").unwrap();
    writeln!(json, "  \"workload\": \"{}\",", w.label).unwrap();
    writeln!(json, "  \"interconnect\": \"{}\",", net.name).unwrap();
    writeln!(json, "  \"strong_scaling\": [").unwrap();
    writeln!(json, "{}", strong_rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"weak_scaling\": [").unwrap();
    writeln!(json, "{}", weak_rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"strong_efficiency_at_{gate_nodes}\": {strong_efficiency:.6},"
    )
    .unwrap();
    writeln!(json, "  \"overlap\": {{").unwrap();
    writeln!(json, "    \"nodes\": {gate_nodes},").unwrap();
    writeln!(json, "    \"on_total_s\": {:.9},", on.total_time_s).unwrap();
    writeln!(json, "    \"off_total_s\": {:.9},", off.total_time_s).unwrap();
    writeln!(
        json,
        "    \"on_exposed_s\": {:.9},",
        on_c.reduction_exposed_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"off_exposed_s\": {:.9},",
        off_c.reduction_exposed_s
    )
    .unwrap();
    writeln!(json, "    \"on_over_off\": {overlap_ratio:.6}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"topology\": {{").unwrap();
    writeln!(json, "    \"nodes\": {gate_nodes},").unwrap();
    writeln!(json, "    \"tree_total_s\": {:.9},", on.total_time_s).unwrap();
    writeln!(json, "    \"ring_total_s\": {:.9},", ring.total_time_s).unwrap();
    writeln!(json, "    \"tree_net_bytes\": {},", on_c.net_bytes).unwrap();
    writeln!(json, "    \"ring_net_bytes\": {},", ring_c.net_bytes).unwrap();
    writeln!(json, "    \"tree_byte_hops\": {tree_byte_hops},").unwrap();
    writeln!(json, "    \"ring_byte_hops\": {ring_byte_hops}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"fabrics\": [").unwrap();
    writeln!(json, "{}", fabric_rows.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"wall_clock_s\": {:.3}",
        started.elapsed().as_secs_f64()
    )
    .unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path} ({} bytes)", json.len());
    for (n, t) in &strong {
        println!("strong: {n} node(s) {:.4} s (speedup {:.2}x)", t, t1 / t);
    }
    println!("strong-scaling efficiency at {gate_nodes} nodes: {strong_efficiency:.3}");
    println!(
        "overlap at {gate_nodes} nodes: on {:.4} s vs off {:.4} s (ratio {overlap_ratio:.3})",
        on.total_time_s, off.total_time_s
    );
    println!(
        "topology at {gate_nodes} nodes: tree {:.4} s / {} byte-hops vs ring {:.4} s / {} byte-hops",
        on.total_time_s, tree_byte_hops, ring.total_time_s, ring_byte_hops
    );

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        let budgets: Vec<f64> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse()
                    .unwrap_or_else(|_| panic!("--check: bad ratio line {l:?} in {path}"))
            })
            .collect();
        let Some(&efficiency_floor) = budgets.get(5) else {
            panic!("--check: {path} holds no strong-scaling efficiency floor (sixth ratio)");
        };
        if strong_efficiency < efficiency_floor {
            eprintln!(
                "PERF REGRESSION: {gate_nodes}-node strong-scaling efficiency \
                 {strong_efficiency:.4} fell below the committed floor \
                 {efficiency_floor:.4} ({path}) — the cluster stopped scaling"
            );
            std::process::exit(1);
        }
        println!(
            "perf gate: {gate_nodes}-node efficiency {strong_efficiency:.4} \
             above floor {efficiency_floor:.4}"
        );
        let Some(&overlap_budget) = budgets.get(6) else {
            panic!("--check: {path} holds no overlap-on/off budget (seventh ratio)");
        };
        if overlap_ratio > overlap_budget {
            eprintln!(
                "PERF REGRESSION: overlap-on/off total-time ratio {overlap_ratio:.4} \
                 exceeds the committed budget {overlap_budget:.4} ({path}) — \
                 the reduction stopped hiding behind the compute tail"
            );
            std::process::exit(1);
        }
        println!(
            "perf gate: overlap-on/off ratio {overlap_ratio:.4} within budget {overlap_budget:.4}"
        );
    }
}
