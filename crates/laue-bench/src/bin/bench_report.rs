//! Machine-readable pipeline benchmark: one JSON report covering the
//! CPU/GPU ladder, the ring-depth ablation, and the depth-table cache.
//!
//! Times are **virtual seconds** from the calibrated M2070/E5630 models
//! (deterministic, machine-independent); `wall_clock_s` is the real time
//! the harness itself took, for CI trend-watching only.
//!
//! Run: `cargo run --release -p laue-bench --bin bench_report -- \
//!       [--quick] [--out BENCH_pipeline.json] [--check ci/perf_smoke_baseline.txt]`
//!
//! `--check FILE` turns the report into a perf gate: FILE holds the maximum
//! allowed compact/dense modeled-kernel-time ratio at the ~25 %-active
//! operating point, optionally (second float) the maximum allowed
//! privatized/atomic kernel-time ratio, optionally (third float) the
//! maximum allowed depth-3/serial ring elapsed ratio under the shared-bus
//! model, optionally (fourth float) the maximum allowed
//! plan-auto/best-fixed total-time ratio, and optionally (fifth float) the
//! maximum allowed `--integrity verify`/off total-time ratio (`#` comments
//! allowed); the process exits non-zero if a measured ratio regresses past
//! its budget.

use std::fmt::Write as _;
use std::time::Instant;

use cuda_sim::{Device, DeviceProps};
use laue_bench::{delta_percentile, standard_config, Workload};
use laue_core::cache::TableCacheStats;
use laue_core::gpu::{self, GpuOptions, PipelineDepth};
use laue_core::{AccumulationMode, CompactionMode, IntegrityMode, PlanMode};
use laue_pipeline::{Engine, Pipeline};

fn json_stats(s: &TableCacheStats) -> String {
    format!(
        "{{\"host_hits\": {}, \"host_misses\": {}, \"device_hits\": {}, \
         \"device_misses\": {}, \"evictions\": {}, \"resident_bytes\": {}}}",
        s.host_hits, s.host_misses, s.device_hits, s.device_misses, s.evictions, s.resident_bytes
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    let started = Instant::now();

    // 1. The CPU/GPU ladder over the Fig 8 sizes (one size in quick mode).
    let workloads: Vec<Workload> = if quick {
        vec![Workload::of_megabytes(0.5, 100)]
    } else {
        Workload::fig8_set()
    };
    let cfg = standard_config();
    let pipeline = Pipeline::default();
    let mut ladder = Vec::new();
    let mut ladder_totals = Vec::new(); // (label, cpu_s, gpu_serial_s, gpu_pipe_s)
    for w in &workloads {
        // Every row (and every section below) carries the quick marker so
        // a consumer can never mistake the abbreviated quick ladder for
        // the full Fig 8 one.
        let mut row = format!(
            "    {{\"quick\": {quick}, \"label\": \"{}\", \"bytes\": {}",
            w.label, w.bytes
        );
        let mut cpu_total = 0.0;
        let mut serial = (0.0, 0.0, 0.0); // (total, comm, compute)
        let mut pipe_total = 0.0;
        for (key, engine) in [
            ("cpu_seq", Engine::CpuSeq),
            (
                "gpu_serial",
                Engine::Gpu {
                    layout: laue_core::gpu::Layout::Flat1d,
                },
            ),
            ("gpu_pipe", Engine::GpuPipelined),
        ] {
            let mut source = w.source();
            let r = pipeline
                .run_source(&mut source, &w.scan.geometry, &cfg, engine)
                .expect("pipeline run");
            match key {
                "cpu_seq" => cpu_total = r.total_time_s,
                "gpu_serial" => serial = (r.total_time_s, r.comm_time_s, r.compute_time_s),
                "gpu_pipe" => pipe_total = r.total_time_s,
                _ => {}
            }
            write!(
                row,
                ", \"{key}\": {{\"total_s\": {:.9}, \"comm_s\": {:.9}, \
                 \"bus_wait_s\": {:.9}, \"compute_s\": {:.9}, \
                 \"pipeline_depth\": {}, \"replans\": {}, \
                 \"transfer_retries\": {}, \"trace_dropped\": {}}}",
                r.total_time_s,
                r.comm_time_s,
                r.bus_wait_s,
                r.compute_time_s,
                r.pipeline_depth,
                r.gpu_replans,
                r.gpu_transfer_retries,
                r.trace_dropped
            )
            .unwrap();
        }
        // Which resource dominates the serial GPU run at this size, and how
        // much of it the overlapped ring claws back — the §III comm-vs-comp
        // axis as two derived columns.
        let (serial_total, serial_comm, serial_compute) = serial;
        write!(
            row,
            ", \"bus_bound\": {}, \"ring_saving_s\": {:.9}",
            serial_comm > serial_compute,
            serial_total - pipe_total
        )
        .unwrap();
        row.push('}');
        ladder.push(row);
        ladder_totals.push((w.label.clone(), cpu_total, serial.0, pipe_total));
    }

    // Ladder gates: the paper's headline orderings must hold at *every*
    // Fig 8 size — GPU beats CPU and the overlapped ring never loses to
    // the serial schedule. They only mean something on the full
    // multi-size ladder; the quick mode's single 0.5 MB row (marked
    // "quick" above) is skipped.
    if quick {
        println!("ladder gates skipped (quick mode: single-row ladder)");
    } else {
        for (label, cpu_s, serial_s, pipe_s) in &ladder_totals {
            assert!(
                serial_s < cpu_s,
                "ladder gate: gpu-serial ({serial_s:.4} s) must beat cpu-seq \
                 ({cpu_s:.4} s) at {label}"
            );
            assert!(
                pipe_s <= serial_s,
                "ladder gate: the overlapped ring ({pipe_s:.4} s) must not lose \
                 to the serial schedule ({serial_s:.4} s) at {label}"
            );
        }
        println!(
            "ladder gates: gpu < cpu and pipe <= serial at all {} sizes",
            ladder_totals.len()
        );
    }

    // 2. Ring-depth ablation on the largest stack, memory-capped so it
    // streams in many slabs.
    let w = workloads.last().unwrap();
    let props = DeviceProps {
        total_mem: 32 * 1024 * 1024,
        ..DeviceProps::tesla_m2070()
    };
    let mut slab_cfg = standard_config();
    slab_cfg.rows_per_slab = Some(if quick { 4 } else { 8 });
    let mut ablation = Vec::new();
    let mut ring_elapsed = Vec::new();
    for k in [1usize, 2, 3, 4] {
        let device = Device::new(props.clone());
        let mut source = w.source();
        let out = gpu::reconstruct_pipelined(
            &device,
            &mut source,
            &w.scan.geometry,
            &slab_cfg,
            GpuOptions::default(),
            PipelineDepth(k),
            None,
        )
        .expect("reconstruction");
        // No free bandwidth: one half-duplex link can never finish the
        // schedule faster than the total transfer time it carries.
        assert!(
            out.elapsed_s + 1e-12 >= out.meters.comm_time_s,
            "ring depth {k} finished below the bus floor ({} vs {} s)",
            out.elapsed_s,
            out.meters.comm_time_s
        );
        if k == 1 {
            assert_eq!(
                out.meters.bus_wait_s, 0.0,
                "the serial schedule never contends with itself"
            );
        }
        ring_elapsed.push(out.elapsed_s);
        ablation.push(format!(
            "    {{\"ring_depth\": {}, \"n_slabs\": {}, \"total_s\": {:.9}, \
             \"comm_s\": {:.9}, \"bus_wait_s\": {:.9}, \"compute_s\": {:.9}}}",
            out.pipeline_depth,
            out.n_slabs,
            out.elapsed_s,
            out.meters.comm_time_s,
            out.meters.bus_wait_s,
            out.meters.compute_time_s
        ));
    }
    let ring_ratio = ring_elapsed[2] / ring_elapsed[0];

    // 3. Depth-table cache: a cold run computes and uploads the tables, a
    // warm run on the same pipeline reuses the resident copy.
    let cache_pipeline = Pipeline::default();
    let run_tables = || {
        let mut source = w.source();
        cache_pipeline
            .run_source(&mut source, &w.scan.geometry, &cfg, Engine::GpuTables)
            .expect("gpu-tables run")
    };
    let cold = run_tables();
    let warm = run_tables();
    assert_eq!(
        cold.image.data, warm.image.data,
        "warm run must be bit-identical"
    );

    // 4. Multi-GPU failover: a 4-device fleet, clean vs. losing one device
    // at its first slab boundary — survivors absorb the rows, same bits.
    // Small slabs so even the quick workload gives every device several
    // launches (the scripted death needs a second one to trip at).
    let fleet = Engine::GpuMulti { devices: 4 };
    let mut fleet_cfg = standard_config();
    fleet_cfg.rows_per_slab = Some(if quick { 4 } else { 8 });
    let mut source = w.source();
    let clean_fleet = Pipeline::default()
        .run_source(&mut source, &w.scan.geometry, &fleet_cfg, fleet)
        .expect("gpu-multi run");
    let faulty = Pipeline {
        fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(1)),
        fault_device: Some(1),
        ..Pipeline::default()
    };
    let mut source = w.source();
    let degraded_fleet = faulty
        .run_source(&mut source, &w.scan.geometry, &fleet_cfg, fleet)
        .expect("gpu-multi failover run");
    assert_eq!(
        clean_fleet.image.data, degraded_fleet.image.data,
        "failover must be bit-identical"
    );
    assert_eq!(degraded_fleet.recovery.devices_lost, 1);

    // 5. Sparsity compaction: dense vs compacted gpu-1d at the paper's
    // ~25 %-active operating point (Fig 9's sparsest column). The compact
    // run must stay bit-identical and — prescan cost included — cut the
    // modeled kernel time; `--check` turns the ratio into a CI gate.
    let sparse_cutoff = delta_percentile(w, 0.75);
    let gpu1d = Engine::Gpu {
        layout: laue_core::gpu::Layout::Flat1d,
    };
    let run_mode = |mode: CompactionMode| {
        let mut c = standard_config();
        c.intensity_cutoff = sparse_cutoff;
        c.compaction = mode;
        let mut source = w.source();
        Pipeline::default()
            .run_source(&mut source, &w.scan.geometry, &c, gpu1d)
            .expect("compaction run")
    };
    let dense = run_mode(CompactionMode::Off);
    let compact = run_mode(CompactionMode::On);
    let auto = run_mode(CompactionMode::Auto);
    assert_eq!(
        dense.image.data, compact.image.data,
        "compacted run must be bit-identical to dense"
    );
    assert_eq!(
        dense.image.data, auto.image.data,
        "auto run must be bit-identical to dense"
    );
    let mean_density = |r: &laue_pipeline::RunReport| {
        if r.slab_densities.is_empty() {
            0.0
        } else {
            r.slab_densities.iter().sum::<f64>() / r.slab_densities.len() as f64
        }
    };
    let compact_ratio = compact.compute_time_s / dense.compute_time_s;

    // 6. Accumulation strategy: the paper's CAS-loop atomicAdd(double) vs
    // the shared-memory privatized tiles, dense gpu-1d on the same stack.
    // The privatized run must stay bit-identical and cut the modeled
    // kernel time; `--check` gates the ratio when the baseline file holds
    // a second float.
    let run_accum = |mode: AccumulationMode| {
        let mut c = standard_config();
        c.accumulation = mode;
        let mut source = w.source();
        Pipeline::default()
            .run_source(&mut source, &w.scan.geometry, &c, gpu1d)
            .expect("accumulation run")
    };
    let atomic = run_accum(AccumulationMode::Atomic);
    let privatized = run_accum(AccumulationMode::Privatized);
    assert_eq!(
        atomic.image.data, privatized.image.data,
        "privatized run must be bit-identical to atomic"
    );
    assert_eq!(
        privatized.stats.privatized_pairs, privatized.stats.pairs_total,
        "200 bins fit the M2070 tile, so every slab privatizes"
    );
    let accum_ratio = privatized.compute_time_s / atomic.compute_time_s;

    // 7. Self-tuning planner: `--plan auto` vs the best fixed configuration
    // on the same stack. The explain block's predicted virtual time must
    // track the measured one, and auto must stay within a few percent of
    // the best fixed contender; `--check` gates the ratio when the baseline
    // file holds a fourth float.
    let run_fixed = |engine: Engine, depth: Option<usize>| {
        let mut c = standard_config();
        c.compaction = CompactionMode::Auto;
        c.accumulation = AccumulationMode::Auto;
        c.pipeline_depth = depth;
        let mut source = w.source();
        Pipeline::default()
            .run_source(&mut source, &w.scan.geometry, &c, engine)
            .expect("fixed plan run")
    };
    let mut c = standard_config();
    c.plan = PlanMode::Auto;
    c.compaction = CompactionMode::Auto;
    c.accumulation = AccumulationMode::Auto;
    let mut source = w.source();
    let auto_plan = Pipeline::default()
        .run_source(&mut source, &w.scan.geometry, &c, Engine::GpuPipelined)
        .expect("plan auto run");
    let explain = auto_plan.plan.clone().expect("plan auto explain block");
    let mut best_fixed: Option<(&str, f64)> = None;
    for (label, engine, depth) in [
        ("gpu-1d", gpu1d, None),
        (
            "gpu-3d",
            Engine::Gpu {
                layout: laue_core::gpu::Layout::Pointer3d,
            },
            None,
        ),
        ("gpu-tables", Engine::GpuTables, None),
        ("gpu-pipe-k2", Engine::GpuPipelined, Some(2)),
        ("gpu-pipe-k3", Engine::GpuPipelined, Some(3)),
    ] {
        let r = run_fixed(engine, depth);
        assert_eq!(
            auto_plan.image.data, r.image.data,
            "plan auto diverges from {label}"
        );
        if best_fixed.is_none_or(|(_, t)| r.total_time_s < t) {
            best_fixed = Some((label, r.total_time_s));
        }
    }
    let (best_fixed_label, best_fixed_s) = best_fixed.expect("fixed field is non-empty");
    let planner_ratio = auto_plan.total_time_s / best_fixed_s;

    // 8. End-to-end data integrity: the verification overhead of
    // `--integrity verify` on the clean Fig 8 stack (`--check` gates the
    // verify/off total-time ratio when the baseline holds a fifth float),
    // and a scrub run under injected silent corruption that must come back
    // bit-identical with every detection corrected.
    let run_integrity = |mode: IntegrityMode, plan: Option<cuda_sim::FaultPlan>| {
        let mut c = standard_config();
        c.integrity = mode;
        let p = Pipeline {
            fault_plan: plan,
            ..Pipeline::default()
        };
        let mut source = w.source();
        p.run_source(&mut source, &w.scan.geometry, &c, Engine::GpuPipelined)
            .expect("integrity run")
    };
    let integrity_off = run_integrity(IntegrityMode::Off, None);
    let verify = run_integrity(IntegrityMode::Verify, None);
    assert_eq!(
        integrity_off.image.data, verify.image.data,
        "verification must not change a clean run's bits"
    );
    assert!(verify.integrity.checks_run > 0, "verify ran no checks");
    assert_eq!(
        verify.integrity.corruptions_detected, 0,
        "no false positives on a healthy device"
    );
    let integrity_ratio = verify.total_time_s / integrity_off.total_time_s;
    let scrub = run_integrity(
        IntegrityMode::Scrub,
        Some(
            cuda_sim::FaultPlan::new(5)
                .flip_nth_h2d(2)
                .flip_nth_kernel(1)
                .flip_op_index(3),
        ),
    );
    assert_eq!(
        integrity_off.image.data, scrub.image.data,
        "scrub must repair injected corruption bit-identically"
    );
    let scrub_injected = scrub.faults_injected.expect("fault plan installed");
    assert!(
        scrub_injected.total_silent() >= 1,
        "the schedule injected nothing: {scrub_injected:?}"
    );
    assert!(
        scrub.integrity.corruptions_detected >= 1,
        "injected corruption went undetected: {:?}",
        scrub.integrity
    );
    assert_eq!(
        scrub.integrity.corruptions_corrected, scrub.integrity.corruptions_detected,
        "scrub left a detection unrepaired: {:?}",
        scrub.integrity
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"generated_by\": \"bench_report\",").unwrap();
    writeln!(json, "  \"quick\": {quick},").unwrap();
    writeln!(json, "  \"datasize\": [").unwrap();
    writeln!(json, "{}", ladder.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"depth_ablation_quick\": {quick},").unwrap();
    writeln!(json, "  \"depth_ablation\": [").unwrap();
    writeln!(json, "{}", ablation.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"ring_depth3_over_serial\": {ring_ratio:.6},").unwrap();
    writeln!(json, "  \"table_cache\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(json, "    \"cold_total_s\": {:.9},", cold.total_time_s).unwrap();
    writeln!(json, "    \"warm_total_s\": {:.9},", warm.total_time_s).unwrap();
    writeln!(json, "    \"cold\": {},", json_stats(&cold.table_cache)).unwrap();
    writeln!(json, "    \"warm\": {}", json_stats(&warm.table_cache)).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"failover\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(
        json,
        "    \"clean_total_s\": {:.9},",
        clean_fleet.total_time_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"degraded_total_s\": {:.9},",
        degraded_fleet.total_time_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"devices_lost\": {},",
        degraded_fleet.recovery.devices_lost
    )
    .unwrap();
    writeln!(
        json,
        "    \"salvaged_slabs\": {},",
        degraded_fleet.recovery.salvaged_slabs
    )
    .unwrap();
    writeln!(
        json,
        "    \"recomputed_slabs\": {}",
        degraded_fleet.recovery.recomputed_slabs
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"compaction\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(json, "    \"cutoff\": {sparse_cutoff:.6},").unwrap();
    writeln!(
        json,
        "    \"active_fraction\": {:.6},",
        dense.stats.active_fraction()
    )
    .unwrap();
    writeln!(
        json,
        "    \"dense_compute_s\": {:.9},",
        dense.compute_time_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"compact_compute_s\": {:.9},",
        compact.compute_time_s
    )
    .unwrap();
    writeln!(json, "    \"auto_compute_s\": {:.9},", auto.compute_time_s).unwrap();
    writeln!(json, "    \"compact_over_dense\": {compact_ratio:.6},").unwrap();
    writeln!(
        json,
        "    \"mean_slab_density\": {:.6},",
        mean_density(&compact)
    )
    .unwrap();
    writeln!(
        json,
        "    \"compacted_pairs\": {},",
        compact.stats.compacted_pairs
    )
    .unwrap();
    writeln!(json, "    \"culled_rows\": {}", compact.stats.culled_rows).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"accumulation\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(
        json,
        "    \"atomic_compute_s\": {:.9},",
        atomic.compute_time_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"privatized_compute_s\": {:.9},",
        privatized.compute_time_s
    )
    .unwrap();
    writeln!(json, "    \"privatized_over_atomic\": {accum_ratio:.6},").unwrap();
    writeln!(
        json,
        "    \"privatized_pairs\": {},",
        privatized.stats.privatized_pairs
    )
    .unwrap();
    writeln!(
        json,
        "    \"accum_fallback_pairs\": {}",
        privatized.stats.accum_fallback_pairs
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"planner\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(json, "    \"chosen\": \"{}\",", explain.chosen).unwrap();
    writeln!(json, "    \"predicted_s\": {:.9},", explain.predicted_s).unwrap();
    writeln!(json, "    \"measured_s\": {:.9},", explain.measured_s).unwrap();
    writeln!(
        json,
        "    \"prediction_error\": {:.6},",
        explain.prediction_error()
    )
    .unwrap();
    writeln!(json, "    \"auto_total_s\": {:.9},", auto_plan.total_time_s).unwrap();
    writeln!(json, "    \"best_fixed\": \"{best_fixed_label}\",").unwrap();
    writeln!(json, "    \"best_fixed_total_s\": {best_fixed_s:.9},").unwrap();
    writeln!(json, "    \"auto_over_best\": {planner_ratio:.6}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"integrity\": {{").unwrap();
    writeln!(json, "    \"quick\": {quick},").unwrap();
    writeln!(
        json,
        "    \"off_total_s\": {:.9},",
        integrity_off.total_time_s
    )
    .unwrap();
    writeln!(json, "    \"verify_total_s\": {:.9},", verify.total_time_s).unwrap();
    writeln!(json, "    \"verify_over_off\": {integrity_ratio:.6},").unwrap();
    writeln!(
        json,
        "    \"verify_checks\": {},",
        verify.integrity.checks_run
    )
    .unwrap();
    writeln!(
        json,
        "    \"verify_host_cpu_s\": {:.9},",
        verify.integrity.verify_host_cpu_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"exposed_overhead_s\": {:.9},",
        verify.integrity.exposed_overhead_s
    )
    .unwrap();
    writeln!(
        json,
        "    \"measured_delta_s\": {:.9},",
        verify.total_time_s - integrity_off.total_time_s
    )
    .unwrap();
    writeln!(json, "    \"scrub_total_s\": {:.9},", scrub.total_time_s).unwrap();
    writeln!(
        json,
        "    \"scrub_silent_injected\": {},",
        scrub_injected.total_silent()
    )
    .unwrap();
    writeln!(
        json,
        "    \"scrub_detected\": {},",
        scrub.integrity.corruptions_detected
    )
    .unwrap();
    writeln!(
        json,
        "    \"scrub_corrected\": {},",
        scrub.integrity.corruptions_corrected
    )
    .unwrap();
    writeln!(
        json,
        "    \"scrub_retries\": {}",
        scrub.integrity.scrub_retries
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"wall_clock_s\": {:.3}",
        started.elapsed().as_secs_f64()
    )
    .unwrap();
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path} ({} bytes)", json.len());
    println!(
        "cache: cold {:.4} s → warm {:.4} s ({} hit(s) warm)",
        cold.total_time_s,
        warm.total_time_s,
        warm.table_cache.hits()
    );
    println!(
        "compaction @ {:.1} % active: dense {:.4} s → compact {:.4} s kernel \
         (ratio {:.3}, mean slab density {:.3})",
        100.0 * dense.stats.active_fraction(),
        dense.compute_time_s,
        compact.compute_time_s,
        compact_ratio,
        mean_density(&compact),
    );
    println!(
        "accumulation: atomic {:.4} s → privatized {:.4} s kernel (ratio {:.3})",
        atomic.compute_time_s, privatized.compute_time_s, accum_ratio,
    );
    println!(
        "planner: auto chose {} at {:.4} s ({:.1} % prediction error) vs best fixed {} at {:.4} s (ratio {:.3})",
        explain.chosen,
        auto_plan.total_time_s,
        100.0 * explain.prediction_error(),
        best_fixed_label,
        best_fixed_s,
        planner_ratio,
    );
    println!(
        "integrity: off {:.4} s → verify {:.4} s (ratio {:.3}, {} check(s)); \
         scrub corrected {}/{} injected silent fault(s)",
        integrity_off.total_time_s,
        verify.total_time_s,
        integrity_ratio,
        verify.integrity.checks_run,
        scrub.integrity.corruptions_corrected,
        scrub_injected.total_silent(),
    );

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        let budgets: Vec<f64> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse()
                    .unwrap_or_else(|_| panic!("--check: bad ratio line {l:?} in {path}"))
            })
            .collect();
        let Some(&compact_budget) = budgets.first() else {
            panic!("--check: {path} holds no ratio");
        };
        if compact_ratio > compact_budget {
            eprintln!(
                "PERF REGRESSION: compact/dense kernel-time ratio {compact_ratio:.4} \
                 exceeds the committed budget {compact_budget:.4} ({path})"
            );
            std::process::exit(1);
        }
        println!(
            "perf gate: compact/dense ratio {compact_ratio:.4} within budget {compact_budget:.4}"
        );
        if let Some(&accum_budget) = budgets.get(1) {
            if accum_ratio > accum_budget {
                eprintln!(
                    "PERF REGRESSION: privatized/atomic kernel-time ratio {accum_ratio:.4} \
                     exceeds the committed budget {accum_budget:.4} ({path})"
                );
                std::process::exit(1);
            }
            println!(
                "perf gate: privatized/atomic ratio {accum_ratio:.4} within budget {accum_budget:.4}"
            );
        }
        if let Some(&ring_budget) = budgets.get(2) {
            if ring_ratio > ring_budget {
                eprintln!(
                    "PERF REGRESSION: depth-3/serial ring elapsed ratio {ring_ratio:.4} \
                     exceeds the committed budget {ring_budget:.4} ({path}) — \
                     the ring stopped hiding kernel time behind the bus"
                );
                std::process::exit(1);
            }
            println!(
                "perf gate: depth-3/serial ring ratio {ring_ratio:.4} within budget {ring_budget:.4}"
            );
        }
        if let Some(&planner_budget) = budgets.get(3) {
            if planner_ratio > planner_budget {
                eprintln!(
                    "PERF REGRESSION: plan-auto/best-fixed total-time ratio {planner_ratio:.4} \
                     exceeds the committed budget {planner_budget:.4} ({path}) — \
                     the planner stopped picking competitive plans"
                );
                std::process::exit(1);
            }
            println!(
                "perf gate: plan-auto/best-fixed ratio {planner_ratio:.4} within budget {planner_budget:.4}"
            );
        }
        if let Some(&integrity_budget) = budgets.get(4) {
            if integrity_ratio > integrity_budget {
                eprintln!(
                    "PERF REGRESSION: verify/off total-time ratio {integrity_ratio:.4} \
                     exceeds the committed budget {integrity_budget:.4} ({path}) — \
                     integrity verification stopped hiding behind the overlapped host CPU"
                );
                std::process::exit(1);
            }
            println!(
                "perf gate: verify/off ratio {integrity_ratio:.4} within budget {integrity_budget:.4}"
            );
        }
    }
}
