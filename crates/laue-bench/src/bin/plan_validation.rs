//! **Planner validation**: does the self-tuning execution planner keep its
//! two promises across the hardware era matrix?
//!
//! 1. **Accuracy** — the virtual time the planner *predicts* for its chosen
//!    plan stays within 15 % of the virtual time the run then *measures*.
//! 2. **Regret** — `--plan auto` loses at most 5 % to the best fixed
//!    configuration on the same device and workload.
//!
//! Both are swept over [`laue_bench::devices::era_matrix`] × the PCIe-bound
//! Fig 8 stack and the atomic-bound §III-C ablation stack. The binary exits
//! nonzero on any violation, so CI can gate on it.
//!
//! Run: `cargo run --release -p laue-bench --bin plan_validation`

use laue_bench::devices::era_matrix;
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::Layout;
use laue_core::{AccumulationMode, CompactionMode, PlanMode};
use laue_pipeline::{Engine, Pipeline, RunReport};

/// Planner budget: |predicted − measured| / measured on the chosen plan.
const MAX_PREDICTION_ERROR: f64 = 0.15;
/// Planner budget: auto total time over the best fixed total time.
const MAX_AUTO_REGRET: f64 = 1.05;

/// The fixed configurations auto competes against: every GPU engine the
/// CLI exposes, plus the deeper ring depths of the pipelined engine.
fn fixed_field() -> Vec<(&'static str, Engine, Option<usize>)> {
    vec![
        (
            "gpu-1d",
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
            None,
        ),
        (
            "gpu-3d",
            Engine::Gpu {
                layout: Layout::Pointer3d,
            },
            None,
        ),
        ("gpu-tables", Engine::GpuTables, None),
        ("gpu-pipe-k2", Engine::GpuPipelined, Some(2)),
        ("gpu-pipe-k3", Engine::GpuPipelined, Some(3)),
    ]
}

/// Run one engine on one device with a cold cache (fresh `Pipeline`), so
/// every contender pays the same table-building costs the planner models.
fn run_cold(
    props: &cuda_sim::DeviceProps,
    w: &Workload,
    cfg: &laue_core::ReconstructionConfig,
    engine: Engine,
) -> RunReport {
    let pipeline = Pipeline {
        device: props.clone(),
        ..Pipeline::default()
    };
    let mut source = w.source();
    pipeline
        .run_source(&mut source, &w.scan.geometry, cfg, engine)
        .expect("validation run")
}

fn main() {
    let workloads = [
        Workload::of_megabytes(5.2, 222),
        Workload::of_megabytes(2.1, 555),
    ];
    let mut base = standard_config();
    base.compaction = CompactionMode::Auto;
    base.accumulation = AccumulationMode::Auto;

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for props in era_matrix() {
        for w in &workloads {
            let mut auto_cfg = base.clone();
            auto_cfg.plan = PlanMode::Auto;
            let auto = run_cold(&props, w, &auto_cfg, Engine::GpuPipelined);
            let explain = auto.plan.as_ref().expect("plan auto explain block");
            let err = explain.prediction_error();
            if err >= MAX_PREDICTION_ERROR {
                failures.push(format!(
                    "{} / {}: prediction error {:.1} % ≥ {:.0} % (predicted {:.4} s, measured {:.4} s)",
                    props.name,
                    w.label,
                    100.0 * err,
                    100.0 * MAX_PREDICTION_ERROR,
                    explain.predicted_s,
                    explain.measured_s,
                ));
            }

            let mut best: Option<(&'static str, f64)> = None;
            for (label, engine, depth) in fixed_field() {
                let mut cfg = base.clone();
                cfg.pipeline_depth = depth;
                let fixed = run_cold(&props, w, &cfg, engine);
                assert_eq!(
                    auto.image.data, fixed.image.data,
                    "auto and {label} diverge on {} / {}",
                    props.name, w.label
                );
                if best.is_none_or(|(_, t)| fixed.total_time_s < t) {
                    best = Some((label, fixed.total_time_s));
                }
            }
            let (best_label, best_s) = best.expect("fixed field is non-empty");
            let regret = auto.total_time_s / best_s;
            if regret > MAX_AUTO_REGRET {
                failures.push(format!(
                    "{} / {}: auto {} ms loses {:.1} % to fixed {} at {} ms (budget {:.0} %)",
                    props.name,
                    w.label,
                    ms(auto.total_time_s),
                    100.0 * (regret - 1.0),
                    best_label,
                    ms(best_s),
                    100.0 * (MAX_AUTO_REGRET - 1.0),
                ));
            }
            rows.push(vec![
                props.name.clone(),
                w.label.clone(),
                explain.chosen.clone(),
                ms(explain.predicted_s),
                ms(explain.measured_s),
                format!("{:.1} %", 100.0 * err),
                format!("{} ({})", ms(best_s), best_label),
                format!("{:.3}", regret),
            ]);
        }
    }

    println!("planner validation — era matrix × {{Fig 8, §III-C}} stacks\n");
    print_table(
        &[
            "machine",
            "stack",
            "auto chose",
            "predicted (ms)",
            "measured (ms)",
            "error",
            "best fixed (ms)",
            "auto/best",
        ],
        &rows,
    );
    println!(
        "\nbudgets: prediction error < {:.0} %, auto/best ≤ {:.2}",
        100.0 * MAX_PREDICTION_ERROR,
        MAX_AUTO_REGRET
    );
    if failures.is_empty() {
        println!("planner validation PASSED");
    } else {
        println!("\nplanner validation FAILED:");
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
