//! **Extension study**: how would the paper's conclusion change on other
//! hardware of the era?
//!
//! The paper evaluates exactly one GPU (Tesla M2070). This study reruns the
//! Fig 8 largest workload on (a) a consumer Fermi card with throttled
//! double precision (at the paper's full 5.2 GB scale its 1.5 GB would also
//! force slab streaming), and (b) the next-generation Tesla K40 —
//! quantifying how much of the paper's speedup is tied to its specific
//! hardware.
//!
//! Run: `cargo run --release -p laue-bench --bin whatif_hardware`

use cuda_sim::Device;
use laue_bench::devices::{era_matrix, paper_host};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};
use laue_core::{AccumulationMode, ScanView};

fn main() {
    let w = Workload::of_megabytes(5.2, 222);
    let cfg = standard_config();
    let mut cfg_priv = cfg.clone();
    cfg_priv.accumulation = AccumulationMode::Privatized;
    println!("what-if hardware study — {} stack\n", w.label);

    // CPU reference.
    let g = w.scan.geometry.clone();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let cpu = laue_core::cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let cpu_s = cpu.modeled_time_s(&paper_host(), 1);

    let mut rows = vec![vec![
        "Xeon E5630 (1 core)".to_string(),
        ms(cpu_s),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "100.0 %".into(),
    ]];
    let mut reference: Option<Vec<f64>> = None;
    for props in era_matrix() {
        let name = props.name.clone();
        let device = Device::new(props.clone());
        let mut source = w.source();
        let out = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
            .expect("run");
        match &reference {
            None => reference = Some(out.image.data.clone()),
            Some(r) => assert_eq!(r, &out.image.data, "devices diverge"),
        }
        // The same machine with the shared-memory privatized accumulator:
        // how much of each generation's kernel time the CAS loop was.
        let device = Device::new(props);
        let mut source = w.source();
        let pout = gpu::reconstruct_with_options(
            &device,
            &mut source,
            &w.scan.geometry,
            &cfg_priv,
            gpu::GpuOptions {
                layout: Layout::Flat1d,
                ..gpu::GpuOptions::default()
            },
        )
        .expect("privatized run");
        assert_eq!(
            out.image.data, pout.image.data,
            "privatized accumulation diverges on {name}"
        );
        rows.push(vec![
            name,
            ms(out.elapsed_s),
            ms(out.meters.comm_time_s),
            ms(out.meters.compute_time_s),
            format!(
                "{} ({:.0} %)",
                ms(pout.meters.compute_time_s),
                100.0 * pout.meters.compute_time_s / out.meters.compute_time_s
            ),
            format!("{}×{}", out.n_slabs, out.rows_per_slab),
            format!("{:.1} %", 100.0 * out.elapsed_s / cpu_s),
        ]);
    }
    assert!(
        (reference.unwrap().iter().sum::<f64>() - cpu.image.data.iter().sum::<f64>()).abs()
            < 1e-6 * cpu.image.data.iter().sum::<f64>().abs().max(1.0)
    );
    print_table(
        &[
            "machine",
            "total (ms)",
            "transfer (ms)",
            "kernel (ms)",
            "kernel priv (ms)",
            "slabs×rows",
            "vs CPU",
        ],
        &rows,
    );
    println!(
        "\nall devices are PCIe-bound on this workload, so even the consumer \
         card's 1/8-rate double precision barely hurts — and the K40's win \
         comes almost entirely from PCIe gen-3. The paper's conclusion is \
         robust to the exact GPU; its bottleneck analysis (§III-B) is the \
         durable part. On this noisy full-scale stack the kernel itself is \
         memory-bound — global reads top the roofline, not atomics — so the \
         privatized accumulator coalesces plenty of deposits yet the kernel \
         column barely moves.\n"
    );

    // The same machines on the atomic-bound §III-C ablation stack (2.1 MB,
    // ~38 % of pairs depositing): there the atomic term tops the kernel's
    // roofline, so retiring the CAS loop pays — by an amount that depends
    // on each generation's f64 atomic cost.
    let w2 = Workload::of_megabytes(2.1, 555);
    let mut rows = Vec::new();
    for props in era_matrix() {
        let name = props.name.clone();
        let mut kernel = [0.0f64; 2];
        let mut image: Option<Vec<f64>> = None;
        for (i, c) in [&cfg, &cfg_priv].into_iter().enumerate() {
            let device = Device::new(props.clone());
            let mut source = w2.source();
            let out = gpu::reconstruct_with_options(
                &device,
                &mut source,
                &w2.scan.geometry,
                c,
                gpu::GpuOptions {
                    layout: Layout::Flat1d,
                    ..gpu::GpuOptions::default()
                },
            )
            .expect("run");
            kernel[i] = out.meters.compute_time_s;
            match &image {
                None => image = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "strategies diverge on {name}"),
            }
        }
        rows.push(vec![
            name,
            ms(kernel[0]),
            ms(kernel[1]),
            format!("{:.0} %", 100.0 * kernel[1] / kernel[0]),
        ]);
    }
    println!(
        "accumulation-bound kernel: the {} §III-C ablation stack\n",
        w2.label
    );
    print_table(
        &["machine", "kernel (ms)", "kernel priv (ms)", "priv/atomic"],
        &rows,
    );
    println!(
        "\nhere retiring the CAS loop matters, and by a generation-dependent \
         amount: Fermi (M2070, GTX 580) pays dearly for every emulated f64 \
         atomic, so staging deposits in shared tiles recovers most of that \
         cost; Kepler (K40) has native f64 atomicAdd and keeps much less on \
         the table — exactly the hardware trend that later made \
         shared-memory staging optional."
    );
}
