//! **Extension study**: how would the paper's conclusion change on other
//! hardware of the era?
//!
//! The paper evaluates exactly one GPU (Tesla M2070). This study reruns the
//! Fig 8 largest workload on (a) a consumer Fermi card with throttled
//! double precision (at the paper's full 5.2 GB scale its 1.5 GB would also
//! force slab streaming), and (b) the next-generation Tesla K40 —
//! quantifying how much of the paper's speedup is tied to its specific
//! hardware.
//!
//! Run: `cargo run --release -p laue-bench --bin whatif_hardware`

use cuda_sim::{Device, DeviceProps, HostProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};
use laue_core::ScanView;

fn main() {
    let w = Workload::of_megabytes(5.2, 222);
    let cfg = standard_config();
    println!("what-if hardware study — {} stack\n", w.label);

    // CPU reference.
    let g = w.scan.geometry.clone();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let cpu = laue_core::cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let cpu_s = cpu.modeled_time_s(&HostProps::xeon_e5630(), 1);

    let mut rows = vec![vec![
        "Xeon E5630 (1 core)".to_string(),
        ms(cpu_s),
        "-".into(),
        "-".into(),
        "-".into(),
        "100.0 %".into(),
    ]];
    let mut reference: Option<Vec<f64>> = None;
    for props in [
        DeviceProps::tesla_m2070(),
        DeviceProps::gtx_580(),
        DeviceProps::tesla_k40(),
    ] {
        let name = props.name.clone();
        let device = Device::new(props);
        let mut source = w.source();
        let out = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
            .expect("run");
        match &reference {
            None => reference = Some(out.image.data.clone()),
            Some(r) => assert_eq!(r, &out.image.data, "devices diverge"),
        }
        rows.push(vec![
            name,
            ms(out.elapsed_s),
            ms(out.meters.comm_time_s),
            ms(out.meters.compute_time_s),
            format!("{}×{}", out.n_slabs, out.rows_per_slab),
            format!("{:.1} %", 100.0 * out.elapsed_s / cpu_s),
        ]);
    }
    assert!(
        (reference.unwrap().iter().sum::<f64>() - cpu.image.data.iter().sum::<f64>()).abs()
            < 1e-6 * cpu.image.data.iter().sum::<f64>().abs().max(1.0)
    );
    print_table(
        &[
            "machine",
            "total (ms)",
            "transfer (ms)",
            "kernel (ms)",
            "slabs×rows",
            "vs CPU",
        ],
        &rows,
    );
    println!(
        "\nall devices are PCIe-bound on this workload, so even the consumer \
         card's 1/8-rate double precision barely hurts — and the K40's win \
         comes almost entirely from PCIe gen-3. The paper's conclusion is \
         robust to the exact GPU; its bottleneck analysis (§III-B) is the \
         durable part."
    );
}
