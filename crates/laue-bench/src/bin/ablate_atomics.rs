//! **Design ablation (paper §III-C)**: what the CAS-loop `atomicAdd(double)`
//! costs — and what the shared-memory privatized accumulator recovers.
//!
//! The paper implements double-precision atomic accumulation with an
//! `atomicCAS` loop because Fermi lacks native f64 atomicAdd. This ablation
//! (a) re-costs the recorded kernels with the atomic term removed to show
//! the modeled cost share, runs the real privatized path
//! (`--accumulation privatized`) next to that bound, and (b) runs the
//! kernels on the threaded executor to measure *real* CAS retries under
//! contention for both strategies.
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_atomics`

use cuda_sim::{Cost, Device, DeviceProps, ExecMode};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};
use laue_core::AccumulationMode;

fn main() {
    let w = Workload::of_megabytes(2.1, 555);
    let cfg = standard_config();
    let mut cfg_priv = cfg.clone();
    cfg_priv.accumulation = AccumulationMode::Privatized;
    println!("atomicAdd(double) ablation — {} stack\n", w.label);

    // (a) Modeled cost share: the paper's CAS path, the free-accumulation
    // lower bound, and the real privatized path between them.
    let props = DeviceProps::tesla_m2070();
    let device = Device::new(props.clone());
    let mut source = w.source();
    let out = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
        .expect("run");
    let cost = out.meters.kernel_cost;
    let no_atomics = Cost {
        atomic_ops: 0,
        atomic_retries: 0,
        atomic_max_chain: 0,
        ..cost
    };
    let t_with = props.kernel_time(&cost);
    let t_without = props.kernel_time(&no_atomics);

    let device = Device::new(props.clone());
    let mut source = w.source();
    let priv_out = gpu::reconstruct_with_options(
        &device,
        &mut source,
        &w.scan.geometry,
        &cfg_priv,
        gpu::GpuOptions {
            layout: Layout::Flat1d,
            ..gpu::GpuOptions::default()
        },
    )
    .expect("privatized run");
    assert_eq!(
        out.image.data, priv_out.image.data,
        "privatized accumulation must be bit-identical — ablation invalid"
    );
    let priv_cost = priv_out.meters.kernel_cost;
    let t_priv = props.kernel_time(&priv_cost);

    print_table(
        &["variant", "kernel time (ms)", "atomic ops", "deposits"],
        &[
            vec![
                "CAS atomicAdd (paper)".into(),
                ms(t_with),
                cost.atomic_ops.to_string(),
                out.stats.deposits.to_string(),
            ],
            vec![
                "privatized shared tiles".into(),
                ms(t_priv),
                priv_cost.atomic_ops.to_string(),
                priv_out.stats.deposits.to_string(),
            ],
            vec![
                "free accumulation (bound)".into(),
                ms(t_without),
                "0".into(),
                out.stats.deposits.to_string(),
            ],
        ],
    );
    println!(
        "\natomics account for {:.1} % of the modeled kernel time. The\n\
         privatized path pays one global add per touched (pixel, bin) cell\n\
         instead of one per deposit ({} vs {} global atomics here), plus the\n\
         shared-tile traffic — it lands at {:.1} % of the CAS kernel time\n\
         against the free-accumulation bound's {:.1} %.\n",
        100.0 * (t_with - t_without) / t_with,
        priv_cost.atomic_ops,
        cost.atomic_ops,
        100.0 * t_priv / t_with,
        100.0 * t_without / t_with,
    );

    // (b) Real contention: run threaded and report observed CAS retries for
    // both accumulation strategies. The privatized path issues far fewer
    // global atomics, so it exposes proportionally fewer retry windows.
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut cells = vec![workers.to_string()];
        for accum_cfg in [&cfg, &cfg_priv] {
            let device = Device::new(props.clone());
            device.set_exec_mode(if workers == 1 {
                ExecMode::Sequential
            } else {
                ExecMode::Threaded(workers)
            });
            let mut source = w.source();
            let out = gpu::reconstruct_with_options(
                &device,
                &mut source,
                &w.scan.geometry,
                accum_cfg,
                gpu::GpuOptions {
                    layout: Layout::Flat1d,
                    ..gpu::GpuOptions::default()
                },
            )
            .expect("run");
            let c = out.meters.kernel_cost;
            cells.push(c.atomic_ops.to_string());
            cells.push(format!(
                "{} ({:.4} %)",
                c.atomic_retries,
                100.0 * c.atomic_retries as f64 / c.atomic_ops.max(1) as f64
            ));
        }
        rows.push(cells);
    }
    print_table(
        &[
            "host workers",
            "atomic ops",
            "CAS retries",
            "atomic ops (priv)",
            "CAS retries (priv)",
        ],
        &rows,
    );
    println!(
        "\nthe CAS loop is functionally real: retries appear whenever two host\n\
         workers interleave between the load and the compare-exchange. On a\n\
         single-core host that interleaving needs a preemption, so a zero\n\
         retry count here is expected; on a multi-core host the rate becomes\n\
         non-zero and the results stay exact (the equivalence tests assert\n\
         this). The privatized path's blocks commit to disjoint pixels, so\n\
         its (fewer) global adds never contend at all."
    );
}
