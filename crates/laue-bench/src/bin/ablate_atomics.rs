//! **Design ablation (paper §III-C)**: what the CAS-loop `atomicAdd(double)`
//! costs.
//!
//! The paper implements double-precision atomic accumulation with an
//! `atomicCAS` loop because Fermi lacks native f64 atomicAdd. This ablation
//! (a) re-costs the recorded kernels with the atomic term removed to show
//! the modeled cost share, and (b) runs the kernels on the threaded
//! executor to measure *real* CAS retries under contention.
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_atomics`

use cuda_sim::{Cost, Device, DeviceProps, ExecMode};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};

fn main() {
    let w = Workload::of_megabytes(2.1, 555);
    let cfg = standard_config();
    println!("atomicAdd(double) ablation — {} stack\n", w.label);

    // (a) Modeled cost share.
    let props = DeviceProps::tesla_m2070();
    let device = Device::new(props.clone());
    let mut source = w.source();
    let out = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
        .expect("run");
    let cost = out.meters.kernel_cost;
    let no_atomics = Cost {
        atomic_ops: 0,
        atomic_retries: 0,
        atomic_max_chain: 0,
        ..cost
    };
    let t_with = props.kernel_time(&cost);
    let t_without = props.kernel_time(&no_atomics);
    print_table(
        &["variant", "kernel time (ms)", "atomic ops", "deposits"],
        &[
            vec![
                "CAS atomicAdd (paper)".into(),
                ms(t_with),
                cost.atomic_ops.to_string(),
                out.stats.deposits.to_string(),
            ],
            vec![
                "free accumulation (bound)".into(),
                ms(t_without),
                "0".into(),
                out.stats.deposits.to_string(),
            ],
        ],
    );
    println!(
        "\natomics account for {:.1} % of the modeled kernel time — removing \
         them (e.g. by privatised per-thread bins + reduction) bounds the \
         possible gain.\n",
        100.0 * (t_with - t_without) / t_with
    );

    // (b) Real contention: run threaded and report observed CAS retries.
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let device = Device::new(props.clone());
        device.set_exec_mode(if workers == 1 {
            ExecMode::Sequential
        } else {
            ExecMode::Threaded(workers)
        });
        let mut source = w.source();
        let out = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
            .expect("run");
        let c = out.meters.kernel_cost;
        rows.push(vec![
            workers.to_string(),
            c.atomic_ops.to_string(),
            c.atomic_retries.to_string(),
            format!(
                "{:.4} %",
                100.0 * c.atomic_retries as f64 / c.atomic_ops.max(1) as f64
            ),
        ]);
    }
    print_table(
        &["host workers", "atomic ops", "CAS retries", "retry rate"],
        &rows,
    );
    println!(
        "\nthe CAS loop is functionally real: retries appear whenever two host\n\
         workers interleave between the load and the compare-exchange. On a\n\
         single-core host that interleaving needs a preemption, so a zero\n\
         retry count here is expected; on a multi-core host the rate becomes\n\
         non-zero and the results stay exact (the equivalence tests assert\n\
         this)."
    );
}
