//! **Extension ablation (related work, §II)**: copy/compute overlap.
//!
//! The paper's related-work section surveys systems that overlap PCIe
//! transfers with kernels but its own pipeline is strictly serial (copy →
//! kernel → copy). This ablation runs the double-buffered two-stream
//! pipeline and measures how much of the paper's transfer time overlap
//! hides, as a function of slab count.
//!
//! Run: `cargo run --release -p laue-bench --bin ablate_overlap`

use cuda_sim::{Device, DeviceProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::{self, Layout};

fn main() {
    let w = Workload::of_megabytes(5.2, 321);
    println!("copy/compute-overlap ablation — {} stack\n", w.label);
    // Cap the device so the stack streams in several slabs.
    let props = DeviceProps {
        total_mem: 32 * 1024 * 1024,
        ..DeviceProps::tesla_m2070()
    };

    let mut rows = Vec::new();
    for slab_rows in [4usize, 8, 16, 32] {
        let mut cfg = standard_config();
        cfg.rows_per_slab = Some(slab_rows);

        let device = Device::new(props.clone());
        let mut source = w.source();
        let serial = gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
            .expect("serial");

        let device = Device::new(props.clone());
        let mut source = w.source();
        let overlapped = gpu::reconstruct_overlapped(&device, &mut source, &w.scan.geometry, &cfg)
            .expect("overlapped");
        assert_eq!(serial.image.data, overlapped.image.data);

        rows.push(vec![
            slab_rows.to_string(),
            serial.n_slabs.to_string(),
            ms(serial.elapsed_s),
            ms(overlapped.elapsed_s),
            format!(
                "{:.1} %",
                100.0 * (serial.elapsed_s - overlapped.elapsed_s) / serial.elapsed_s
            ),
        ]);
    }
    print_table(
        &[
            "rows/slab",
            "slabs",
            "serial (ms)",
            "overlapped (ms)",
            "saved",
        ],
        &rows,
    );
    println!(
        "\ndouble buffering hides transfer time behind kernels; the benefit \
         grows with slab count until latency dominates — the optimisation \
         the paper leaves on the table."
    );
}
