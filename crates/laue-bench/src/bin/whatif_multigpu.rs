//! **Extension study**: multi-GPU scaling — the direction the paper's
//! related work (Schaa & Kaeli, §II) points at but the paper never takes.
//!
//! Detector rows are banded across N simulated M2070s, each with its own
//! PCIe link. Because the pipeline is transfer-bound, scaling follows the
//! aggregate PCIe bandwidth almost perfectly until per-device fixed costs
//! bite.
//!
//! Run: `cargo run --release -p laue-bench --bin whatif_multigpu`

use cuda_sim::{Device, DeviceProps, HostProps};
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::GpuOptions;
use laue_core::multi::reconstruct_multi;
use laue_core::ScanView;

fn main() {
    let w = Workload::of_megabytes(5.2, 808);
    let cfg = standard_config();
    println!(
        "multi-GPU scaling study — {} stack, N × Tesla M2070\n",
        w.label
    );

    let g = w.scan.geometry.clone();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let cpu = laue_core::cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let cpu_s = cpu.modeled_time_s(&HostProps::xeon_e5630(), 1);

    let mut rows = Vec::new();
    let mut t1 = 0.0f64;
    let mut reference: Option<Vec<f64>> = None;
    for n_dev in [1usize, 2, 4, 8] {
        let devices: Vec<Device> = (0..n_dev)
            .map(|_| Device::new(DeviceProps::tesla_m2070()))
            .collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let mut source = w.source();
        let out = reconstruct_multi(
            &refs,
            &mut source,
            &w.scan.geometry,
            &cfg,
            GpuOptions::default(),
        )
        .expect("run");
        match &reference {
            None => reference = Some(out.image.data.clone()),
            Some(r) => assert_eq!(r, &out.image.data, "device count changed the answer"),
        }
        if n_dev == 1 {
            t1 = out.elapsed_s;
        }
        rows.push(vec![
            n_dev.to_string(),
            ms(out.elapsed_s),
            format!("{:.2}×", t1 / out.elapsed_s),
            format!("{:.1} %", 100.0 * t1 / (out.elapsed_s * n_dev as f64)),
            format!("{:.1} %", 100.0 * out.elapsed_s / cpu_s),
        ]);
    }
    print_table(
        &[
            "devices",
            "makespan (ms)",
            "speedup",
            "efficiency",
            "vs 1-core CPU",
        ],
        &rows,
    );
    println!(
        "\nbanding detector rows across devices needs no cross-device \
         synchronisation (bands are disjoint), so the transfer-bound pipeline \
         scales with aggregate PCIe bandwidth — results stay bit-identical."
    );
}
