//! **Extension study**: multi-GPU scaling — the direction the paper's
//! related work (Schaa & Kaeli, §II) points at but the paper never takes.
//!
//! Detector rows are banded across N simulated M2070s, under the two PCIe
//! topologies the simulator can model. *Private links* (one host per
//! device — a cluster of single-GPU nodes) scale with aggregate PCIe
//! bandwidth almost perfectly until per-device fixed costs bite. *Shared
//! bus* (every device in one workstation chassis, one half-duplex link)
//! is the honest model for a multi-GPU box: the pipeline is
//! transfer-bound, so the shared link caps scaling long before compute
//! does, and the bus-stall column shows exactly where the time goes.
//!
//! Run: `cargo run --release -p laue-bench --bin whatif_multigpu`

use cuda_sim::{Device, DeviceProps, Host};
use laue_bench::devices::paper_host;
use laue_bench::{ms, print_table, standard_config, Workload};
use laue_core::gpu::GpuOptions;
use laue_core::multi::reconstruct_multi;
use laue_core::ScanView;

fn main() {
    let w = Workload::of_megabytes(5.2, 808);
    let cfg = standard_config();
    println!(
        "multi-GPU scaling study — {} stack, N × Tesla M2070\n",
        w.label
    );

    let g = w.scan.geometry.clone();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let cpu = laue_core::cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let cpu_s = cpu.modeled_time_s(&paper_host(), 1);

    let mut rows = Vec::new();
    let mut t1 = 0.0f64;
    let mut reference: Option<Vec<f64>> = None;
    for n_dev in [1usize, 2, 4, 8] {
        let run = |devices: &[Device]| {
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source = w.source();
            reconstruct_multi(
                &refs,
                &mut source,
                &w.scan.geometry,
                &cfg,
                GpuOptions::default(),
            )
            .expect("run")
        };
        // Cluster topology: a PCIe link per device.
        let private: Vec<Device> = (0..n_dev)
            .map(|_| Device::new(DeviceProps::tesla_m2070()))
            .collect();
        let ideal = run(&private);
        // Workstation topology: one shared half-duplex bus.
        let host = Host::new_default();
        let chassis: Vec<Device> = (0..n_dev)
            .map(|_| Device::new_on_host(DeviceProps::tesla_m2070(), &host))
            .collect();
        let out = run(&chassis);
        for image in [&ideal.image.data, &out.image.data] {
            match &reference {
                None => reference = Some(image.clone()),
                Some(r) => assert_eq!(r, image, "topology or device count changed the answer"),
            }
        }
        if n_dev == 1 {
            t1 = out.elapsed_s;
        }
        let stalled: f64 = out.per_device.iter().map(|m| m.bus_wait_s).sum();
        rows.push(vec![
            n_dev.to_string(),
            ms(ideal.elapsed_s),
            ms(out.elapsed_s),
            ms(stalled),
            format!("{:.2}×", t1 / out.elapsed_s),
            format!("{:.1} %", 100.0 * t1 / (out.elapsed_s * n_dev as f64)),
            format!("{:.1} %", 100.0 * out.elapsed_s / cpu_s),
        ]);
    }
    print_table(
        &[
            "devices",
            "private links (ms)",
            "shared bus (ms)",
            "bus stall (ms)",
            "speedup",
            "efficiency",
            "vs 1-core CPU",
        ],
        &rows,
    );
    println!(
        "\nbanding detector rows across devices needs no cross-device \
         synchronisation (bands are disjoint), so results stay bit-identical \
         under either topology. With private links the transfer-bound \
         pipeline scales with aggregate PCIe bandwidth; on one shared bus \
         the link saturates and extra devices mostly queue — the speedup \
         column is the workstation's honest ceiling."
    );
}
