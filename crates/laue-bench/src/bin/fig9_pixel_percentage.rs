//! **Fig 9 of the paper**: CPU vs GPU at pixel percentages 25 / 50 / 100 %.
//!
//! The paper varies how many pixels pass the intensity cutoff; more active
//! pixels mean more computation *and* equal transfer volume, so the GPU's
//! advantage grows with the percentage. The cutoffs here are chosen from
//! the |ΔI| distribution so the realised active fractions land on the
//! paper's 25 / 50 / 100 % grid.
//!
//! Run: `cargo run --release -p laue-bench --bin fig9_pixel_percentage`

use laue_bench::{assert_same_image, delta_percentile, ms, print_table, standard_config, Workload};
use laue_core::gpu::Layout;
use laue_core::CompactionMode;
use laue_pipeline::Engine;

fn main() {
    let w = Workload::of_megabytes(3.6, 909);
    println!(
        "Fig 9 reproduction — pixel-percentage sweep on the {} stack, virtual machines\n",
        w.label
    );
    let sweeps = [
        ("100 %", 0.0),
        ("50 %", delta_percentile(&w, 0.50)),
        ("25 %", delta_percentile(&w, 0.75)),
    ];
    let mut rows = Vec::new();
    for (label, cutoff) in sweeps {
        let mut cfg = standard_config();
        cfg.intensity_cutoff = cutoff;
        let cpu = w.run(&cfg, Engine::CpuSeq);
        let gpu = w.run(
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        let mut sparse_cfg = cfg.clone();
        sparse_cfg.compaction = CompactionMode::On;
        let compact = w.run(
            &sparse_cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        assert_same_image(&cpu, &gpu);
        assert_same_image(&gpu, &compact);
        rows.push(vec![
            label.to_string(),
            format!("{:.1} %", 100.0 * gpu.stats.active_fraction()),
            format!("{cutoff:.2}"),
            ms(cpu.total_time_s),
            ms(gpu.total_time_s),
            ms(compact.total_time_s),
            format!("{:.1} %", 100.0 * gpu.total_time_s / cpu.total_time_s),
            format!(
                "{:.1} %",
                100.0 * compact.compute_time_s / gpu.compute_time_s
            ),
        ]);
    }
    print_table(
        &[
            "target",
            "active pairs",
            "cutoff",
            "CPU (ms)",
            "GPU (ms)",
            "GPU-compact (ms)",
            "GPU/CPU",
            "compact/dense kernel",
        ],
        &rows,
    );
    println!(
        "\nshape: the GPU wins at every percentage and its margin widens as more \
         pixels are processed — \"the more pixels we handle, the better \
         performance we can get\" (§IV-A). The compacted launch (prescan cost \
         included) pays off as the stack gets sparser and is bit-identical at \
         every percentage."
    );
}
