//! Shared harness for regenerating the paper's figures.
//!
//! Every figure binary builds workloads through this module so the
//! experiment parameters are recorded in one place:
//!
//! | binary | paper figure | what it sweeps |
//! |---|---|---|
//! | `fig4_layout` | Fig 4 | 1-D flat vs 3-D pointer-table device layout |
//! | `fig8_datasize` | Fig 8 + §IV headline | data-set size, CPU vs GPU |
//! | `fig9_pixel_percentage` | Fig 9 | pixel percentage (intensity cutoff) |
//! | `ablate_slab` | design (Fig 2) | rows per device slab |
//! | `ablate_atomics` | design (§III-C) | atomic-add cost share |
//! | `ablate_pipeline_depth` | related work | ring depth of the copy/compute pipeline |
//! | `bench_report` | — | machine-readable pipeline benchmark (`BENCH_pipeline.json`) |
//! | `bench_scaling` | — | cluster strong/weak scaling, overlap, topology, fabrics (`BENCH_scaling.json`) |
//!
//! The paper's datasets are 2.1–5.2 **GB** beamline scans; this harness
//! generates geometrically similar synthetic scans at 1/1000 scale
//! (2.1–5.2 MB) — see DESIGN.md §2 for why the substitution preserves the
//! comparisons. Reported times are **virtual seconds** from the calibrated
//! M2070/E5630 models, so the figures are deterministic and
//! machine-independent.

pub mod devices;

use laue_core::{ReconstructionConfig, SlabSource};
use laue_pipeline::{Engine, Pipeline, RunReport};
use laue_wire::{builder::dims_for_bytes, SyntheticScan, SyntheticScanBuilder};

/// Wire steps used by every figure workload.
pub const N_STEPS: usize = 64;

/// A generated benchmark workload.
pub struct Workload {
    /// Human label (e.g. `2.1 MB`).
    pub label: String,
    /// The scan (geometry + images + truth).
    pub scan: SyntheticScan,
    /// Logical size of the detector counts, bytes.
    pub bytes: u64,
}

impl Workload {
    /// Generate a workload of approximately `megabytes` of u16 counts.
    ///
    /// Noise makes every differential non-zero, so with no cutoff the run
    /// processes 100 % of pairs — the paper's default operating point.
    pub fn of_megabytes(megabytes: f64, seed: u64) -> Workload {
        let target = (megabytes * 1024.0 * 1024.0) as u64;
        let side = dims_for_bytes(target, N_STEPS);
        let scan = SyntheticScanBuilder::new(side, side, N_STEPS)
            .scatterers((side * side / 16).max(4))
            .background(20.0)
            .noise(1.0)
            .seed(seed)
            .build()
            .expect("workload generation");
        let bytes = (N_STEPS * side * side * 2) as u64;
        Workload {
            label: format!("{megabytes:.1} MB"),
            scan,
            bytes,
        }
    }

    /// Generate a workload with an explicit `rows` × `cols` detector.
    ///
    /// The weak-scaling study needs per-node work that partitions
    /// *exactly*: `of_megabytes` rounds its byte target to a square
    /// detector side, so doubling the target does not double the pair
    /// count. Scaling rows only (cols fixed) keeps every node's shard
    /// structurally identical, which is what makes a weak-scaling
    /// efficiency of 1.0 the true ceiling.
    pub fn of_dims(rows: usize, cols: usize, seed: u64) -> Workload {
        let scan = SyntheticScanBuilder::new(rows, cols, N_STEPS)
            .scatterers((rows * cols / 16).max(4))
            .background(20.0)
            .noise(1.0)
            .seed(seed)
            .build()
            .expect("workload generation");
        let bytes = (N_STEPS * rows * cols * 2) as u64;
        Workload {
            label: format!("{rows}x{cols}"),
            scan,
            bytes,
        }
    }

    /// The paper's Fig 8 sizes at 1/1000 scale.
    pub fn fig8_set() -> Vec<Workload> {
        [2.1, 2.7, 3.6, 5.2]
            .iter()
            .enumerate()
            .map(|(i, &mb)| Workload::of_megabytes(mb, 100 + i as u64))
            .collect()
    }

    /// A fresh in-memory slab source over this workload.
    pub fn source(&self) -> laue_core::InMemorySlabSource {
        laue_core::InMemorySlabSource::new(
            self.scan.images.clone(),
            self.scan.geometry.wire.n_steps,
            self.scan.geometry.detector.n_rows,
            self.scan.geometry.detector.n_cols,
        )
        .expect("source")
    }

    /// Run an engine over this workload with the default (paper) machines.
    pub fn run(&self, cfg: &ReconstructionConfig, engine: Engine) -> RunReport {
        let mut source = self.source();
        Pipeline::default()
            .run_source(&mut source, &self.scan.geometry, cfg, engine)
            .expect("pipeline run")
    }

    /// Detector side length.
    pub fn side(&self) -> usize {
        self.scan.geometry.detector.n_rows
    }
}

/// The depth window every figure uses: wide enough for the demo geometry's
/// full per-pixel depth spread, 200 bins.
pub fn standard_config() -> ReconstructionConfig {
    ReconstructionConfig::new(-4000.0, 4000.0, 200)
}

/// Percentile of |ΔI| over a stack — used to pick cutoffs that select a
/// target pixel percentage for Fig 9.
pub fn delta_percentile(w: &Workload, fraction: f64) -> f64 {
    let g = &w.scan.geometry;
    let (p, m, n) = (g.wire.n_steps, g.detector.n_rows, g.detector.n_cols);
    let mut deltas: Vec<f64> = Vec::with_capacity((p - 1) * m * n);
    for z in 0..p - 1 {
        for px in 0..m * n {
            deltas
                .push((w.scan.images[z * m * n + px] - w.scan.images[(z + 1) * m * n + px]).abs());
        }
    }
    deltas.sort_by(f64::total_cmp);
    deltas[((deltas.len() as f64 * fraction) as usize).min(deltas.len() - 1)]
}

/// Fixed-width table printing for the figure binaries.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Verify two engines produced identical images (sanity check inside the
/// figure binaries — a benchmark over diverging results is meaningless).
pub fn assert_same_image(a: &RunReport, b: &RunReport) {
    assert_eq!(
        a.image.data, b.image.data,
        "{} and {} disagree — benchmark invalid",
        a.engine, b.engine
    );
}

/// Streaming source wrapper used by slab ablations (forces re-reads).
pub fn fresh_source(w: &Workload) -> Box<dyn SlabSource> {
    Box::new(w.source())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sizes_track_targets() {
        let w = Workload::of_megabytes(2.1, 1);
        let ratio = w.bytes as f64 / (2.1 * 1024.0 * 1024.0);
        assert!((0.8..=1.05).contains(&ratio), "ratio {ratio}");
        assert_eq!(w.scan.geometry.wire.n_steps, N_STEPS);
    }

    #[test]
    fn fig8_set_is_monotone_in_size() {
        // Use tiny stand-ins to keep the test fast.
        let sizes = [0.2, 0.4];
        let ws: Vec<Workload> = sizes
            .iter()
            .map(|&mb| Workload::of_megabytes(mb, 7))
            .collect();
        assert!(ws[1].bytes > ws[0].bytes);
        assert!(ws[1].side() > ws[0].side());
    }

    #[test]
    fn of_dims_scales_rows_exactly() {
        let w1 = Workload::of_dims(20, 10, 9);
        let w2 = Workload::of_dims(40, 10, 9);
        assert_eq!(w2.bytes, 2 * w1.bytes, "rows-only scaling doubles exactly");
        assert_eq!(w1.scan.geometry.detector.n_cols, 10);
        assert_eq!(w2.scan.geometry.detector.n_rows, 40);
    }

    #[test]
    fn delta_percentile_is_monotone() {
        let w = Workload::of_megabytes(0.2, 3);
        let p25 = delta_percentile(&w, 0.25);
        let p50 = delta_percentile(&w, 0.50);
        let p75 = delta_percentile(&w, 0.75);
        assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn table_printer_aligns() {
        // Just exercise the formatting paths.
        print_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(ms(0.001234), "1.234");
    }
}
