//! The shared hardware matrix for the what-if and validation studies.
//!
//! Every binary that sweeps "the era's hardware" draws from this one table
//! so the studies stay comparable: the paper's Tesla M2070 (the calibrated
//! baseline), a consumer Fermi with throttled double precision (GTX 580),
//! and the next-generation Tesla K40 with native f64 atomics.

use cuda_sim::{DeviceProps, HostProps, InterconnectProps};

/// The hardware-era device matrix: M2070 (paper), GTX 580, K40.
pub fn era_matrix() -> Vec<DeviceProps> {
    vec![
        DeviceProps::tesla_m2070(),
        DeviceProps::gtx_580(),
        DeviceProps::tesla_k40(),
    ]
}

/// The cluster-fabric matrix for the scaling studies: the era's QDR and
/// FDR InfiniBand, an NVLink-class fabric as the optimistic ceiling, and
/// gigabit Ethernet as the pessimistic floor. Leads with QDR — the
/// pipeline's default interconnect.
pub fn fabric_matrix() -> Vec<InterconnectProps> {
    vec![
        InterconnectProps::ib_qdr(),
        InterconnectProps::ib_fdr(),
        InterconnectProps::nvlink_class(),
        InterconnectProps::gige(),
    ]
}

/// The paper's host machine (Xeon E5630).
pub fn paper_host() -> HostProps {
    HostProps::xeon_e5630()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_matrix_leads_with_the_default_and_resolves_by_name() {
        let m = fabric_matrix();
        assert_eq!(m[0], InterconnectProps::ib_qdr());
        for f in &m {
            assert_eq!(
                InterconnectProps::by_name(&f.name).as_ref(),
                Some(f),
                "preset {} must resolve through by_name",
                f.name
            );
        }
        for i in 0..m.len() {
            for j in i + 1..m.len() {
                assert_ne!(m[i].name, m[j].name);
            }
        }
    }

    #[test]
    fn era_matrix_leads_with_the_paper_device() {
        let m = era_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].name, DeviceProps::tesla_m2070().name);
        // Distinct devices — a duplicate row would silently weaken the sweep.
        for i in 0..m.len() {
            for j in i + 1..m.len() {
                assert_ne!(m[i].name, m[j].name);
            }
        }
    }
}
