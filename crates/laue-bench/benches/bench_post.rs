//! Microbenchmarks of the post-processing and uncertainty paths (host
//! wall-clock): smoothing, peak finding, depth-map extraction, and the
//! covariance-aware variance propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use laue_bench::{standard_config, Workload};
use laue_core::post::{depth_map, find_peaks, smooth_profile, DepthMapOptions};
use laue_core::uncertainty::reconstruct_with_variance;
use laue_core::{cpu, ScanView};
use std::hint::black_box;

fn bench_post(c: &mut Criterion) {
    // A reconstructed image to post-process.
    let w = Workload::of_megabytes(0.2, 5);
    let g = w.scan.geometry.clone();
    let cfg = standard_config();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let out = cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
    let profile = out
        .image
        .depth_profile(g.detector.n_rows / 2, g.detector.n_cols / 2);

    c.bench_function("smooth_profile_200bins", |b| {
        b.iter(|| black_box(smooth_profile(&profile, 1.5)))
    });
    c.bench_function("find_peaks_200bins", |b| {
        b.iter(|| black_box(find_peaks(&profile, &cfg, 1.0)))
    });
    let mut group = c.benchmark_group("heavy");
    group.sample_size(10);
    group.bench_function("depth_map_full_frame", |b| {
        b.iter(|| black_box(depth_map(&out.image, &cfg, &DepthMapOptions::default())))
    });
    group.bench_function("reconstruct_with_variance", |b| {
        b.iter(|| black_box(reconstruct_with_variance(&view, &g, &cfg).unwrap().stats))
    });
    group.finish();
}

criterion_group!(benches, bench_post);
criterion_main!(benches);
