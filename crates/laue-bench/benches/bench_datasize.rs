//! Fig 8 companion (host wall-clock): CPU engine vs simulated-GPU engine
//! across data sizes. Wall-clock here measures the *implementations* (the
//! sequential loop vs the simulator running the same kernels); the
//! calibrated virtual-time figure is produced by `--bin fig8_datasize`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cuda_sim::{Device, DeviceProps};
use laue_bench::{standard_config, Workload};
use laue_core::gpu::{self, Layout};
use laue_core::{cpu, ScanView};
use std::hint::black_box;

fn bench_datasize(c: &mut Criterion) {
    let cfg = standard_config();
    let mut group = c.benchmark_group("fig8_datasize");
    group.sample_size(10);
    for mb in [0.1f64, 0.2, 0.4] {
        let w = Workload::of_megabytes(mb, 7);
        let g = w.scan.geometry.clone();
        group.bench_with_input(BenchmarkId::new("cpu_seq", &w.label), &w, |b, w| {
            let view = ScanView::new(
                &w.scan.images,
                g.wire.n_steps,
                g.detector.n_rows,
                g.detector.n_cols,
            )
            .unwrap();
            b.iter(|| black_box(cpu::reconstruct_seq(&view, &g, &cfg).unwrap().stats))
        });
        group.bench_with_input(BenchmarkId::new("gpu_sim", &w.label), &w, |b, w| {
            b.iter(|| {
                let device = Device::new(DeviceProps::tesla_m2070());
                let mut source = w.source();
                black_box(
                    gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, Layout::Flat1d)
                        .unwrap()
                        .stats,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datasize);
criterion_main!(benches);
