//! Microbenchmarks of the hot primitives (host wall-clock): the depth
//! triangulation, the per-pair planner, the occlusion test, and the mh5
//! hyperslab read path that feeds the slab pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use laue_core::pair::plan_pair;
use laue_core::{ReconstructionConfig, ScanGeometry};
use laue_geometry::WireEdge;
use mh5::{Dtype, FileReader, FileWriter};
use std::hint::black_box;

fn bench_geometry(c: &mut Criterion) {
    let geom = ScanGeometry::demo(64, 64, 32, -60.0, 5.0).unwrap();
    let mapper = geom.mapper().unwrap();
    let pixel = geom.detector.pixel_to_xyz(30, 30).unwrap();
    let wire = geom.wire.center(10).unwrap();

    c.bench_function("depth_triangulation", |b| {
        b.iter(|| mapper.depth(black_box(pixel), black_box(wire), WireEdge::Leading))
    });

    c.bench_function("occlusion_test", |b| {
        b.iter(|| mapper.occludes(black_box(12.5), black_box(pixel), black_box(wire)))
    });

    let cfg = ReconstructionConfig::new(-2000.0, 2000.0, 200);
    let w0 = geom.wire.center(10).unwrap();
    let w1 = geom.wire.center(11).unwrap();
    c.bench_function("plan_pair_active", |b| {
        b.iter(|| {
            let mut fl = 0u64;
            plan_pair(
                &mapper,
                &cfg,
                black_box(pixel),
                black_box(w0),
                black_box(w1),
                black_box(200.0),
                black_box(150.0),
                &mut fl,
            )
        })
    });
    let mut cut = cfg.clone();
    cut.intensity_cutoff = 100.0;
    c.bench_function("plan_pair_cutoff", |b| {
        b.iter(|| {
            let mut fl = 0u64;
            plan_pair(
                &mapper,
                &cut,
                black_box(pixel),
                black_box(w0),
                black_box(w1),
                black_box(200.0),
                black_box(199.0),
                &mut fl,
            )
        })
    });
}

fn bench_mh5(c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!("bench_mh5_{}.mh5", std::process::id()));
    let (p, m, n) = (16usize, 64usize, 64usize);
    {
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset(
                FileWriter::ROOT,
                "images",
                Dtype::U16,
                &[p, m, n],
                &[1, 8, n],
            )
            .unwrap();
        let data: Vec<u16> = (0..p * m * n).map(|i| (i % 60000) as u16).collect();
        w.write_all(ds, &data).unwrap();
        w.finish().unwrap();
    }
    let r = FileReader::open(&path).unwrap();
    let ds = r.resolve_path("/images").unwrap();
    c.bench_function("mh5_hyperslab_2rows", |b| {
        b.iter(|| {
            let rows: Vec<u16> = r.read_hyperslab(ds, &[0, 8, 0], &[p, 2, n]).unwrap();
            black_box(rows)
        })
    });
    c.bench_function("mh5_read_all", |b| {
        b.iter(|| {
            let all: Vec<u16> = r.read_all(ds).unwrap();
            black_box(all)
        })
    });

    c.bench_function("rle_encode_detector_background", |b| {
        let flat = vec![0x0Au8; 64 * 1024];
        b.iter_batched(
            || flat.clone(),
            |data| black_box(mh5::codec::rle_encode(&data)),
            BatchSize::SmallInput,
        )
    });
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_geometry, bench_mh5
}
criterion_main!(benches);
