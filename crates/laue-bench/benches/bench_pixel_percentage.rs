//! Fig 9 companion (host wall-clock): the intensity cutoff really changes
//! how much work the engines do — below-cutoff pairs skip the triangulation
//! entirely, so wall-clock drops with the pixel percentage on both engines.
//! The calibrated virtual-time figure is produced by
//! `--bin fig9_pixel_percentage`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laue_bench::{delta_percentile, standard_config, Workload};
use laue_core::{cpu, ScanView};
use std::hint::black_box;

fn bench_pixel_percentage(c: &mut Criterion) {
    let w = Workload::of_megabytes(0.3, 11);
    let g = w.scan.geometry.clone();
    let view = ScanView::new(
        &w.scan.images,
        g.wire.n_steps,
        g.detector.n_rows,
        g.detector.n_cols,
    )
    .unwrap();
    let mut group = c.benchmark_group("fig9_pixel_percentage");
    group.sample_size(10);
    for (label, frac) in [("100pct", 0.0f64), ("50pct", 0.5), ("25pct", 0.75)] {
        let mut cfg = standard_config();
        cfg.intensity_cutoff = if frac == 0.0 {
            0.0
        } else {
            delta_percentile(&w, frac)
        };
        group.bench_with_input(BenchmarkId::new("cpu_seq", label), &cfg, |b, cfg| {
            b.iter(|| black_box(cpu::reconstruct_seq(&view, &g, cfg).unwrap().stats))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pixel_percentage);
criterion_main!(benches);
