//! Fig 4 companion (host wall-clock): measures how long the *simulation*
//! of each layout takes on the host. Note this is simulator overhead, not
//! device time — the simulator's per-element copy loops and allocation
//! patterns differ between layouts, so the wall-clock ordering here need
//! not match the modeled ordering. The calibrated virtual-time figure —
//! the authoritative Fig 4 reproduction — is produced by
//! `--bin fig4_layout`.

use criterion::{criterion_group, criterion_main, Criterion};
use cuda_sim::{Device, DeviceProps};
use laue_bench::{standard_config, Workload};
use laue_core::gpu::{self, Layout};
use std::hint::black_box;

fn bench_layouts(c: &mut Criterion) {
    let w = Workload::of_megabytes(0.3, 42);
    let cfg = standard_config();
    let mut group = c.benchmark_group("fig4_layout");
    group.sample_size(10);
    for (name, layout) in [
        ("flat_1d", Layout::Flat1d),
        ("pointer_3d", Layout::Pointer3d),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let device = Device::new(DeviceProps::tesla_m2070());
                let mut source = w.source();
                let out =
                    gpu::reconstruct(&device, &mut source, &w.scan.geometry, &cfg, layout).unwrap();
                black_box(out.image.data.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
