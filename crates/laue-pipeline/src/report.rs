//! Run reports: what happened and where the virtual time went.

use laue_core::cache::TableCacheStats;
use laue_core::{DepthImage, IntegrityReport, ReconStats};

/// How a run came back from interruption or device loss: slabs replayed
/// from a journal, slabs salvaged from a dead GPU run, rows recomputed on
/// the CPU, devices lost mid-run. All zero / `None` for a clean run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryAccounting {
    /// GPU-committed slabs kept when the run degraded to the CPU (the CPU
    /// recomputed only the remainder).
    pub salvaged_slabs: usize,
    /// Row bands the CPU recomputed after a GPU failure.
    pub recomputed_slabs: usize,
    /// Devices that died mid-run (multi-GPU failover).
    pub devices_lost: u32,
    /// Set when the run resumed from a journal instead of starting fresh.
    pub resume: Option<ResumeInfo>,
}

impl RecoveryAccounting {
    /// Did anything out of the ordinary happen?
    pub fn is_noteworthy(&self) -> bool {
        *self != RecoveryAccounting::default()
    }
}

/// Provenance of a resumed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Journal key hash (hex) the resume matched on.
    pub journal_key: String,
    /// Committed slabs replayed from the journal instead of recomputed.
    pub slabs_replayed: usize,
}

/// How the cost-model planner chose this run's execution plan, and how
/// close its prediction came to the measured virtual time — the run's
/// "explain" block under `--plan auto`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// Label of the chosen plan (e.g. `flat1d/inkernel/k3/r128`).
    pub chosen: String,
    /// Predicted virtual makespan of the chosen plan, seconds.
    pub predicted_s: f64,
    /// Modeled host-CPU table/cull seconds (parallel; excluded from the
    /// makespan prediction like the measured report excludes it).
    pub host_s: f64,
    /// Measured virtual makespan of the run that actually executed.
    pub measured_s: f64,
    /// Every candidate the planner scored: `(label, predicted seconds)`.
    pub candidates: Vec<(String, f64)>,
}

impl PlanExplain {
    /// Relative prediction error `|predicted − measured| / measured`
    /// (0 when nothing was measured).
    pub fn prediction_error(&self) -> f64 {
        if self.measured_s <= 0.0 {
            return 0.0;
        }
        (self.predicted_s - self.measured_s).abs() / self.measured_s
    }
}

/// Multi-node accounting of a `gpu-cluster` run: fabric traffic, the
/// reduction's exposed cost, and one [`laue_core::NodeOutcome`] per node
/// (rows, virtual time, interconnect wait, node-granular integrity and
/// fault-injection counters). `None` for every other engine.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Reduction routing and overlap, e.g. `tree+overlap`.
    pub options: String,
    /// Interconnect preset the fabric was modeled on (e.g. `ib-qdr`).
    pub interconnect: String,
    /// Slowest node's compute finish (the reduction overlaps the rest).
    pub compute_s: f64,
    /// Reduction time *not* hidden behind compute, seconds.
    pub reduction_exposed_s: f64,
    /// Seconds reduction segments queued on busy fabric links beyond
    /// their uncontended message time, summed over nodes.
    pub net_wait_s: f64,
    /// Unique reduction payload bytes that left their origin node (the
    /// fabric moves more — each relay hop re-transmits).
    pub net_bytes: u64,
    /// Messages the fabric carried (every hop counts).
    pub net_messages: u64,
    /// Nodes whose devices all died mid-run (rows re-banded onto
    /// survivors).
    pub nodes_lost: u32,
    /// Per-node breakdown, head node first.
    pub nodes: Vec<laue_core::NodeOutcome>,
}

/// Everything a reconstruction run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine label (e.g. `cpu-seq`, `gpu-1d`).
    pub engine: String,
    /// The depth-resolved output.
    pub image: DepthImage,
    /// Outcome counters.
    pub stats: ReconStats,
    /// Modeled end-to-end time, seconds (virtual).
    pub total_time_s: f64,
    /// Time in host↔device transfers (zero for CPU engines).
    pub comm_time_s: f64,
    /// Extra time transfers spent queued on (or fragmented across) the
    /// host's shared PCIe bus beyond their uncontended duration. Zero for
    /// strictly serial single-device schedules; nonzero whenever streams
    /// or fleet devices contend for the link.
    pub bus_wait_s: f64,
    /// Host-CPU time spent producing depth tables (and culling masks) for
    /// the device. Accounted in parallel with device time — included here
    /// for visibility, not added to `total_time_s`.
    pub host_table_time_s: f64,
    /// Time computing.
    pub compute_time_s: f64,
    /// Logical input size (detector counts), bytes.
    pub input_bytes: u64,
    /// Stack dimensions `(images, rows, cols)`.
    pub dims: (usize, usize, usize),
    /// Rows per device slab (GPU engines; 0 for CPU).
    pub rows_per_slab: usize,
    /// Slabs processed (GPU engines; 0 for CPU).
    pub n_slabs: usize,
    /// Host↔device transfers performed (GPU engines; 0 for CPU).
    pub transfers: u64,
    /// Times the GPU engine re-planned with smaller slabs after device OOM.
    pub gpu_replans: u32,
    /// Transient transfer faults the GPU engine absorbed by retrying.
    pub gpu_transfer_retries: u32,
    /// Ring depth the GPU pipeline actually ran at (1 = serial; 0 for CPU
    /// engines). May be lower than requested if device memory was tight.
    pub pipeline_depth: usize,
    /// Depth-table cache counters for this run (all zero for CPU engines
    /// and for GPU engines that triangulate in-kernel).
    pub table_cache: TableCacheStats,
    /// Achieved active-pair density per processed slab (compaction runs
    /// only; empty when `--compaction off` or for engines that saw no
    /// slabs).
    pub slab_densities: Vec<f64>,
    /// Per processed slab, whether the shared-memory privatized accumulator
    /// ran (`false` = the slab fell back to the atomic path). Empty under
    /// `--accumulation atomic` and for CPU engines.
    pub slab_privatized: Vec<bool>,
    /// Set when `--plan auto` chose this run's execution plan: what was
    /// chosen, what it was predicted to cost, and the prediction error.
    pub plan: Option<PlanExplain>,
    /// Set when the run degraded to another engine after a GPU failure;
    /// records what failed and where execution landed.
    pub fallback: Option<String>,
    /// Checkpoint/resume and failover accounting (all zero when the run
    /// neither resumed, salvaged, nor lost a device).
    pub recovery: RecoveryAccounting,
    /// Integrity-layer accounting: checks run, corruptions detected and
    /// corrected, verification overhead. All zeros under `--integrity off`
    /// and for CPU engines.
    pub integrity: IntegrityReport,
    /// What the device's fault plan actually injected (fault-injection
    /// runs only; `None` when no plan was installed). Lets chaos harnesses
    /// compare detected corruption against injected ground truth.
    pub faults_injected: Option<cuda_sim::FaultStats>,
    /// Per-launch trace slots the simulator dropped because a kernel asked
    /// for more slots than the device records (diagnostic; normally 0).
    pub trace_dropped: u64,
    /// Multi-node accounting (`gpu-cluster` engines only).
    pub cluster: Option<ClusterReport>,
}

impl RunReport {
    /// A one-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let (p, m, n) = self.dims;
        let mut s = format!(
            "engine {} reconstructed a {p}×{m}×{n} stack ({:.1} MiB) in {:.4} s \
             (compute {:.4} s, transfers {:.4} s)",
            self.engine,
            self.input_bytes as f64 / (1024.0 * 1024.0),
            self.total_time_s,
            self.compute_time_s,
            self.comm_time_s,
        );
        if self.bus_wait_s > 0.0 {
            s.push_str(&format!(
                "; bus contention added {:.4} s of transfer stall",
                self.bus_wait_s
            ));
        }
        if self.host_table_time_s > 0.0 {
            s.push_str(&format!(
                "; host tables took {:.4} s of CPU time (overlapped)",
                self.host_table_time_s
            ));
        }
        s.push_str(&format!(
            "; {} of {} pairs deposited ({:.1} % active), {} skipped by cutoff",
            self.stats.pairs_deposited,
            self.stats.pairs_total,
            100.0 * self.stats.active_fraction(),
            self.stats.pairs_below_cutoff,
        ));
        if self.n_slabs > 0 {
            if self.rows_per_slab > 0 {
                s.push_str(&format!(
                    "; {} slab(s) of {} row(s)",
                    self.n_slabs, self.rows_per_slab
                ));
            } else {
                s.push_str(&format!("; {} slab(s)", self.n_slabs));
            }
            if self.pipeline_depth > 1 {
                s.push_str(&format!(", ring depth {}", self.pipeline_depth));
            }
        }
        if self.table_cache.hits() + self.table_cache.misses() > 0 {
            s.push_str(&format!(
                "; table cache: {} hit(s), {} miss(es), {} eviction(s)",
                self.table_cache.hits(),
                self.table_cache.misses(),
                self.table_cache.evictions,
            ));
        }
        if !self.slab_densities.is_empty() {
            let mean = self.slab_densities.iter().sum::<f64>() / self.slab_densities.len() as f64;
            s.push_str(&format!(
                "; sparsity: {:.1} % mean active density over {} slab(s), \
                 {} pair(s) compacted, {} row-combo(s) culled",
                100.0 * mean,
                self.slab_densities.len(),
                self.stats.compacted_pairs,
                self.stats.culled_rows,
            ));
        }
        if !self.slab_privatized.is_empty() {
            let on = self.slab_privatized.iter().filter(|&&p| p).count();
            s.push_str(&format!(
                "; accumulation: privatized on {on} of {} slab(s)",
                self.slab_privatized.len()
            ));
            if self.stats.accum_fallback_pairs > 0 {
                s.push_str(&format!(
                    " ({} pair(s) fell back to atomic)",
                    self.stats.accum_fallback_pairs
                ));
            }
        }
        if let Some(plan) = &self.plan {
            s.push_str(&format!(
                "; plan auto chose {} (predicted {:.4} s, {:.1} % off, \
                 {} candidate(s) scored)",
                plan.chosen,
                plan.predicted_s,
                100.0 * plan.prediction_error(),
                plan.candidates.len(),
            ));
        }
        if let Some(c) = &self.cluster {
            let alive = c.nodes.iter().filter(|n| !n.lost).count();
            s.push_str(&format!(
                "; cluster: {} node(s) over {} ({}), reduction exposed {:.4} s, \
                 {} fabric message(s) moving {:.2} MiB of segments",
                alive,
                c.interconnect,
                c.options,
                c.reduction_exposed_s,
                c.net_messages,
                c.net_bytes as f64 / (1024.0 * 1024.0),
            ));
            if c.net_wait_s > 0.0 {
                s.push_str(&format!(" ({:.4} s queued on busy links)", c.net_wait_s));
            }
            if c.nodes_lost > 0 {
                s.push_str(&format!(
                    "; DEGRADED: {} node(s) lost mid-run, rows re-banded onto survivors",
                    c.nodes_lost
                ));
            }
        }
        if self.gpu_replans > 0 || self.gpu_transfer_retries > 0 {
            s.push_str(&format!(
                "; recovered from device faults ({} re-plan(s), {} transfer retry(ies))",
                self.gpu_replans, self.gpu_transfer_retries
            ));
        }
        if let Some(resume) = &self.recovery.resume {
            s.push_str(&format!(
                "; resumed from journal {}: {} slab(s) replayed",
                resume.journal_key, resume.slabs_replayed
            ));
        }
        if self.recovery.devices_lost > 0 {
            s.push_str(&format!(
                "; {} device(s) lost mid-run, rows requeued onto survivors",
                self.recovery.devices_lost
            ));
        }
        if self.recovery.salvaged_slabs > 0 || self.recovery.recomputed_slabs > 0 {
            s.push_str(&format!(
                "; salvage: {} GPU slab(s) kept, {} band(s) recomputed on the CPU",
                self.recovery.salvaged_slabs, self.recovery.recomputed_slabs
            ));
        }
        if self.integrity.checks_run > 0 {
            s.push_str(&format!(
                "; integrity: {} check(s), {} corruption(s) detected \
                 ({} CRC, {} ABFT, {} watchdog), {} corrected, \
                 verify host-CPU {:.4} s, exposed {:.4} s",
                self.integrity.checks_run,
                self.integrity.corruptions_detected,
                self.integrity.transfer_crc_failures,
                self.integrity.abft_mismatches,
                self.integrity.watchdog_timeouts,
                self.integrity.corruptions_corrected,
                self.integrity.verify_host_cpu_s,
                self.integrity.exposed_overhead_s,
            ));
            if self.integrity.cpu_fallback_slabs > 0 {
                s.push_str(&format!(
                    " ({} slab(s) repaired from the host reference)",
                    self.integrity.cpu_fallback_slabs
                ));
            }
        }
        if self.trace_dropped > 0 {
            s.push_str(&format!(
                "; {} launch-trace slot(s) dropped",
                self.trace_dropped
            ));
        }
        if let Some(fallback) = &self.fallback {
            s.push_str(&format!("; DEGRADED: {fallback}"));
        }
        if self.integrity.degraded() {
            s.push_str(
                "; INTEGRITY-DEGRADED: silent corruption was detected and \
                 repaired during this run",
            );
        }
        s
    }

    /// Fraction of total time spent communicating (GPU engines).
    pub fn comm_fraction(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.comm_time_s / self.total_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut stats = ReconStats::default();
        stats.record(laue_core::stats::PairOutcome::Deposited { bins: 2 });
        stats.record(laue_core::stats::PairOutcome::BelowCutoff);
        RunReport {
            engine: "gpu-1d".into(),
            image: DepthImage::zeroed(2, 2, 2),
            stats,
            total_time_s: 2.0,
            comm_time_s: 0.5,
            bus_wait_s: 0.0,
            host_table_time_s: 0.0,
            compute_time_s: 1.5,
            input_bytes: 4 * 1024 * 1024,
            dims: (8, 64, 64),
            rows_per_slab: 16,
            n_slabs: 4,
            transfers: 12,
            gpu_replans: 0,
            gpu_transfer_retries: 0,
            pipeline_depth: 1,
            table_cache: TableCacheStats::default(),
            slab_densities: Vec::new(),
            slab_privatized: Vec::new(),
            plan: None,
            fallback: None,
            recovery: RecoveryAccounting::default(),
            integrity: IntegrityReport::default(),
            faults_injected: None,
            trace_dropped: 0,
            cluster: None,
        }
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let s = report().summary();
        assert!(s.contains("gpu-1d"));
        assert!(s.contains("8×64×64"));
        assert!(s.contains("4.0 MiB"));
        assert!(s.contains("slab"));
        assert!(s.contains("50.0 % active"));
        assert!(!s.contains("recovered"), "clean run mentions no recovery");
        assert!(!s.contains("DEGRADED"));
        assert!(!s.contains("ring depth"), "serial run mentions no ring");
        assert!(!s.contains("table cache"), "untouched cache stays silent");
        assert!(!s.contains("sparsity"), "dense run mentions no sparsity");
        assert!(
            !s.contains("accumulation"),
            "atomic run mentions no accumulation"
        );
    }

    #[test]
    fn summary_reports_bus_contention_and_host_tables() {
        let quiet = report().summary();
        assert!(!quiet.contains("bus contention"), "{quiet}");
        assert!(!quiet.contains("host tables"), "{quiet}");
        let mut r = report();
        r.bus_wait_s = 0.125;
        r.host_table_time_s = 0.25;
        let s = r.summary();
        assert!(
            s.contains("bus contention added 0.1250 s of transfer stall"),
            "{s}"
        );
        assert!(
            s.contains("host tables took 0.2500 s of CPU time (overlapped)"),
            "{s}"
        );
    }

    #[test]
    fn summary_reports_accumulation() {
        let mut r = report();
        r.slab_privatized = vec![true, true, true, false];
        let s = r.summary();
        assert!(
            s.contains("accumulation: privatized on 3 of 4 slab(s)"),
            "{s}"
        );
        assert!(!s.contains("fell back"), "no fallback pairs recorded: {s}");
        r.stats.accum_fallback_pairs = 9;
        let s = r.summary();
        assert!(s.contains("(9 pair(s) fell back to atomic)"), "{s}");
    }

    #[test]
    fn summary_reports_sparsity() {
        let mut r = report();
        r.slab_densities = vec![0.25, 0.35];
        r.stats.culled_rows = 7;
        r.stats.compacted_pairs = 41;
        let s = r.summary();
        assert!(
            s.contains("sparsity: 30.0 % mean active density over 2 slab(s)"),
            "{s}"
        );
        assert!(s.contains("41 pair(s) compacted"), "{s}");
        assert!(s.contains("7 row-combo(s) culled"), "{s}");
    }

    #[test]
    fn summary_reports_ring_depth_and_cache_traffic() {
        let mut r = report();
        r.pipeline_depth = 3;
        r.table_cache.host_hits = 1;
        r.table_cache.device_hits = 1;
        let s = r.summary();
        assert!(s.contains("ring depth 3"), "{s}");
        assert!(s.contains("table cache: 2 hit(s), 0 miss(es)"), "{s}");
    }

    #[test]
    fn summary_reports_recovery_and_degradation() {
        let mut r = report();
        r.gpu_replans = 2;
        r.gpu_transfer_retries = 5;
        let s = r.summary();
        assert!(s.contains("2 re-plan(s)") && s.contains("5 transfer retry(ies)"));
        r.fallback = Some("gpu-1d failed: device lost; completed on cpu-seq".into());
        assert!(r.summary().contains("DEGRADED: gpu-1d failed"));
    }

    #[test]
    fn summary_reports_resume_failover_and_salvage() {
        let mut r = report();
        r.recovery.resume = Some(ResumeInfo {
            journal_key: "00deadbeef00cafe".into(),
            slabs_replayed: 3,
        });
        r.recovery.devices_lost = 1;
        r.recovery.salvaged_slabs = 5;
        r.recovery.recomputed_slabs = 2;
        let s = r.summary();
        assert!(
            s.contains("resumed from journal 00deadbeef00cafe: 3 slab(s) replayed"),
            "{s}"
        );
        assert!(s.contains("1 device(s) lost"), "{s}");
        assert!(
            s.contains("salvage: 5 GPU slab(s) kept, 2 band(s) recomputed"),
            "{s}"
        );
        assert!(r.recovery.is_noteworthy());
        assert!(!report().recovery.is_noteworthy());

        // A multi-GPU run reports slabs without a fixed per-slab row count.
        let mut r = report();
        r.rows_per_slab = 0;
        let s = r.summary();
        assert!(s.contains("; 4 slab(s)"), "{s}");
        assert!(!s.contains("0 row(s)"), "{s}");
    }

    #[test]
    fn summary_reports_plan_choice() {
        let quiet = report().summary();
        assert!(!quiet.contains("plan auto"), "{quiet}");
        let mut r = report();
        r.plan = Some(PlanExplain {
            chosen: "flat1d/inkernel/k3/r16".into(),
            predicted_s: 1.8,
            host_s: 0.0,
            measured_s: 2.0,
            candidates: vec![
                ("flat1d/inkernel/k3/r16".into(), 1.8),
                ("ptr3d/tables/k1/r16".into(), 3.5),
            ],
        });
        let s = r.summary();
        assert!(s.contains("plan auto chose flat1d/inkernel/k3/r16"), "{s}");
        assert!(s.contains("predicted 1.8000 s, 10.0 % off"), "{s}");
        assert!(s.contains("2 candidate(s) scored"), "{s}");
        assert!((r.plan.unwrap().prediction_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_integrity() {
        let quiet = report().summary();
        assert!(!quiet.contains("integrity"), "{quiet}");
        assert!(!quiet.contains("INTEGRITY-DEGRADED"), "{quiet}");

        // Clean verified run: checks reported, no degradation marker.
        let mut r = report();
        r.integrity.checks_run = 9;
        r.integrity.verify_host_cpu_s = 0.0125;
        let s = r.summary();
        assert!(
            s.contains("integrity: 9 check(s), 0 corruption(s) detected"),
            "{s}"
        );
        assert!(
            s.contains("verify host-CPU 0.0125 s, exposed 0.0000 s"),
            "{s}"
        );
        assert!(!s.contains("INTEGRITY-DEGRADED"), "{s}");

        // Corruption caught and scrubbed: the run is marked degraded.
        r.integrity.corruptions_detected = 2;
        r.integrity.corruptions_corrected = 2;
        r.integrity.abft_mismatches = 1;
        r.integrity.transfer_crc_failures = 1;
        r.integrity.cpu_fallback_slabs = 1;
        let s = r.summary();
        assert!(
            s.contains("2 corruption(s) detected (1 CRC, 1 ABFT, 0 watchdog), 2 corrected"),
            "{s}"
        );
        assert!(
            s.contains("1 slab(s) repaired from the host reference"),
            "{s}"
        );
        assert!(s.contains("INTEGRITY-DEGRADED"), "{s}");
    }

    #[test]
    fn summary_reports_cluster_accounting() {
        let quiet = report().summary();
        assert!(!quiet.contains("cluster:"), "{quiet}");
        let mut r = report();
        let lost = laue_core::NodeOutcome {
            node: 2,
            lost: true,
            ..Default::default()
        };
        r.cluster = Some(ClusterReport {
            options: "tree+overlap".into(),
            interconnect: "ib-qdr".into(),
            compute_s: 1.25,
            reduction_exposed_s: 0.0625,
            net_wait_s: 0.5,
            net_bytes: 3 * 1024 * 1024,
            net_messages: 7,
            nodes_lost: 1,
            nodes: vec![
                laue_core::NodeOutcome::default(),
                laue_core::NodeOutcome {
                    node: 1,
                    ..laue_core::NodeOutcome::default()
                },
                lost,
            ],
        });
        let s = r.summary();
        assert!(
            s.contains("cluster: 2 node(s) over ib-qdr (tree+overlap)"),
            "{s}"
        );
        assert!(s.contains("reduction exposed 0.0625 s"), "{s}");
        assert!(s.contains("7 fabric message(s) moving 3.00 MiB"), "{s}");
        assert!(s.contains("0.5000 s queued on busy links"), "{s}");
        assert!(s.contains("DEGRADED: 1 node(s) lost mid-run"), "{s}");
    }

    #[test]
    fn summary_reports_trace_drops() {
        let mut r = report();
        r.trace_dropped = 3;
        assert!(r.summary().contains("3 launch-trace slot(s) dropped"));
    }

    #[test]
    fn comm_fraction() {
        assert!((report().comm_fraction() - 0.25).abs() < 1e-12);
        let mut r = report();
        r.total_time_s = 0.0;
        assert_eq!(r.comm_fraction(), 0.0);
    }
}
