//! The `laue` command-line tool: generate, reconstruct, validate and
//! inspect wire-scan files. See `laue help`.

use laue_pipeline::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("laue: {msg}");
            eprintln!("{}", cli::HELP);
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match cli::run(&cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("laue: {e}");
            ExitCode::FAILURE
        }
    }
}
