//! Served-job records: the service's submission/outcome log format.
//!
//! A service run is a stream of jobs, and operations wants a durable,
//! line-oriented record of each one — what was submitted (tenant, class,
//! arrival, scan shape, data seed) and what the service did with it
//! (engine path, timing, quanta, migrations, deposit counters). This
//! module defines that record and its JSON-lines serialization.
//!
//! The field vocabulary deliberately **reuses the [`RunReport`] schema**:
//! `engine`, `dims`, `total_time_s`, `pairs_deposited` mean exactly what
//! they mean in single-run reports and in `BENCH_pipeline.json`, so the
//! same tooling can aggregate a service log and a batch of standalone
//! runs without a translation layer. [`JobRecord::absorb_report`] fills
//! the outcome half of a record directly from a [`RunReport`].
//!
//! The format is one flat JSON object per line — append-friendly (a
//! crash loses at most the line being written, like the run journal) and
//! greppable. [`read_job_log`] round-trips exactly what
//! [`write_job_log`] wrote; it is a reader for this log format, not a
//! general JSON parser.

use std::io::{BufRead, Write};

use crate::report::RunReport;
use crate::{PipelineError, Result};

/// One served (or submitted) job: the submission fields plus, once the
/// job completed, its outcome in [`RunReport`] vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Service-wide job id.
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Scheduling class, `"interactive"` or `"batch"`.
    pub class: String,
    /// Fleet arrival time, seconds.
    pub arrival_s: f64,
    /// Synthetic-scan seed (with `dims`, fully determines the input).
    pub seed: u64,
    /// Stack dimensions `(images, rows, cols)` — [`RunReport::dims`].
    pub dims: (usize, usize, usize),
    /// Depth bins of the output grid.
    pub n_depth_bins: usize,
    /// Engine label in [`RunReport::engine`] style (`"serve-fused"`,
    /// `"serve-quantum"`); empty until the job is served.
    pub engine: String,
    /// Fleet time the job first occupied a device.
    pub start_s: f64,
    /// Fleet completion time.
    pub finish_s: f64,
    /// Device seconds consumed — [`RunReport::total_time_s`]'s analogue
    /// for one job's share of the fleet.
    pub total_time_s: f64,
    /// Dispatches the job took (1 = uninterrupted).
    pub quanta: u32,
    /// Device changes between quanta.
    pub migrations: u32,
    /// Deposit counter from the job's stats — the cheap output
    /// fingerprint single-run reports carry.
    pub pairs_deposited: u64,
}

impl JobRecord {
    /// A submission-only record: outcome fields zeroed, engine empty.
    pub fn submitted(
        job_id: u64,
        tenant: usize,
        class: &str,
        arrival_s: f64,
        seed: u64,
        dims: (usize, usize, usize),
        n_depth_bins: usize,
    ) -> JobRecord {
        JobRecord {
            job_id,
            tenant,
            class: class.to_string(),
            arrival_s,
            seed,
            dims,
            n_depth_bins,
            engine: String::new(),
            start_s: 0.0,
            finish_s: 0.0,
            total_time_s: 0.0,
            quanta: 0,
            migrations: 0,
            pairs_deposited: 0,
        }
    }

    /// Fill the outcome half from a single-run [`RunReport`] — the path
    /// for jobs executed through the ordinary pipeline (dims and stats
    /// vocabulary carry over unchanged).
    pub fn absorb_report(&mut self, report: &RunReport) {
        self.engine = report.engine.clone();
        self.dims = report.dims;
        self.total_time_s = report.total_time_s;
        self.pairs_deposited = report.stats.pairs_deposited;
        if self.quanta == 0 {
            self.quanta = 1;
        }
    }

    /// Submission-to-completion latency, seconds (0 until served).
    pub fn latency_s(&self) -> f64 {
        (self.finish_s - self.arrival_s).max(0.0)
    }

    /// One-line JSON object, keys in fixed order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"job_id\": {}, \"tenant\": {}, \"class\": \"{}\", \"arrival_s\": {:.9}, \
             \"seed\": {}, \"dims\": [{}, {}, {}], \"n_depth_bins\": {}, \
             \"engine\": \"{}\", \"start_s\": {:.9}, \"finish_s\": {:.9}, \
             \"total_time_s\": {:.9}, \"quanta\": {}, \"migrations\": {}, \
             \"pairs_deposited\": {}}}",
            self.job_id,
            self.tenant,
            self.class,
            self.arrival_s,
            self.seed,
            self.dims.0,
            self.dims.1,
            self.dims.2,
            self.n_depth_bins,
            self.engine,
            self.start_s,
            self.finish_s,
            self.total_time_s,
            self.quanta,
            self.migrations,
            self.pairs_deposited,
        )
    }

    /// Parse one log line written by [`to_json`](Self::to_json).
    pub fn from_json(line: &str) -> Result<JobRecord> {
        let dims = field(line, "dims")?;
        let dims_parts: Vec<usize> = dims
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| bad(line, "dims")))
            .collect::<std::result::Result<_, _>>()?;
        if dims_parts.len() != 3 {
            return Err(bad(line, "dims"));
        }
        Ok(JobRecord {
            job_id: num(line, "job_id")?,
            tenant: num(line, "tenant")?,
            class: string(line, "class")?,
            arrival_s: float(line, "arrival_s")?,
            seed: num(line, "seed")?,
            dims: (dims_parts[0], dims_parts[1], dims_parts[2]),
            n_depth_bins: num(line, "n_depth_bins")?,
            engine: string(line, "engine")?,
            start_s: float(line, "start_s")?,
            finish_s: float(line, "finish_s")?,
            total_time_s: float(line, "total_time_s")?,
            quanta: num(line, "quanta")?,
            migrations: num(line, "migrations")?,
            pairs_deposited: num(line, "pairs_deposited")?,
        })
    }
}

/// Append records as JSON lines.
pub fn write_job_log<W: Write>(out: &mut W, records: &[JobRecord]) -> Result<()> {
    for r in records {
        writeln!(out, "{}", r.to_json())?;
    }
    Ok(())
}

/// Read a whole job log (blank lines ignored).
pub fn read_job_log<R: BufRead>(input: R) -> Result<Vec<JobRecord>> {
    let mut records = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(JobRecord::from_json(&line)?);
    }
    Ok(records)
}

fn bad(line: &str, key: &str) -> PipelineError {
    PipelineError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("job log line missing/invalid \"{key}\": {line}"),
    ))
}

/// Raw text of one `"key": value` field (up to the next top-level comma).
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat).ok_or_else(|| bad(line, key))? + pat.len();
    let rest = &line[start..];
    // Value ends at the first comma or closing brace outside brackets
    // and quotes (values are flat scalars or a fixed-length array).
    let mut depth = 0usize;
    let mut quoted = false;
    for (i, c) in rest.char_indices() {
        match c {
            '"' => quoted = !quoted,
            '[' if !quoted => depth += 1,
            ']' if !quoted => depth = depth.saturating_sub(1),
            ',' | '}' if !quoted && depth == 0 => return Ok(rest[..i].trim()),
            _ => {}
        }
    }
    Err(bad(line, key))
}

fn num<T: std::str::FromStr>(line: &str, key: &str) -> Result<T> {
    field(line, key)?.parse().map_err(|_| bad(line, key))
}

fn float(line: &str, key: &str) -> Result<f64> {
    field(line, key)?.parse().map_err(|_| bad(line, key))
}

fn string(line: &str, key: &str) -> Result<String> {
    Ok(field(line, key)?.trim_matches('"').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        let mut r = JobRecord::submitted(7, 2, "interactive", 0.125, 99, (8, 6, 6), 40);
        r.engine = "serve-fused".into();
        r.start_s = 0.25;
        r.finish_s = 0.5;
        r.total_time_s = 0.125;
        r.quanta = 1;
        r.pairs_deposited = 1234;
        r
    }

    #[test]
    fn records_round_trip_through_the_log() {
        let records = vec![
            record(),
            JobRecord::submitted(8, 0, "batch", 1.5, 100, (10, 24, 12), 80),
        ];
        let mut buf = Vec::new();
        write_job_log(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = read_job_log(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn latency_and_report_vocabulary() {
        let r = record();
        assert!((r.latency_s() - 0.375).abs() < 1e-12);
        // The outcome half can come straight from a RunReport.
        let mut fresh = JobRecord::submitted(9, 1, "batch", 0.0, 1, (8, 6, 6), 40);
        let report = crate::report::RunReport {
            engine: "gpu-1d".into(),
            image: laue_core::DepthImage::zeroed(1, 1, 1),
            stats: laue_core::ReconStats::default(),
            total_time_s: 0.25,
            comm_time_s: 0.0,
            bus_wait_s: 0.0,
            host_table_time_s: 0.0,
            compute_time_s: 0.25,
            input_bytes: 0,
            dims: (8, 6, 6),
            rows_per_slab: 0,
            n_slabs: 0,
            transfers: 0,
            gpu_replans: 0,
            gpu_transfer_retries: 0,
            pipeline_depth: 0,
            table_cache: laue_core::cache::TableCacheStats::default(),
            slab_densities: Vec::new(),
            slab_privatized: Vec::new(),
            plan: None,
            fallback: None,
            recovery: crate::report::RecoveryAccounting::default(),
            integrity: laue_core::IntegrityReport::default(),
            faults_injected: None,
            trace_dropped: 0,
            cluster: None,
        };
        fresh.absorb_report(&report);
        assert_eq!(fresh.engine, "gpu-1d");
        assert_eq!(fresh.total_time_s, 0.25);
        assert_eq!(fresh.quanta, 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(JobRecord::from_json("{}").is_err());
        assert!(JobRecord::from_json("{\"job_id\": x}").is_err());
        let mangled = record()
            .to_json()
            .replace("\"dims\": [8, 6, 6]", "\"dims\": [8]");
        assert!(JobRecord::from_json(&mangled).is_err());
    }
}
