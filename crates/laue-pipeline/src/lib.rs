//! `laue-pipeline` — end-to-end wire-scan reconstruction.
//!
//! Ties the substrates together the way the paper's program does: open an
//! HDF5-style scan file ([`laue_wire::ScanFile`]), pick an execution engine
//! (the original CPU program, the threaded CPU variant, or the CUDA design
//! on the simulated device), reconstruct, and report where the time went
//! (communication vs. computation — the axis the paper's §III analyses).
//!
//! ```no_run
//! use laue_pipeline::{Engine, Pipeline};
//! use laue_core::ReconstructionConfig;
//!
//! let pipeline = Pipeline::default();
//! let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 400);
//! let report = pipeline
//!     .run_scan_file("scan.mh5", &cfg, Engine::Gpu { layout: laue_core::gpu::Layout::Flat1d })
//!     .unwrap();
//! println!("{}", report.summary());
//! ```

pub mod cli;
pub mod engine;
pub mod export;
pub mod jobspec;
pub mod report;
pub mod run;

pub use engine::Engine;
pub use jobspec::{read_job_log, write_job_log, JobRecord};
pub use report::{ClusterReport, RecoveryAccounting, ResumeInfo, RunReport};
pub use run::{file_fingerprint, GpuFailurePolicy, Pipeline, PipelineShared};

/// Errors from the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Reconstruction failure.
    Core(laue_core::CoreError),
    /// Scan-file failure.
    Wire(laue_wire::WireError),
    /// Container failure while exporting.
    Mh5(mh5::Mh5Error),
    /// Plain I/O failure (text export).
    Io(std::io::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Core(e) => write!(f, "reconstruction error: {e}"),
            PipelineError::Wire(e) => write!(f, "scan file error: {e}"),
            PipelineError::Mh5(e) => write!(f, "container error: {e}"),
            PipelineError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            PipelineError::Wire(e) => Some(e),
            PipelineError::Mh5(e) => Some(e),
            PipelineError::Io(e) => Some(e),
        }
    }
}

impl From<laue_core::CoreError> for PipelineError {
    fn from(e: laue_core::CoreError) -> Self {
        PipelineError::Core(e)
    }
}

impl From<laue_wire::WireError> for PipelineError {
    fn from(e: laue_wire::WireError) -> Self {
        PipelineError::Wire(e)
    }
}

impl From<mh5::Mh5Error> for PipelineError {
    fn from(e: mh5::Mh5Error) -> Self {
        PipelineError::Mh5(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
