//! The pipeline driver.

use std::path::Path;

use cuda_sim::{Device, DeviceProps, ExecMode, HostProps};
use laue_core::gpu::{self, GpuOptions, Layout, Triangulation};
use laue_core::{cpu, ReconstructionConfig, ScanGeometry, ScanView, SlabSource};
use laue_wire::ScanFile;

use crate::engine::Engine;
use crate::report::RunReport;
use crate::Result;

/// A configured pipeline: the machines to model and how to execute
/// simulated kernels.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Host CPU model for the CPU engines (paper: Xeon E5630).
    pub host: HostProps,
    /// Device model for the GPU engines (paper: Tesla M2070).
    pub device: DeviceProps,
    /// How simulated kernel threads execute on this machine.
    pub exec_mode: ExecMode,
}

impl Default for Pipeline {
    /// The paper's evaluation node.
    fn default() -> Self {
        Pipeline {
            host: HostProps::xeon_e5630(),
            device: DeviceProps::tesla_m2070(),
            exec_mode: ExecMode::Sequential,
        }
    }
}

impl Pipeline {
    /// Reconstruct a scan file on the chosen engine.
    pub fn run_scan_file<P: AsRef<Path>>(
        &self,
        path: P,
        cfg: &ReconstructionConfig,
        engine: Engine,
    ) -> Result<RunReport> {
        let mut scan = ScanFile::open(path)?;
        let geometry = scan.geometry().clone();
        self.run_source(&mut scan, &geometry, cfg, engine)
    }

    /// Reconstruct from any slab source (streaming for GPU engines; CPU
    /// engines materialise the stack once).
    pub fn run_source(
        &self,
        source: &mut dyn SlabSource,
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        engine: Engine,
    ) -> Result<RunReport> {
        let dims = (source.n_images(), source.n_rows(), source.n_cols());
        let input_bytes = (dims.0 * dims.1 * dims.2 * 2) as u64; // u16 counts
        match engine {
            Engine::CpuSeq | Engine::CpuThreaded { .. } => {
                let stack = source.read_slab(0, dims.1)?;
                // read_slab returns slab[z][r][c] over all rows = the stack.
                let view = ScanView::new(&stack, dims.0, dims.1, dims.2)?;
                let (out, cores) = match engine {
                    Engine::CpuSeq => (cpu::reconstruct_seq(&view, geom, cfg)?, 1u32),
                    Engine::CpuThreaded { threads } => (
                        cpu::reconstruct_threaded(&view, geom, cfg, threads)?,
                        threads as u32,
                    ),
                    _ => unreachable!(),
                };
                let t = out.modeled_time_s(&self.host, cores);
                Ok(RunReport {
                    engine: engine.label(),
                    image: out.image,
                    stats: out.stats,
                    total_time_s: t,
                    comm_time_s: 0.0,
                    compute_time_s: t,
                    input_bytes,
                    dims,
                    rows_per_slab: 0,
                    n_slabs: 0,
                    transfers: 0,
                })
            }
            Engine::Gpu { .. } | Engine::GpuTables => {
                let opts = match engine {
                    Engine::Gpu { layout } => {
                        GpuOptions { layout, triangulation: Triangulation::InKernel, ..GpuOptions::default() }
                    }
                    _ => GpuOptions {
                        layout: Layout::Flat1d,
                        triangulation: Triangulation::HostTables,
                        ..GpuOptions::default()
                    },
                };
                let device = Device::new(self.device.clone());
                device.set_exec_mode(self.exec_mode);
                let out = gpu::reconstruct_with_options(&device, source, geom, cfg, opts)?;
                Ok(RunReport {
                    engine: engine.label(),
                    image: out.image,
                    stats: out.stats,
                    total_time_s: out.elapsed_s,
                    comm_time_s: out.meters.comm_time_s,
                    compute_time_s: out.meters.compute_time_s,
                    input_bytes,
                    dims,
                    rows_per_slab: out.rows_per_slab,
                    n_slabs: out.n_slabs,
                    transfers: out.meters.transfers,
                })
            }
            Engine::GpuOverlapped => {
                let device = Device::new(self.device.clone());
                device.set_exec_mode(self.exec_mode);
                let out = gpu::reconstruct_overlapped(&device, source, geom, cfg)?;
                Ok(RunReport {
                    engine: engine.label(),
                    image: out.image,
                    stats: out.stats,
                    total_time_s: out.elapsed_s,
                    comm_time_s: out.meters.comm_time_s,
                    compute_time_s: out.meters.compute_time_s,
                    input_bytes,
                    dims,
                    rows_per_slab: out.rows_per_slab,
                    n_slabs: out.n_slabs,
                    transfers: out.meters.transfers,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laue_core::gpu::Layout;
    use laue_wire::{write_scan, SyntheticScanBuilder};
    use std::path::PathBuf;

    fn scan_file(name: &str) -> (PathBuf, laue_wire::SyntheticScan) {
        let scan = SyntheticScanBuilder::new(8, 8, 12)
            .scatterers(6)
            .seed(21)
            .build()
            .unwrap();
        let path =
            std::env::temp_dir().join(format!("pipeline_{}_{name}.mh5", std::process::id()));
        write_scan(&path, &scan.geometry, &scan.images, Some(&scan.truth), 2).unwrap();
        (path, scan)
    }

    fn cfg() -> ReconstructionConfig {
        ReconstructionConfig::new(-1500.0, 1500.0, 100)
    }

    #[test]
    fn all_engines_agree_on_a_file() {
        let (path, _) = scan_file("agree");
        let p = Pipeline::default();
        let engines = [
            Engine::CpuSeq,
            Engine::CpuThreaded { threads: 3 },
            Engine::Gpu { layout: Layout::Flat1d },
            Engine::Gpu { layout: Layout::Pointer3d },
            Engine::GpuOverlapped,
        ];
        let reports: Vec<RunReport> = engines
            .iter()
            .map(|&e| p.run_scan_file(&path, &cfg(), e).unwrap())
            .collect();
        for r in &reports[1..] {
            assert_eq!(
                reports[0].image.data, r.image.data,
                "{} diverges from cpu-seq",
                r.engine
            );
            assert_eq!(reports[0].stats, r.stats);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_report_accounts_for_transfers() {
        let (path, _) = scan_file("meters");
        let p = Pipeline::default();
        let r = p
            .run_scan_file(&path, &cfg(), Engine::Gpu { layout: Layout::Flat1d })
            .unwrap();
        assert!(r.comm_time_s > 0.0);
        assert!(r.compute_time_s > 0.0);
        assert!((r.total_time_s - (r.comm_time_s + r.compute_time_s)).abs() < 1e-9);
        assert!(r.n_slabs >= 1);
        assert!(r.rows_per_slab >= 1);
        assert!(r.summary().contains("gpu-1d"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cpu_gpu_speedup_is_in_the_papers_ballpark() {
        // The headline claim (GPU ≈ 25–30 % of CPU) only holds once the
        // stack is big enough that per-pair work dominates the fixed launch
        // and PCIe latencies — on a tiny scan the GPU correctly *loses*.
        // Use a noisy mid-size scan where every pair is active.
        let scan = SyntheticScanBuilder::new(48, 48, 24)
            .scatterers(40)
            .noise(1.0)
            .background(20.0)
            .seed(3)
            .build()
            .unwrap();
        let path = std::env::temp_dir()
            .join(format!("pipeline_{}_speedup.mh5", std::process::id()));
        write_scan(&path, &scan.geometry, &scan.images, None, 8).unwrap();
        let p = Pipeline::default();
        let cpu_r = p.run_scan_file(&path, &cfg(), Engine::CpuSeq).unwrap();
        let gpu_r = p
            .run_scan_file(&path, &cfg(), Engine::Gpu { layout: Layout::Flat1d })
            .unwrap();
        let ratio = gpu_r.total_time_s / cpu_r.total_time_s;
        // This mid-size stack is still fairly transfer-heavy; the calibrated
        // 25–30 % figure needs the full-scale Fig 8 workloads (laue-bench).
        assert!(
            ratio < 0.75,
            "the modeled GPU must beat the modeled CPU at this scale (ratio {ratio})"
        );

        // And the inverse crossover: on a tiny scan the fixed overheads make
        // the GPU slower — the scalability story of the paper's Fig 8.
        let (tiny_path, _) = scan_file("speedup_tiny");
        let cpu_t = p.run_scan_file(&tiny_path, &cfg(), Engine::CpuSeq).unwrap();
        let gpu_t = p
            .run_scan_file(&tiny_path, &cfg(), Engine::Gpu { layout: Layout::Flat1d })
            .unwrap();
        assert!(
            gpu_t.total_time_s > cpu_t.total_time_s,
            "fixed overheads must dominate a tiny scan"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tiny_path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let p = Pipeline::default();
        assert!(p
            .run_scan_file("/nonexistent/scan.mh5", &cfg(), Engine::CpuSeq)
            .is_err());
    }
}
