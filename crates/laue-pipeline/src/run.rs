//! The pipeline driver.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use cuda_sim::{Device, DeviceProps, ExecMode, HostProps, Interconnect, InterconnectProps};
use laue_core::cache::{DepthTableCache, TableCacheStats, TableKey};
use laue_core::cluster::{reconstruct_cluster_checkpointed, ClusterReconstruction};
use laue_core::gpu::{self, GpuReconstruction, PipelineDepth};
use laue_core::journal::{JournalKey, RunJournal, SlabProgress};
use laue_core::multi::{reconstruct_multi_checkpointed, MultiGpuReconstruction};
use laue_core::planner::{plan_cluster, plan_run, RunPlan, TableWarmth};
use laue_core::{
    cpu, AccumulationMode, ClusterOptions, CompactionMode, IntegrityReport, PlanMode,
    ReconstructionConfig, ReductionTopology, ScanGeometry, ScanView, SlabSource,
};
use laue_wire::ScanFile;

use crate::engine::Engine;
use crate::report::{ClusterReport, PlanExplain, RecoveryAccounting, ResumeInfo, RunReport};
use crate::Result;

/// A cheap content fingerprint of a scan file (CRC-32 of the bytes, plus
/// the length in the high word), used to key the run journal so `--resume`
/// never replays slabs recorded for a different scan.
pub fn file_fingerprint<P: AsRef<Path>>(path: P) -> Result<u64> {
    let bytes = std::fs::read(path)?;
    Ok(((bytes.len() as u64) << 32) | mh5::crc::crc32(&bytes) as u64)
}

/// What to do when a GPU engine fails in a way another executor could
/// sidestep (device lost, memory exhausted beyond re-planning).
///
/// Transient transfer faults and recoverable OOM never reach this policy —
/// the GPU engine absorbs them itself (bounded retries, slab re-planning)
/// and reports them via [`RunReport::gpu_transfer_retries`] /
/// [`RunReport::gpu_replans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuFailurePolicy {
    /// Surface the GPU error to the caller (default).
    #[default]
    Abort,
    /// Re-run the reconstruction on the CPU engine matching the pipeline's
    /// executor (threaded when [`Pipeline::exec_mode`] is threaded, serial
    /// otherwise) and record the degradation in the run report.
    FallbackCpu,
}

/// State a pipeline keeps alive *between* runs: the simulated device (so
/// device-resident depth tables survive from one run to the next) and the
/// host-side depth-table cache. Shared by `Arc` — cloning a [`Pipeline`]
/// shares its warm caches.
#[derive(Debug, Default)]
pub struct PipelineShared {
    device: Mutex<Option<Arc<Device>>>,
    fleet: Mutex<Vec<Arc<Device>>>,
    /// Cluster nodes (`nodes[i][j]` = device `j` on chassis `i`). The
    /// devices and their hosts persist across runs like the fleet does;
    /// the interconnect is rebuilt fresh per run (its link pools have no
    /// warm state worth keeping, and a clean fabric keeps run timelines
    /// starting at t = 0).
    cluster: Mutex<Vec<Vec<Arc<Device>>>>,
    cache: DepthTableCache,
}

/// A configured pipeline: the machines to model and how to execute
/// simulated kernels.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Host CPU model for the CPU engines (paper: Xeon E5630).
    pub host: HostProps,
    /// Device model for the GPU engines (paper: Tesla M2070).
    pub device: DeviceProps,
    /// How simulated kernel threads execute on this machine.
    pub exec_mode: ExecMode,
    /// What to do when a GPU engine fails unrecoverably.
    pub on_gpu_failure: GpuFailurePolicy,
    /// Scripted fault schedule installed on every device this pipeline
    /// creates (fault-injection testing; `None` in production).
    pub fault_plan: Option<cuda_sim::FaultPlan>,
    /// Device-resident depth-table cache budget, MiB. `None` → a quarter of
    /// device memory; `Some(0)` disables residency (host caching stays on).
    pub table_cache_mb: Option<u64>,
    /// When set, GPU runs journal every committed slab under this
    /// directory, making them resumable ([`Pipeline::resume`]) and
    /// salvageable (CPU fallback recomputes only uncommitted rows).
    pub journal_dir: Option<PathBuf>,
    /// Replay slabs committed by a previous interrupted run with the same
    /// journal key instead of starting fresh. No effect without
    /// [`Pipeline::journal_dir`].
    pub resume: bool,
    /// Restrict [`Pipeline::fault_plan`] to one fleet device index
    /// (multi-GPU failover testing). For `gpu-cluster` engines the index
    /// runs node-major over the flattened cluster (node 0's devices
    /// first). `None` installs the plan on every device this pipeline
    /// creates.
    pub fault_device: Option<usize>,
    /// Inter-node fabric model for `gpu-cluster` engines (paper-era
    /// default: InfiniBand QDR).
    pub interconnect: InterconnectProps,
    /// Inter-node reduction routing (`gpu-cluster` engines). `None` =
    /// auto: tree under `--plan fixed`, the planner's argmin under
    /// `--plan auto`.
    pub reduction: Option<ReductionTopology>,
    /// Overlap the reduction with the compute tail (`gpu-cluster`
    /// engines). `None` = auto: on under `--plan fixed`, the planner's
    /// argmin under `--plan auto`.
    pub overlap: Option<bool>,
    /// Cross-run persistent state (devices + depth-table cache).
    pub shared: Arc<PipelineShared>,
}

impl Default for Pipeline {
    /// The paper's evaluation node.
    fn default() -> Self {
        Pipeline {
            host: HostProps::xeon_e5630(),
            device: DeviceProps::tesla_m2070(),
            exec_mode: ExecMode::Sequential,
            on_gpu_failure: GpuFailurePolicy::default(),
            fault_plan: None,
            table_cache_mb: None,
            journal_dir: None,
            resume: false,
            fault_device: None,
            interconnect: InterconnectProps::ib_qdr(),
            reduction: None,
            overlap: None,
            shared: Arc::new(PipelineShared::default()),
        }
    }
}

impl Pipeline {
    /// Reconstruct a scan file on the chosen engine. The file's content
    /// fingerprint keys the run journal (when [`Pipeline::journal_dir`] is
    /// set), so interrupted runs of the same scan resume safely.
    pub fn run_scan_file<P: AsRef<Path>>(
        &self,
        path: P,
        cfg: &ReconstructionConfig,
        engine: Engine,
    ) -> Result<RunReport> {
        let fingerprint = file_fingerprint(&path)?;
        let mut scan = ScanFile::open(path)?;
        let geometry = scan.geometry().clone();
        self.run_source_keyed(&mut scan, &geometry, cfg, engine, Some(fingerprint))
    }

    /// Reconstruct from any slab source (streaming for GPU engines; CPU
    /// engines materialise the stack once). Journal runs are keyed without
    /// a scan fingerprint — prefer [`Pipeline::run_source_keyed`] when one
    /// is available.
    pub fn run_source(
        &self,
        source: &mut dyn SlabSource,
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        engine: Engine,
    ) -> Result<RunReport> {
        self.run_source_keyed(source, geom, cfg, engine, None)
    }

    /// As [`Pipeline::run_source`], with an explicit scan content
    /// fingerprint folded into the journal key.
    pub fn run_source_keyed(
        &self,
        source: &mut dyn SlabSource,
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        engine: Engine,
        fingerprint: Option<u64>,
    ) -> Result<RunReport> {
        // `cpu-threaded:0` means "one thread per available core".
        let engine = match engine {
            Engine::CpuThreaded { threads: 0 } => Engine::CpuThreaded {
                threads: std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
            },
            e => e,
        };
        let dims = (source.n_images(), source.n_rows(), source.n_cols());
        let input_bytes = (dims.0 * dims.1 * dims.2 * 2) as u64; // u16 counts
        match engine {
            Engine::CpuSeq | Engine::CpuThreaded { .. } => {
                let stack = source.read_slab(0, dims.1)?;
                // read_slab returns slab[z][r][c] over all rows = the stack.
                let view = ScanView::new(&stack, dims.0, dims.1, dims.2)?;
                let (out, cores) = match engine {
                    Engine::CpuSeq => (cpu::reconstruct_seq(&view, geom, cfg)?, 1u32),
                    Engine::CpuThreaded { threads } => (
                        cpu::reconstruct_threaded(&view, geom, cfg, threads)?,
                        threads as u32,
                    ),
                    _ => unreachable!(),
                };
                let t = out.modeled_time_s(&self.host, cores);
                Ok(RunReport {
                    engine: engine.label(),
                    image: out.image,
                    stats: out.stats,
                    total_time_s: t,
                    comm_time_s: 0.0,
                    bus_wait_s: 0.0,
                    host_table_time_s: 0.0,
                    compute_time_s: t,
                    input_bytes,
                    dims,
                    rows_per_slab: 0,
                    n_slabs: 0,
                    transfers: 0,
                    gpu_replans: 0,
                    gpu_transfer_retries: 0,
                    pipeline_depth: 0,
                    table_cache: TableCacheStats::default(),
                    slab_densities: out.slab_densities,
                    slab_privatized: Vec::new(),
                    plan: None,
                    fallback: None,
                    recovery: RecoveryAccounting::default(),
                    integrity: IntegrityReport::default(),
                    faults_injected: None,
                    trace_dropped: 0,
                    cluster: None,
                })
            }
            Engine::Gpu { .. }
            | Engine::GpuTables
            | Engine::GpuPipelined
            | Engine::GpuMulti { .. }
            | Engine::GpuCluster { .. } => self.run_gpu(source, geom, cfg, engine, fingerprint),
        }
    }

    /// The unified GPU path: open/replay the journal (when configured),
    /// run the checkpoint-aware engine — single device or failover fleet —
    /// and on unrecoverable failure salvage the committed slabs, handing
    /// only the remainder to the CPU.
    fn run_gpu(
        &self,
        source: &mut dyn SlabSource,
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        engine: Engine,
        fingerprint: Option<u64>,
    ) -> Result<RunReport> {
        let (opts, depth) = engine.gpu_plan().expect("GPU engine");
        let dims = (source.n_images(), source.n_rows(), source.n_cols());
        let input_bytes = (dims.0 * dims.1 * dims.2 * 2) as u64;
        self.shared.cache.set_budget(self.table_cache_budget());

        // --plan auto on a single-GPU engine: resolve the run-level plan up
        // front from the device's cost model. The planner owns every knob
        // of the planned run, so the per-slab modes are forced to their
        // auto (cost-driven) settings and the fixed-mode flags are honoured
        // only under --plan fixed. The fleet engine splits bands
        // dynamically and keeps only the per-slab autos; CPU engines have
        // no plan space — neither gets a run-level plan.
        let plan_auto = cfg.plan == PlanMode::Auto
            && !matches!(engine, Engine::GpuMulti { .. } | Engine::GpuCluster { .. });
        let mut cfg_local = cfg.clone();
        let mut run_plan: Option<RunPlan> = None;
        let (opts, depth) = if plan_auto {
            let table_key = TableKey::new(geom, cfg);
            // Peek (not lookup): warmth must not perturb the cache the
            // prediction is about. Device warmth only counts on the device
            // this run will actually reuse.
            let device_warm = self
                .shared
                .device
                .lock()
                .unwrap()
                .as_ref()
                .is_some_and(|d| {
                    *d.props() == self.device && self.shared.cache.peek_device(d.id(), &table_key)
                });
            let warmth = TableWarmth {
                host_warm: self.shared.cache.peek_host(&table_key),
                device_warm,
                resident_budget: self.table_cache_budget(),
            };
            let plan = plan_run(&self.device, &self.host, source, geom, cfg, warmth)?;
            cfg_local.rows_per_slab = Some(plan.rows_per_slab);
            cfg_local.pipeline_depth = None;
            cfg_local.compaction = CompactionMode::Auto;
            cfg_local.accumulation = AccumulationMode::Auto;
            let chosen = (plan.options, plan.depth);
            run_plan = Some(plan);
            chosen
        } else {
            (opts, depth)
        };
        // Cluster engines resolve their reduction knobs before the journal
        // opens, so the topology can participate in its key. Under --plan
        // auto the cost model prices node count × topology × overlap and
        // owns the per-node plan too; under --plan fixed the pipeline's
        // reduction/overlap fields apply, with auto resolving to the
        // defaults (tree, overlapped).
        let mut cluster_plan = None;
        let copts = match engine {
            Engine::GpuCluster {
                nodes,
                devices_per_node,
            } => Some(if cfg.plan == PlanMode::Auto {
                let table_key = TableKey::new(geom, cfg);
                let warmth = TableWarmth {
                    host_warm: self.shared.cache.peek_host(&table_key),
                    // Cluster devices rebuild with the shape; never credit
                    // residency the run may not actually have.
                    device_warm: false,
                    resident_budget: self.table_cache_budget(),
                };
                let plan = plan_cluster(
                    &self.device,
                    &self.host,
                    &self.interconnect,
                    nodes,
                    devices_per_node,
                    source,
                    geom,
                    cfg,
                    warmth,
                )?;
                cfg_local.rows_per_slab = Some(plan.per_node.rows_per_slab);
                cfg_local.pipeline_depth = None;
                cfg_local.compaction = CompactionMode::Auto;
                cfg_local.accumulation = AccumulationMode::Auto;
                let chosen = plan.options;
                cluster_plan = Some(plan);
                chosen
            } else {
                ClusterOptions {
                    topology: self.reduction.unwrap_or(ReductionTopology::Tree),
                    overlap: self.overlap.unwrap_or(true),
                }
            }),
            _ => None,
        };
        let (opts, depth) = match &cluster_plan {
            Some(p) => (p.per_node.options, p.per_node.depth),
            None => (opts, depth),
        };
        let cfg = &cfg_local;
        let plan_token = match (&run_plan, &cluster_plan) {
            (Some(p), _) => format!("auto:{}", p.label),
            (None, Some(p)) => format!("auto:{}", p.label),
            (None, None) => cfg.plan.label().to_string(),
        };

        // Open (or replay) the run journal.
        let mut journal = None;
        let mut resume_info = None;
        let mut progress = match &self.journal_dir {
            Some(dir) => {
                let key = journal_key(engine, cfg, dims, fingerprint, &plan_token, copts.as_ref());
                let jdims = (cfg.n_depth_bins, dims.1, dims.2);
                let (j, slabs) = RunJournal::open(dir, &key, jdims, self.resume)?;
                if !slabs.is_empty() {
                    resume_info = Some(ResumeInfo {
                        journal_key: format!("{:016x}", key.hash),
                        slabs_replayed: slabs.len(),
                    });
                }
                journal = Some(j);
                SlabProgress::replay(cfg.n_depth_bins, dims.1, dims.2, &slabs)?
            }
            None => SlabProgress::new(cfg.n_depth_bins, dims.1, dims.2),
        };

        let devices_used: Vec<Arc<Device>>;
        let outcome = match engine {
            Engine::GpuMulti { devices } => {
                let fleet = self.gpu_fleet(devices);
                let refs: Vec<&Device> = fleet.iter().map(|d| d.as_ref()).collect();
                let r = reconstruct_multi_checkpointed(
                    &refs,
                    source,
                    geom,
                    cfg,
                    opts,
                    depth,
                    Some(&self.shared.cache),
                    &mut progress,
                    journal.as_mut(),
                )
                .map(GpuOutcome::Multi);
                devices_used = fleet;
                r
            }
            Engine::GpuCluster {
                nodes,
                devices_per_node,
            } => {
                let (fleet, net) = self.gpu_cluster(nodes, devices_per_node);
                let refs: Vec<Vec<&Device>> = fleet
                    .iter()
                    .map(|node| node.iter().map(|d| d.as_ref()).collect())
                    .collect();
                let r = reconstruct_cluster_checkpointed(
                    &refs,
                    &net,
                    source,
                    geom,
                    cfg,
                    opts,
                    depth,
                    Some(&self.shared.cache),
                    copts.expect("cluster options resolved for cluster engines"),
                    &mut progress,
                    journal.as_mut(),
                )
                .map(GpuOutcome::Cluster);
                devices_used = fleet.into_iter().flatten().collect();
                r
            }
            _ => {
                let device = self.gpu_device();
                let r = gpu::reconstruct_checkpointed(
                    &device,
                    source,
                    geom,
                    cfg,
                    opts,
                    depth,
                    Some(&self.shared.cache),
                    &mut progress,
                    journal.as_mut(),
                )
                .map(GpuOutcome::Single);
                devices_used = vec![device];
                r
            }
        };
        // Fault-injection ground truth and trace-drop diagnostics, summed
        // over every device the run touched.
        let mut faults_injected: Option<cuda_sim::FaultStats> = None;
        let mut trace_dropped = 0u64;
        for d in &devices_used {
            if let Some(fs) = d.fault_stats() {
                faults_injected
                    .get_or_insert_with(Default::default)
                    .merge(&fs);
            }
            trace_dropped += d.trace_dropped();
        }
        drop(devices_used);

        match outcome {
            Ok(out) => {
                // The run is complete; a later --resume must not replay it.
                if let Some(j) = journal.take() {
                    j.remove()?;
                }
                let resolved_depth = cfg.pipeline_depth.map(PipelineDepth).unwrap_or(depth);
                let mut report = gpu_report(
                    engine,
                    out,
                    dims,
                    input_bytes,
                    resolved_depth,
                    resume_info,
                    &self.interconnect.name,
                );
                report.faults_injected = faults_injected;
                report.trace_dropped = trace_dropped;
                // The explain block compares the prediction against the
                // measured virtual makespan of the very run it planned.
                report.plan = match (run_plan, cluster_plan) {
                    (Some(p), _) => Some(PlanExplain {
                        chosen: p.label,
                        predicted_s: p.predicted_s,
                        host_s: p.host_s,
                        measured_s: report.total_time_s,
                        candidates: p
                            .candidates
                            .into_iter()
                            .map(|c| (c.label, c.predicted_s))
                            .collect(),
                    }),
                    (None, Some(p)) => Some(PlanExplain {
                        chosen: p.label,
                        predicted_s: p.predicted_s,
                        host_s: p.per_node.host_s,
                        measured_s: report.total_time_s,
                        candidates: p
                            .candidates
                            .into_iter()
                            .map(|c| (c.label, c.predicted_s))
                            .collect(),
                    }),
                    (None, None) => None,
                };
                Ok(report)
            }
            Err(e) => {
                let mut report = self.degrade_salvage(
                    source,
                    geom,
                    cfg,
                    engine,
                    e,
                    &mut progress,
                    journal,
                    resume_info,
                )?;
                report.faults_injected = faults_injected;
                report.trace_dropped = trace_dropped;
                Ok(report)
            }
        }
    }

    /// The device a GPU engine will run on. The device persists across runs
    /// (so resident depth tables stay warm) and is rebuilt only when
    /// [`Pipeline::device`] changes; the fault schedule is (re)installed
    /// fresh on every run.
    fn gpu_device(&self) -> Arc<Device> {
        let mut slot = self.shared.device.lock().unwrap();
        let device = match slot.take() {
            Some(d) if *d.props() == self.device => d,
            stale => {
                if let Some(old) = stale {
                    // Resident tables on the discarded device are useless.
                    let mut run = TableCacheStats::default();
                    self.shared.cache.evict_device(old.id(), &mut run);
                }
                Arc::new(Device::new(self.device.clone()))
            }
        };
        device.set_exec_mode(self.exec_mode);
        let install = self.fault_device.is_none_or(|f| f == 0);
        match (&self.fault_plan, install) {
            (Some(plan), true) => device.set_fault_plan(plan.clone()),
            _ => device.clear_fault_plan(),
        }
        *slot = Some(Arc::clone(&device));
        device
    }

    /// The fleet a `gpu-multi` engine runs on. Devices persist across runs
    /// like the single device does; the fleet is rebuilt when its size or
    /// the device model changes. All fleet devices share one simulated
    /// host, so their transfers contend for a single PCIe bus — the model
    /// of a multi-GPU workstation, not of one machine per device. The
    /// fault schedule is (re)installed fresh on every run — on every
    /// device, or on [`Pipeline::fault_device`] only when that is set.
    fn gpu_fleet(&self, n: usize) -> Vec<Arc<Device>> {
        let mut slot = self.shared.fleet.lock().unwrap();
        let reusable = slot.len() == n && slot.iter().all(|d| *d.props() == self.device);
        if !reusable {
            let mut run = TableCacheStats::default();
            for old in slot.drain(..) {
                self.shared.cache.evict_device(old.id(), &mut run);
            }
            let host = cuda_sim::Host::new_default();
            *slot = (0..n)
                .map(|_| Arc::new(Device::new_on_host(self.device.clone(), &host)))
                .collect();
        }
        for (i, d) in slot.iter().enumerate() {
            d.set_exec_mode(self.exec_mode);
            let install = self.fault_device.is_none_or(|f| f == i);
            match (&self.fault_plan, install) {
                (Some(plan), true) => d.set_fault_plan(plan.clone()),
                _ => d.clear_fault_plan(),
            }
        }
        slot.clone()
    }

    /// The node fleets a `gpu-cluster` engine runs on, plus a fresh fabric.
    /// Each node is its own simulated chassis — a private PCIe bus and host
    /// CPU — so intra-node transfers never contend across nodes. The
    /// devices persist across runs like the flat fleet's and rebuild when
    /// the cluster shape or device model changes; the interconnect is
    /// always fresh (its link pools carry no warm state). The fault
    /// schedule is (re)installed on every run — on every device, or only
    /// on the node-major flattened index [`Pipeline::fault_device`] names.
    fn gpu_cluster(
        &self,
        nodes: usize,
        per_node: usize,
    ) -> (Vec<Vec<Arc<Device>>>, Arc<Interconnect>) {
        let mut slot = self.shared.cluster.lock().unwrap();
        let reusable = slot.len() == nodes
            && slot
                .iter()
                .all(|ds| ds.len() == per_node && ds.iter().all(|d| *d.props() == self.device));
        if !reusable {
            let mut run = TableCacheStats::default();
            for old in slot.drain(..).flatten() {
                self.shared.cache.evict_device(old.id(), &mut run);
            }
            *slot = (0..nodes)
                .map(|_| {
                    let host = cuda_sim::Host::new_default();
                    (0..per_node)
                        .map(|_| Arc::new(Device::new_on_host(self.device.clone(), &host)))
                        .collect()
                })
                .collect();
        }
        for (i, d) in slot.iter().flatten().enumerate() {
            d.set_exec_mode(self.exec_mode);
            let install = self.fault_device.is_none_or(|f| f == i);
            match (&self.fault_plan, install) {
                (Some(plan), true) => d.set_fault_plan(plan.clone()),
                _ => d.clear_fault_plan(),
            }
        }
        let net = Interconnect::new(&self.interconnect.name, nodes, self.interconnect.clone());
        (slot.clone(), net)
    }

    /// Forget every persistent device (single slot and fleet), evicting
    /// their resident depth tables — called when a GPU run failed so a
    /// later run never inherits a dead device.
    fn drop_devices(&self) {
        let mut run = TableCacheStats::default();
        if let Some(dead) = self.shared.device.lock().unwrap().take() {
            self.shared.cache.evict_device(dead.id(), &mut run);
        }
        for dead in self.shared.fleet.lock().unwrap().drain(..) {
            self.shared.cache.evict_device(dead.id(), &mut run);
        }
        for dead in self.shared.cluster.lock().unwrap().drain(..).flatten() {
            self.shared.cache.evict_device(dead.id(), &mut run);
        }
    }

    /// Device-resident depth-table budget in bytes.
    fn table_cache_budget(&self) -> u64 {
        self.table_cache_mb
            .map(|mb| mb * 1024 * 1024)
            .unwrap_or(self.device.total_mem / 4)
    }

    /// Apply [`Pipeline::on_gpu_failure`] to a GPU engine error: either
    /// surface it, or salvage what the GPU committed and recompute only the
    /// uncovered row bands on the matching CPU engine, recording the
    /// degradation in the report.
    #[allow(clippy::too_many_arguments)]
    fn degrade_salvage(
        &self,
        source: &mut dyn SlabSource,
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        failed: Engine,
        err: laue_core::CoreError,
        progress: &mut SlabProgress,
        mut journal: Option<RunJournal>,
        resume: Option<ResumeInfo>,
    ) -> Result<RunReport> {
        // Whatever happens next, don't hand the failed device(s) to a later
        // run: drop them (and any depth tables resident on them). The
        // journal stays on disk when we surface the error, so a later
        // --resume picks up from the last committed slab.
        self.drop_devices();
        if self.on_gpu_failure != GpuFailurePolicy::FallbackCpu || !err.is_gpu_failure() {
            return Err(err.into());
        }
        // Match the executor so a sequential pipeline degrades bit-for-bit
        // (cpu-seq and the GPU engines share deposit order, and cropped-band
        // reconstruction is bit-exact against the full frame).
        let cpu = match self.exec_mode {
            ExecMode::Threaded(n) => Engine::CpuThreaded { threads: n },
            _ => Engine::CpuSeq,
        };
        let cores = match cpu {
            Engine::CpuThreaded { threads } => threads as u32,
            _ => 1,
        };
        let dims = (source.n_images(), source.n_rows(), source.n_cols());
        let salvaged = progress.committed_slabs();
        let mut recomputed = 0usize;
        let mut cpu_time = 0.0;
        let mut slab_densities = Vec::new();
        for band in progress.uncovered(0..dims.1) {
            let rows = band.len();
            let slab = source.read_slab(band.start, rows)?;
            let view = ScanView::new(&slab, dims.0, rows, dims.2)?;
            let band_geom = geom.crop(band.start, 0, rows, dims.2)?;
            let out = match cpu {
                Engine::CpuThreaded { threads } => {
                    cpu::reconstruct_threaded(&view, &band_geom, cfg, threads)?
                }
                _ => cpu::reconstruct_seq(&view, &band_geom, cfg)?,
            };
            cpu_time += out.modeled_time_s(&self.host, cores);
            slab_densities.extend(out.slab_densities.iter().copied());
            let (image, mut tracker) = progress.split_mut();
            image.assign_rows(band.start, rows, &out.image.data)?;
            if let Some(j) = journal.as_mut() {
                j.append(band.start, rows, &out.stats, &out.image.data)?;
            }
            tracker.record(band.start, rows, &out.stats);
            recomputed += 1;
        }
        // Complete again — retire the journal with the run.
        if let Some(j) = journal.take() {
            j.remove()?;
        }
        // When a fleet errored, every participating device had died (a
        // partial loss fails over internally and succeeds).
        let devices_lost = match failed {
            Engine::GpuMulti { devices } => devices as u32,
            Engine::GpuCluster {
                nodes,
                devices_per_node,
            } => (nodes * devices_per_node) as u32,
            _ => 0,
        };
        Ok(RunReport {
            engine: cpu.label(),
            image: progress.image.clone(),
            stats: progress.stats,
            total_time_s: cpu_time,
            comm_time_s: 0.0,
            bus_wait_s: 0.0,
            host_table_time_s: 0.0,
            compute_time_s: cpu_time,
            input_bytes: (dims.0 * dims.1 * dims.2 * 2) as u64,
            dims,
            rows_per_slab: 0,
            n_slabs: 0,
            transfers: 0,
            gpu_replans: 0,
            gpu_transfer_retries: 0,
            pipeline_depth: 0,
            table_cache: TableCacheStats::default(),
            slab_densities,
            slab_privatized: Vec::new(),
            plan: None,
            fallback: Some(format!(
                "{} failed ({err}); completed on {}",
                failed.label(),
                cpu.label()
            )),
            recovery: RecoveryAccounting {
                salvaged_slabs: salvaged,
                recomputed_slabs: recomputed,
                devices_lost,
                resume,
            },
            // Whatever the GPU verified before dying is moot: the CPU
            // recomputed the uncovered bands from the source directly.
            integrity: IntegrityReport::default(),
            faults_injected: None,
            trace_dropped: 0,
            cluster: None,
        })
    }
}

/// How one GPU run came back: a single device, a fleet, or a cluster.
enum GpuOutcome {
    Single(GpuReconstruction),
    Multi(MultiGpuReconstruction),
    Cluster(ClusterReconstruction),
}

/// Assemble the [`RunReport`] of a successful GPU run. `fabric` names the
/// interconnect preset (cluster engines only; ignored otherwise).
fn gpu_report(
    engine: Engine,
    out: GpuOutcome,
    dims: (usize, usize, usize),
    input_bytes: u64,
    depth: PipelineDepth,
    resume: Option<ResumeInfo>,
    fabric: &str,
) -> RunReport {
    let recovery = |devices_lost| RecoveryAccounting {
        salvaged_slabs: 0,
        recomputed_slabs: 0,
        devices_lost,
        resume: resume.clone(),
    };
    match out {
        GpuOutcome::Single(out) => RunReport {
            engine: engine.label(),
            image: out.image,
            stats: out.stats,
            total_time_s: out.elapsed_s,
            comm_time_s: out.meters.comm_time_s,
            bus_wait_s: out.meters.bus_wait_s,
            host_table_time_s: out.host_table_time_s,
            compute_time_s: out.meters.compute_time_s,
            input_bytes,
            dims,
            rows_per_slab: out.rows_per_slab,
            n_slabs: out.n_slabs,
            transfers: out.meters.transfers,
            gpu_replans: out.recovery.replans,
            gpu_transfer_retries: out.recovery.transfer_retries,
            pipeline_depth: out.pipeline_depth,
            table_cache: out.table_cache,
            slab_densities: out.slab_densities,
            slab_privatized: out.slab_privatized,
            plan: None,
            fallback: None,
            recovery: recovery(0),
            integrity: out.integrity,
            faults_injected: None,
            trace_dropped: 0,
            cluster: None,
        },
        GpuOutcome::Multi(out) => RunReport {
            engine: engine.label(),
            image: out.image,
            stats: out.stats,
            // The makespan is the slowest device; comm/compute/transfers
            // aggregate over the fleet, so total ≤ comm + compute here.
            total_time_s: out.elapsed_s,
            comm_time_s: out.per_device.iter().map(|m| m.comm_time_s).sum(),
            bus_wait_s: out.per_device.iter().map(|m| m.bus_wait_s).sum(),
            host_table_time_s: out.host_table_time_s,
            compute_time_s: out.per_device.iter().map(|m| m.compute_time_s).sum(),
            input_bytes,
            dims,
            rows_per_slab: 0,
            n_slabs: out.n_slabs,
            transfers: out.per_device.iter().map(|m| m.transfers).sum(),
            gpu_replans: out.recovery.replans,
            gpu_transfer_retries: out.recovery.transfer_retries,
            pipeline_depth: depth.0,
            table_cache: out.table_cache,
            slab_densities: out.slab_densities,
            slab_privatized: out.slab_privatized,
            plan: None,
            fallback: None,
            recovery: recovery(out.devices_lost),
            integrity: out.integrity,
            faults_injected: None,
            trace_dropped: 0,
            cluster: None,
        },
        GpuOutcome::Cluster(out) => RunReport {
            engine: engine.label(),
            image: out.image,
            stats: out.stats,
            // The makespan includes the reduction's exposed tail; the
            // comm/compute/transfer meters aggregate over every device in
            // every chassis.
            total_time_s: out.elapsed_s,
            comm_time_s: out.per_device.iter().map(|m| m.comm_time_s).sum(),
            bus_wait_s: out.per_device.iter().map(|m| m.bus_wait_s).sum(),
            host_table_time_s: out.host_table_time_s,
            compute_time_s: out.per_device.iter().map(|m| m.compute_time_s).sum(),
            input_bytes,
            dims,
            rows_per_slab: 0,
            n_slabs: out.n_slabs,
            transfers: out.per_device.iter().map(|m| m.transfers).sum(),
            gpu_replans: out.recovery.replans,
            gpu_transfer_retries: out.recovery.transfer_retries,
            pipeline_depth: depth.0,
            table_cache: out.table_cache,
            slab_densities: out.slab_densities,
            slab_privatized: out.slab_privatized,
            plan: None,
            fallback: None,
            recovery: recovery(out.devices_lost),
            integrity: out.integrity,
            faults_injected: None,
            trace_dropped: 0,
            cluster: Some(ClusterReport {
                options: out.options.label(),
                interconnect: fabric.to_string(),
                compute_s: out.compute_s,
                reduction_exposed_s: out.reduction_exposed_s,
                net_wait_s: out.net_wait_s,
                net_bytes: out.net_bytes,
                net_messages: out.net_messages,
                nodes_lost: out.nodes_lost,
                nodes: out.nodes,
            }),
        },
    }
}

/// The identity a journal is keyed on: everything that must match for a
/// resume to be sound — scan fingerprint, dimensions, the full
/// reconstruction configuration (floats by exact bit pattern), and the
/// engine. The slab plan deliberately participates too, so changing it
/// invalidates old journals even though replay would still be correct.
/// Under `--plan auto` the token carries the *resolved* plan label, so a
/// plan flip (flag or outcome) forces a clean restart. Cluster engines
/// additionally fold their reduction topology and overlap setting in, so
/// resuming under a different cluster shape restarts clean.
fn journal_key(
    engine: Engine,
    cfg: &ReconstructionConfig,
    dims: (usize, usize, usize),
    fingerprint: Option<u64>,
    plan_token: &str,
    copts: Option<&ClusterOptions>,
) -> JournalKey {
    let mut d = String::new();
    let _ = write!(
        d,
        "scan={:016x};dims={}x{}x{};",
        fingerprint.unwrap_or(0),
        dims.0,
        dims.1,
        dims.2
    );
    let _ = write!(
        d,
        "depth={:016x}..{:016x}/{};cutoff={:016x};edge={:?};",
        cfg.depth_start.to_bits(),
        cfg.depth_end.to_bits(),
        cfg.n_depth_bins,
        cfg.intensity_cutoff.to_bits(),
        cfg.wire_edge,
    );
    let _ = write!(
        d,
        "slab={:?};ring={:?};engine={};compaction={};accumulation={};plan={};integrity={}",
        cfg.rows_per_slab,
        cfg.pipeline_depth,
        engine.label(),
        cfg.compaction.label(),
        cfg.accumulation.label(),
        plan_token,
        cfg.integrity.label()
    );
    if let Some(c) = copts {
        let _ = write!(
            d,
            ";reduction={};overlap={}",
            c.topology.label(),
            if c.overlap { "on" } else { "off" }
        );
    }
    JournalKey::new(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laue_core::gpu::Layout;
    use laue_wire::{write_scan, SyntheticScanBuilder};
    use std::path::PathBuf;

    fn scan_file(name: &str) -> (PathBuf, laue_wire::SyntheticScan) {
        let scan = SyntheticScanBuilder::new(8, 8, 12)
            .scatterers(6)
            .seed(21)
            .build()
            .unwrap();
        let path = std::env::temp_dir().join(format!("pipeline_{}_{name}.mh5", std::process::id()));
        write_scan(&path, &scan.geometry, &scan.images, Some(&scan.truth), 2).unwrap();
        (path, scan)
    }

    fn cfg() -> ReconstructionConfig {
        ReconstructionConfig::new(-1500.0, 1500.0, 100)
    }

    #[test]
    fn all_engines_agree_on_a_file() {
        let (path, _) = scan_file("agree");
        let p = Pipeline::default();
        let engines = [
            Engine::CpuSeq,
            Engine::CpuThreaded { threads: 3 },
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
            Engine::Gpu {
                layout: Layout::Pointer3d,
            },
            Engine::GpuTables,
            Engine::GpuPipelined,
        ];
        let reports: Vec<RunReport> = engines
            .iter()
            .map(|&e| p.run_scan_file(&path, &cfg(), e).unwrap())
            .collect();
        for r in &reports[1..] {
            assert_eq!(
                reports[0].image.data, r.image.data,
                "{} diverges from cpu-seq",
                r.engine
            );
            assert_eq!(reports[0].stats, r.stats);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_report_accounts_for_transfers() {
        let (path, _) = scan_file("meters");
        let p = Pipeline::default();
        let r = p
            .run_scan_file(
                &path,
                &cfg(),
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        assert!(r.comm_time_s > 0.0);
        assert!(r.compute_time_s > 0.0);
        assert!((r.total_time_s - (r.comm_time_s + r.compute_time_s)).abs() < 1e-9);
        assert!(r.n_slabs >= 1);
        assert!(r.rows_per_slab >= 1);
        assert!(r.summary().contains("gpu-1d"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cpu_gpu_speedup_is_in_the_papers_ballpark() {
        // The headline claim (GPU ≈ 25–30 % of CPU) only holds once the
        // stack is big enough that per-pair work dominates the fixed launch
        // and PCIe latencies — on a tiny scan the GPU correctly *loses*.
        // Use a noisy mid-size scan where every pair is active.
        let scan = SyntheticScanBuilder::new(48, 48, 24)
            .scatterers(40)
            .noise(1.0)
            .background(20.0)
            .seed(3)
            .build()
            .unwrap();
        let path =
            std::env::temp_dir().join(format!("pipeline_{}_speedup.mh5", std::process::id()));
        write_scan(&path, &scan.geometry, &scan.images, None, 8).unwrap();
        let p = Pipeline::default();
        let cpu_r = p.run_scan_file(&path, &cfg(), Engine::CpuSeq).unwrap();
        let gpu_r = p
            .run_scan_file(
                &path,
                &cfg(),
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        let ratio = gpu_r.total_time_s / cpu_r.total_time_s;
        // This mid-size stack is still fairly transfer-heavy; the calibrated
        // 25–30 % figure needs the full-scale Fig 8 workloads (laue-bench).
        assert!(
            ratio < 0.75,
            "the modeled GPU must beat the modeled CPU at this scale (ratio {ratio})"
        );

        // And the inverse crossover: on a tiny scan the fixed overheads make
        // the GPU slower — the scalability story of the paper's Fig 8.
        let (tiny_path, _) = scan_file("speedup_tiny");
        let cpu_t = p.run_scan_file(&tiny_path, &cfg(), Engine::CpuSeq).unwrap();
        let gpu_t = p
            .run_scan_file(
                &tiny_path,
                &cfg(),
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        assert!(
            gpu_t.total_time_s > cpu_t.total_time_s,
            "fixed overheads must dominate a tiny scan"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tiny_path).ok();
    }

    #[test]
    fn fallback_policy_degrades_to_cpu_on_dead_device() {
        let (path, _) = scan_file("fallback");
        let cpu = Pipeline::default()
            .run_scan_file(&path, &cfg(), Engine::CpuSeq)
            .unwrap();

        // A device that dies almost immediately: abort surfaces the error…
        let dead_plan = cuda_sim::FaultPlan::new(1).fail_after(2);
        let abort = Pipeline {
            fault_plan: Some(dead_plan.clone()),
            ..Pipeline::default()
        };
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        assert!(abort.run_scan_file(&path, &cfg(), gpu).is_err());

        // …and fallback-cpu completes on the CPU engine with the degradation
        // recorded. Sequential executor → bitwise equal to cpu-seq.
        let degrade = Pipeline {
            fault_plan: Some(dead_plan),
            on_gpu_failure: GpuFailurePolicy::FallbackCpu,
            ..Pipeline::default()
        };
        let r = degrade.run_scan_file(&path, &cfg(), gpu).unwrap();
        let note = r.fallback.as_deref().expect("degradation recorded");
        assert!(
            note.contains("gpu-1d") && note.contains("cpu-seq"),
            "{note}"
        );
        assert_eq!(r.image.data, cpu.image.data);
        assert_eq!(r.stats, cpu.stats);
        assert!(r.summary().contains("DEGRADED"), "{}", r.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_oom_replans_without_fallback() {
        let (path, _) = scan_file("replan");
        let clean = Pipeline::default();
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let baseline = clean.run_scan_file(&path, &cfg(), gpu).unwrap();
        assert_eq!(baseline.gpu_replans, 0);

        let p = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(3).fail_nth_alloc(3)),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &cfg(), gpu).unwrap();
        assert!(r.gpu_replans >= 1, "the engine must have re-planned");
        assert!(r.fallback.is_none(), "recovered without degrading");
        assert_eq!(r.image.data, baseline.image.data);
        assert_eq!(r.stats, baseline.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipelined_engine_overlaps_and_matches_serial() {
        let (path, _) = scan_file("pipe");
        let p = Pipeline::default();
        let mut c = cfg();
        c.rows_per_slab = Some(2); // several slabs so the ring can overlap
        let serial = p
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        let piped = p.run_scan_file(&path, &c, Engine::GpuPipelined).unwrap();
        assert_eq!(
            piped.pipeline_depth, 3,
            "gpu-pipe defaults to a 3-slot ring"
        );
        assert_eq!(serial.pipeline_depth, 1);
        assert_eq!(piped.image.data, serial.image.data);
        assert!(
            piped.total_time_s < serial.total_time_s,
            "the ring must hide transfer time ({} vs {})",
            piped.total_time_s,
            serial.total_time_s
        );
        // cfg.pipeline_depth overrides the engine default.
        c.pipeline_depth = Some(2);
        let two = p.run_scan_file(&path, &c, Engine::GpuPipelined).unwrap();
        assert_eq!(two.pipeline_depth, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_table_cache_speeds_up_the_second_run() {
        let (path, _) = scan_file("warm");
        let p = Pipeline::default();
        let cold = p.run_scan_file(&path, &cfg(), Engine::GpuTables).unwrap();
        assert_eq!(cold.table_cache.host_misses, 1);
        assert_eq!(cold.table_cache.device_misses, 1);
        // Same pipeline, same scan: tables are found host-side and already
        // resident on the persistent device.
        let warm = p.run_scan_file(&path, &cfg(), Engine::GpuTables).unwrap();
        assert_eq!(warm.table_cache.host_hits, 1);
        assert_eq!(warm.table_cache.device_hits, 1);
        assert_eq!(warm.image.data, cold.image.data);
        assert!(
            warm.total_time_s < cold.total_time_s,
            "skipping the table upload must shorten the run ({} vs {})",
            warm.total_time_s,
            cold.total_time_s
        );
        assert!(warm.summary().contains("cache"), "{}", warm.summary());

        // A pipeline with residency disabled still caches host-side.
        let no_res = Pipeline {
            table_cache_mb: Some(0),
            ..Pipeline::default()
        };
        let r1 = no_res
            .run_scan_file(&path, &cfg(), Engine::GpuTables)
            .unwrap();
        let r2 = no_res
            .run_scan_file(&path, &cfg(), Engine::GpuTables)
            .unwrap();
        assert_eq!(r1.table_cache.device_hits, 0);
        assert_eq!(r2.table_cache.device_hits, 0);
        assert_eq!(r2.table_cache.host_hits, 1);
        assert_eq!(r2.image.data, cold.image.data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_multi_engine_matches_single_gpu() {
        let (path, _) = scan_file("multi");
        let p = Pipeline::default();
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let single = p.run_scan_file(&path, &c, Engine::GpuPipelined).unwrap();
        let multi = p
            .run_scan_file(&path, &c, Engine::GpuMulti { devices: 3 })
            .unwrap();
        assert_eq!(multi.engine, "gpu-multi(3)");
        assert_eq!(multi.image.data, single.image.data);
        assert_eq!(multi.stats, single.stats);
        assert!(multi.n_slabs >= 3);
        assert_eq!(multi.recovery.devices_lost, 0);
        // The fleet shares one half-duplex PCIe bus, and this tiny scan is
        // transfer-bound: the extra devices mostly queue on the link, so
        // — honestly — three devices do NOT beat one pipelined device
        // here. The stall the fleet paid is on the meter.
        assert!(
            multi.bus_wait_s > 0.0,
            "fleet devices must contend for the shared bus"
        );
        assert!(
            multi.total_time_s >= single.total_time_s,
            "a transfer-bound fleet cannot beat the shared bus ({} vs {})",
            multi.total_time_s,
            single.total_time_s
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_resume_completes_an_interrupted_run_bit_identically() {
        let (path, _) = scan_file("resume");
        let jdir = std::env::temp_dir().join(format!("pipeline_{}_resume_jrn", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let baseline = Pipeline::default()
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();

        // The device dies at its third slab launch; abort policy surfaces
        // the loss but the journal keeps the two committed slabs.
        let dying = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(2)),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        assert!(dying
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                }
            )
            .is_err());
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // A fresh healthy pipeline with --resume replays them and computes
        // only the remainder — bit-identical, provenance recorded.
        let resumed_pipeline = Pipeline {
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = resumed_pipeline
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        assert_eq!(r.image.data, baseline.image.data);
        assert_eq!(r.stats, baseline.stats);
        let resume = r.recovery.resume.as_ref().expect("resume provenance");
        assert_eq!(resume.slabs_replayed, 2);
        assert!(
            r.summary().contains("resumed from journal"),
            "{}",
            r.summary()
        );
        // The finished run retires its journal.
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 0);

        std::fs::remove_dir_all(&jdir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipping_compaction_mode_forces_a_clean_restart() {
        use laue_core::CompactionMode;
        let (path, _) = scan_file("modeflip");
        let jdir =
            std::env::temp_dir().join(format!("pipeline_{}_modeflip_jrn", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let baseline = Pipeline::default().run_scan_file(&path, &c, gpu).unwrap();

        // Interrupt a dense run after two committed slabs.
        let dying = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(2)),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        assert!(dying.run_scan_file(&path, &c, gpu).is_err());
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // Resuming under a different sparsity mode must NOT replay those
        // slabs: the compaction mode is part of the journal key, so the run
        // restarts clean (and still matches the dense baseline bitwise).
        let mut flipped = c.clone();
        flipped.compaction = CompactionMode::On;
        let resumed = Pipeline {
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = resumed.run_scan_file(&path, &flipped, gpu).unwrap();
        assert!(
            r.recovery.resume.is_none(),
            "a journal from another sparsity mode must not be replayed"
        );
        assert_eq!(r.image.data, baseline.image.data);
        assert!(
            !r.slab_densities.is_empty(),
            "compacted run reports density"
        );
        assert!(r.summary().contains("sparsity"), "{}", r.summary());

        // Same mode, same key: the stale dense journal is still replayable.
        let r = resumed.run_scan_file(&path, &c, gpu).unwrap();
        let resume = r.recovery.resume.as_ref().expect("same-mode resume");
        assert_eq!(resume.slabs_replayed, 2);
        assert_eq!(r.image.data, baseline.image.data);

        std::fs::remove_dir_all(&jdir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipping_accumulation_mode_forces_a_clean_restart() {
        use laue_core::AccumulationMode;
        let (path, _) = scan_file("accumflip");
        let jdir =
            std::env::temp_dir().join(format!("pipeline_{}_accumflip_jrn", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let baseline = Pipeline::default().run_scan_file(&path, &c, gpu).unwrap();
        assert!(
            baseline.slab_privatized.is_empty(),
            "atomic run records no accumulation attribution"
        );

        // Interrupt an atomic run after two committed slabs.
        let dying = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(2)),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        assert!(dying.run_scan_file(&path, &c, gpu).is_err());
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // Resuming under a different accumulation strategy must NOT replay
        // those slabs: the strategy is part of the journal key, so the run
        // restarts clean (and still matches the atomic baseline bitwise).
        let mut flipped = c.clone();
        flipped.accumulation = AccumulationMode::Privatized;
        let resumed = Pipeline {
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = resumed.run_scan_file(&path, &flipped, gpu).unwrap();
        assert!(
            r.recovery.resume.is_none(),
            "a journal from another accumulation strategy must not be replayed"
        );
        assert_eq!(r.image.data, baseline.image.data);
        assert!(
            !r.slab_privatized.is_empty() && r.slab_privatized.iter().all(|&p| p),
            "100 bins fit the M2070 tile, so every slab privatizes"
        );
        assert_eq!(r.stats.privatized_pairs, r.stats.pairs_total);
        assert!(
            r.summary().contains("accumulation: privatized"),
            "{}",
            r.summary()
        );

        // Same mode, same key: the stale atomic journal is still replayable.
        let r = resumed.run_scan_file(&path, &c, gpu).unwrap();
        let resume = r.recovery.resume.as_ref().expect("same-mode resume");
        assert_eq!(resume.slabs_replayed, 2);
        assert_eq!(r.image.data, baseline.image.data);

        std::fs::remove_dir_all(&jdir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipping_plan_mode_forces_a_clean_restart() {
        use laue_core::PlanMode;
        let (path, _) = scan_file("planflip");
        let jdir =
            std::env::temp_dir().join(format!("pipeline_{}_planflip_jrn", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let baseline = Pipeline::default().run_scan_file(&path, &c, gpu).unwrap();

        // Interrupt a fixed-plan run after two committed slabs.
        let dying = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(2)),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        assert!(dying.run_scan_file(&path, &c, gpu).is_err());
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // Resuming under --plan auto must NOT replay those slabs: the
        // resolved plan is part of the journal key, so the run restarts
        // clean (and still matches the fixed baseline bitwise — planner
        // choices only relabel work, never change arithmetic).
        let mut flipped = c.clone();
        flipped.plan = PlanMode::Auto;
        let resumed = Pipeline {
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = resumed.run_scan_file(&path, &flipped, gpu).unwrap();
        assert!(
            r.recovery.resume.is_none(),
            "a journal from another execution plan must not be replayed"
        );
        assert_eq!(r.image.data, baseline.image.data);
        let explain = r.plan.as_ref().expect("plan auto records an explain block");
        assert!(!explain.candidates.is_empty());

        // Same mode, same key: the stale fixed-plan journal is replayable.
        let r = resumed.run_scan_file(&path, &c, gpu).unwrap();
        let resume = r.recovery.resume.as_ref().expect("same-mode resume");
        assert_eq!(resume.slabs_replayed, 2);
        assert_eq!(r.image.data, baseline.image.data);

        std::fs::remove_dir_all(&jdir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_auto_matches_fixed_bitwise_and_explains_itself() {
        use laue_core::PlanMode;
        let (path, _) = scan_file("planauto");
        let c = cfg();
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let fixed = Pipeline::default().run_scan_file(&path, &c, gpu).unwrap();
        assert!(fixed.plan.is_none(), "fixed plan records no explain block");

        let mut auto_cfg = c.clone();
        auto_cfg.plan = PlanMode::Auto;
        let auto = Pipeline::default()
            .run_scan_file(&path, &auto_cfg, gpu)
            .unwrap();
        assert_eq!(auto.image.data, fixed.image.data);
        let explain = auto.plan.as_ref().expect("plan auto explain block");
        assert!(explain.predicted_s > 0.0);
        assert!(explain.measured_s > 0.0);
        assert!(
            explain
                .candidates
                .iter()
                .any(|(label, _)| *label == explain.chosen),
            "chosen plan {} must appear among scored candidates",
            explain.chosen
        );
        // The chosen plan is the argmin over the scored candidates.
        let best = explain
            .candidates
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        assert!(explain.predicted_s <= best + 1e-12);
        assert!(
            auto.summary().contains("plan auto chose"),
            "{}",
            auto.summary()
        );

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cpu_threaded_zero_resolves_to_available_parallelism() {
        let (path, _) = scan_file("autothreads");
        let p = Pipeline::default();
        let seq = p.run_scan_file(&path, &cfg(), Engine::CpuSeq).unwrap();
        let auto = p
            .run_scan_file(&path, &cfg(), Engine::CpuThreaded { threads: 0 })
            .unwrap();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(auto.engine, format!("cpu-threaded({cores})"));
        assert_eq!(auto.image.data, seq.image.data);
        assert_eq!(auto.stats, seq.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fallback_salvages_gpu_committed_slabs() {
        let (path, _) = scan_file("salvage");
        let mut c = cfg();
        c.rows_per_slab = Some(2);
        let cpu = Pipeline::default()
            .run_scan_file(&path, &c, Engine::CpuSeq)
            .unwrap();
        let p = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(2)),
            on_gpu_failure: GpuFailurePolicy::FallbackCpu,
            ..Pipeline::default()
        };
        let r = p
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap();
        assert_eq!(r.image.data, cpu.image.data);
        assert_eq!(r.stats, cpu.stats);
        assert_eq!(
            r.recovery.salvaged_slabs, 2,
            "the two GPU-committed slabs are kept"
        );
        assert_eq!(
            r.recovery.recomputed_slabs, 1,
            "the CPU recomputes one remaining band"
        );
        assert!(r.fallback.is_some());
        assert!(r.summary().contains("salvage:"), "{}", r.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let p = Pipeline::default();
        assert!(p
            .run_scan_file("/nonexistent/scan.mh5", &cfg(), Engine::CpuSeq)
            .is_err());
    }

    #[test]
    fn scrub_repairs_injected_transfer_corruption_bit_identically() {
        let (path, _) = scan_file("scrub_h2d");
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let clean = Pipeline::default()
            .run_scan_file(&path, &cfg(), gpu)
            .unwrap();

        let mut c = cfg();
        c.integrity = laue_core::IntegrityMode::Scrub;
        let p = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(5).flip_nth_h2d(2)),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &c, gpu).unwrap();
        let injected = r.faults_injected.expect("fault plan installed");
        assert!(injected.h2d_flipped >= 1, "{injected:?}");
        assert!(r.integrity.transfer_crc_failures >= 1, "{:?}", r.integrity);
        assert_eq!(
            r.integrity.corruptions_corrected, r.integrity.corruptions_detected,
            "every detection repaired: {:?}",
            r.integrity
        );
        assert_eq!(r.image.data, clean.image.data, "repaired bit-identically");
        assert_eq!(r.stats, clean.stats);
        assert!(
            r.summary().contains("INTEGRITY-DEGRADED"),
            "{}",
            r.summary()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scrub_reexecutes_a_slab_after_a_silent_kernel_flip() {
        let (path, _) = scan_file("scrub_kernel");
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let clean = Pipeline::default()
            .run_scan_file(&path, &cfg(), gpu)
            .unwrap();

        let mut c = cfg();
        c.integrity = laue_core::IntegrityMode::Scrub;
        let p = Pipeline {
            fault_plan: Some(
                cuda_sim::FaultPlan::new(5)
                    .flip_nth_kernel(1)
                    .flip_op_index(3),
            ),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &c, gpu).unwrap();
        let injected = r.faults_injected.expect("fault plan installed");
        assert!(injected.kernel_flipped >= 1, "{injected:?}");
        assert!(r.integrity.abft_mismatches >= 1, "{:?}", r.integrity);
        assert!(
            r.integrity.scrub_retries >= 1,
            "the condemned slab re-executed: {:?}",
            r.integrity
        );
        assert_eq!(r.image.data, clean.image.data, "repaired bit-identically");
        assert_eq!(r.stats, clean.stats);
        assert!(
            r.summary().contains("INTEGRITY-DEGRADED"),
            "{}",
            r.summary()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_aborts_on_silent_corruption_instead_of_exporting_it() {
        let (path, _) = scan_file("verify_abort");
        let mut c = cfg();
        c.integrity = laue_core::IntegrityMode::Verify;
        let p = Pipeline {
            fault_plan: Some(
                cuda_sim::FaultPlan::new(5)
                    .flip_nth_kernel(1)
                    .flip_op_index(3),
            ),
            ..Pipeline::default()
        };
        let err = p
            .run_scan_file(
                &path,
                &c,
                Engine::Gpu {
                    layout: Layout::Flat1d,
                },
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("integrity"), "{msg}");
        assert!(msg.contains("scrub"), "points at the repair mode: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn watchdog_condemns_a_stalled_launch_under_scrub() {
        let (path, _) = scan_file("watchdog");
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let clean = Pipeline::default()
            .run_scan_file(&path, &cfg(), gpu)
            .unwrap();

        let mut c = cfg();
        c.integrity = laue_core::IntegrityMode::Scrub;
        let p = Pipeline {
            // A stall far past any cost-model prediction: the kernel
            // "succeeds" (sums intact) but blows its watchdog deadline.
            fault_plan: Some(cuda_sim::FaultPlan::new(5).stall_nth_kernel(1, 5.0)),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &c, gpu).unwrap();
        let injected = r.faults_injected.expect("fault plan installed");
        assert!(injected.kernel_stalled >= 1, "{injected:?}");
        assert!(r.integrity.watchdog_timeouts >= 1, "{:?}", r.integrity);
        assert!(r.integrity.corruptions_detected >= 1, "{:?}", r.integrity);
        assert_eq!(r.image.data, clean.image.data, "repaired bit-identically");
        assert_eq!(r.stats, clean.stats);
        std::fs::remove_file(&path).ok();
    }

    /// Regression for submission-order-stable fault ordinals: one fault
    /// spec must fire on the same transfers/launches whether the ring runs
    /// serial or deep, because the dice are keyed on per-kind submission
    /// ordinals, not on completion times or wall-clock interleaving.
    #[test]
    fn fault_ordinals_are_stable_across_pipeline_depths() {
        let (path, _) = scan_file("ordinal_depth");
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let clean = Pipeline::default()
            .run_scan_file(&path, &cfg(), gpu)
            .unwrap();

        let spec = cuda_sim::FaultPlan::new(0)
            .h2d_fault_rate(0.25)
            .flip_nth_d2h(2);
        let run_at_depth = |depth: usize| {
            let mut c = cfg();
            c.integrity = laue_core::IntegrityMode::Scrub;
            c.pipeline_depth = Some(depth);
            let p = Pipeline {
                fault_plan: Some(spec.clone()),
                ..Pipeline::default()
            };
            p.run_scan_file(&path, &c, gpu).unwrap()
        };
        let serial = run_at_depth(1);
        let deep = run_at_depth(3);
        assert_eq!(
            serial.faults_injected, deep.faults_injected,
            "the same faults must fire at every ring depth"
        );
        assert_eq!(
            serial.gpu_transfer_retries, deep.gpu_transfer_retries,
            "identical transient-fault schedule"
        );
        assert_eq!(
            serial.integrity.transfer_crc_failures, deep.integrity.transfer_crc_failures,
            "identical silent-corruption detections"
        );
        for r in [&serial, &deep] {
            assert_eq!(r.image.data, clean.image.data);
            assert_eq!(r.stats, clean.stats);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn integrity_mode_participates_in_the_journal_key() {
        let mut c = cfg();
        let gpu = Engine::Gpu {
            layout: Layout::Flat1d,
        };
        let off = journal_key(gpu, &c, (12, 8, 8), Some(1), "fixed", None);
        c.integrity = laue_core::IntegrityMode::Scrub;
        let scrub = journal_key(gpu, &c, (12, 8, 8), Some(1), "fixed", None);
        assert_ne!(
            off.hash, scrub.hash,
            "an integrity flip must force a clean restart"
        );
    }

    #[test]
    fn cluster_topology_participates_in_the_journal_key() {
        let c = cfg();
        let engine = Engine::GpuCluster {
            nodes: 4,
            devices_per_node: 1,
        };
        let key = |copts: ClusterOptions| {
            journal_key(engine, &c, (12, 8, 8), Some(1), "fixed", Some(&copts))
        };
        let tree = key(ClusterOptions::default());
        let ring = key(ClusterOptions {
            topology: ReductionTopology::Ring,
            ..ClusterOptions::default()
        });
        let barrier = key(ClusterOptions {
            overlap: false,
            ..ClusterOptions::default()
        });
        assert_ne!(tree.hash, ring.hash, "topology flip forces a restart");
        assert_ne!(tree.hash, barrier.hash, "overlap flip forces a restart");
    }

    #[test]
    fn multi_gpu_scrub_repairs_and_reports_fleet_integrity() {
        let (path, _) = scan_file("multi_scrub");
        let engine = Engine::GpuMulti { devices: 2 };
        let clean = Pipeline::default()
            .run_scan_file(&path, &cfg(), engine)
            .unwrap();

        let mut c = cfg();
        c.integrity = laue_core::IntegrityMode::Scrub;
        let p = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(5).flip_nth_h2d(2)),
            // Corrupt one fleet device only — the report still aggregates.
            fault_device: Some(0),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &c, engine).unwrap();
        let injected = r.faults_injected.expect("fault plan installed");
        assert!(injected.h2d_flipped >= 1, "{injected:?}");
        assert!(r.integrity.transfer_crc_failures >= 1, "{:?}", r.integrity);
        assert_eq!(r.image.data, clean.image.data, "repaired bit-identically");
        assert_eq!(r.stats, clean.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cluster_matches_single_gpu_at_every_shape_and_topology() {
        let (path, _) = scan_file("cluster_agree");
        let baseline = Pipeline::default()
            .run_scan_file(&path, &cfg(), Engine::GpuPipelined)
            .unwrap();
        for (nodes, devices_per_node) in [(1, 1), (2, 1), (3, 1), (2, 2)] {
            for topology in [ReductionTopology::Tree, ReductionTopology::Ring] {
                for overlap in [true, false] {
                    let p = Pipeline {
                        reduction: Some(topology),
                        overlap: Some(overlap),
                        ..Pipeline::default()
                    };
                    let engine = Engine::GpuCluster {
                        nodes,
                        devices_per_node,
                    };
                    let r = p.run_scan_file(&path, &cfg(), engine).unwrap();
                    let label = format!(
                        "gpu-cluster:{nodes}x{devices_per_node} {}/{}",
                        topology.label(),
                        if overlap { "overlap" } else { "barrier" }
                    );
                    assert_eq!(
                        r.image.data, baseline.image.data,
                        "{label} diverges from gpu-pipe"
                    );
                    assert_eq!(r.stats, baseline.stats, "{label}");
                    let c = r.cluster.as_ref().expect("cluster accounting");
                    assert_eq!(c.nodes.len(), nodes, "{label}");
                    assert_eq!(c.nodes_lost, 0, "{label}");
                    if nodes > 1 {
                        assert!(c.net_messages > 0, "{label} moved no segments");
                        assert!(c.net_bytes > 0, "{label}");
                    }
                    assert!(r.summary().contains("cluster:"), "{}", r.summary());
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cluster_plan_auto_prices_the_sweep_and_stays_bit_identical() {
        let (path, _) = scan_file("cluster_auto");
        let baseline = Pipeline::default()
            .run_scan_file(&path, &cfg(), Engine::GpuPipelined)
            .unwrap();
        let mut c = cfg();
        c.plan = PlanMode::Auto;
        let r = Pipeline::default()
            .run_scan_file(
                &path,
                &c,
                Engine::GpuCluster {
                    nodes: 4,
                    devices_per_node: 1,
                },
            )
            .unwrap();
        assert_eq!(r.image.data, baseline.image.data);
        // The planned run resolves compaction/accumulation per slab, so the
        // attribution counters differ from the dense baseline — the physics
        // counters must not.
        assert_eq!(r.stats.pairs_deposited, baseline.stats.pairs_deposited);
        assert_eq!(r.stats.deposits, baseline.stats.deposits);
        let plan = r.plan.as_ref().expect("cluster plan explain");
        assert!(plan.chosen.starts_with("n4x1/"), "{}", plan.chosen);
        // Node-count ladder {1,2,4} × topology × overlap.
        assert_eq!(plan.candidates.len(), 12);
        assert!(plan.predicted_s > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cluster_node_loss_rebands_rows_onto_survivors() {
        let (path, _) = scan_file("cluster_loss");
        let engine = Engine::GpuCluster {
            nodes: 3,
            devices_per_node: 1,
        };
        // One row per slab so the victim has launches left when it dies.
        let mut c = cfg();
        c.rows_per_slab = Some(1);
        let clean = Pipeline::default()
            .run_scan_file(&path, &c, engine)
            .unwrap();

        // Kill node 0's device after its first launch; the survivors must
        // absorb its remaining rows and still match bitwise.
        let p = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(1).fail_after_launches(1)),
            fault_device: Some(0),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &c, engine).unwrap();
        assert_eq!(
            r.image.data, clean.image.data,
            "failover must stay bit-identical"
        );
        assert_eq!(r.stats, clean.stats);
        let c = r.cluster.as_ref().expect("cluster accounting");
        assert_eq!(c.nodes_lost, 1);
        assert!(c.nodes[0].lost, "node 0 held the scripted fault");
        assert!(
            r.summary().contains("DEGRADED: 1 node(s) lost mid-run"),
            "{}",
            r.summary()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cluster_topology_flip_forces_a_clean_restart_end_to_end() {
        let (path, _) = scan_file("clusterflip");
        let jdir =
            std::env::temp_dir().join(format!("pipeline_{}_clusterflip_jrn", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let mut c = cfg();
        // Serial single-row slabs: each node commits its first slab to the
        // journal before the scripted fault kills its second launch.
        c.rows_per_slab = Some(1);
        c.pipeline_depth = Some(1);
        let engine = Engine::GpuCluster {
            nodes: 2,
            devices_per_node: 1,
        };
        let baseline = Pipeline {
            reduction: Some(ReductionTopology::Tree),
            ..Pipeline::default()
        }
        .run_scan_file(&path, &c, engine)
        .unwrap();

        // Interrupt a tree-reduction run: the schedule dies on every node
        // (no survivor to fail over to), leaving the journal behind.
        let dying = Pipeline {
            fault_plan: Some(cuda_sim::FaultPlan::new(0).fail_after_launches(1)),
            reduction: Some(ReductionTopology::Tree),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        assert!(dying.run_scan_file(&path, &c, engine).is_err());
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // Resuming under ring reduction must NOT replay those slabs: the
        // topology is part of the journal key, so the run restarts clean.
        let ring = Pipeline {
            reduction: Some(ReductionTopology::Ring),
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = ring.run_scan_file(&path, &c, engine).unwrap();
        assert!(
            r.recovery.resume.is_none(),
            "a journal from another reduction topology must not be replayed"
        );
        assert_eq!(r.image.data, baseline.image.data);

        // Same topology, same key: the stale journal is still replayable.
        let tree = Pipeline {
            reduction: Some(ReductionTopology::Tree),
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = tree.run_scan_file(&path, &c, engine).unwrap();
        let resume = r.recovery.resume.as_ref().expect("same-topology resume");
        assert!(resume.slabs_replayed >= 1);
        assert_eq!(r.image.data, baseline.image.data);

        std::fs::remove_dir_all(&jdir).ok();
        std::fs::remove_file(&path).ok();
    }
}
