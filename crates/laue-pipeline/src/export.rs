//! Result export: depth-resolved output as mh5 and text.
//!
//! The original program "writes results back to text files" (§III-C); the
//! text exporters mirror that, while the mh5 exporter keeps results in the
//! same container family as the inputs.

use std::io::Write;
use std::path::Path;

use laue_core::{DepthImage, ReconstructionConfig};
use mh5::{AttrValue, Dtype, FileWriter};

use crate::report::RunReport;
use crate::Result;

/// Write the depth image to an mh5 file:
/// `/reconstruction/depth_image` (f64, `(bins, rows, cols)`), with the
/// depth axis and run metadata as attributes.
pub fn write_mh5<P: AsRef<Path>>(
    path: P,
    report: &RunReport,
    cfg: &ReconstructionConfig,
) -> Result<()> {
    let img = &report.image;
    let mut w = FileWriter::create(path).map_err(crate::PipelineError::Mh5)?;
    let g = w.create_group(FileWriter::ROOT, "reconstruction")?;
    w.set_attr(g, "engine", AttrValue::Str(report.engine.clone()))?;
    w.set_attr(g, "depth_start_um", AttrValue::Float(cfg.depth_start))?;
    w.set_attr(g, "depth_end_um", AttrValue::Float(cfg.depth_end))?;
    w.set_attr(g, "n_depth_bins", AttrValue::Int(cfg.n_depth_bins as i64))?;
    w.set_attr(
        g,
        "intensity_cutoff",
        AttrValue::Float(cfg.intensity_cutoff),
    )?;
    w.set_attr(g, "total_time_s", AttrValue::Float(report.total_time_s))?;
    w.set_attr(
        g,
        "pairs_deposited",
        AttrValue::Int(report.stats.pairs_deposited as i64),
    )?;
    let ds = w.create_dataset(
        g,
        "depth_image",
        Dtype::F64,
        &[img.n_bins, img.n_rows, img.n_cols],
        &[1, img.n_rows, img.n_cols],
    )?;
    w.write_all(ds, &img.data)?;
    w.finish()?;
    Ok(())
}

/// Write one pixel's depth profile as two-column text
/// (`depth_um intensity`).
pub fn write_profile_text<W: Write>(
    out: &mut W,
    image: &DepthImage,
    cfg: &ReconstructionConfig,
    row: usize,
    col: usize,
) -> Result<()> {
    writeln!(out, "# depth profile of pixel ({row}, {col})")?;
    writeln!(out, "# depth_um  intensity")?;
    for (bin, v) in image.depth_profile(row, col).iter().enumerate() {
        writeln!(out, "{:12.4}  {:14.6}", cfg.bin_center(bin), v)?;
    }
    Ok(())
}

/// Write the per-bin total intensity (the integrated depth histogram).
pub fn write_histogram_text<W: Write>(
    out: &mut W,
    image: &DepthImage,
    cfg: &ReconstructionConfig,
) -> Result<()> {
    writeln!(out, "# integrated depth histogram")?;
    writeln!(out, "# depth_um  total_intensity")?;
    for bin in 0..image.n_bins {
        writeln!(
            out,
            "{:12.4}  {:14.6}",
            cfg.bin_center(bin),
            image.bin_total(bin)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use laue_core::ReconStats;
    use mh5::FileReader;

    fn report() -> (RunReport, ReconstructionConfig) {
        let cfg = ReconstructionConfig::new(0.0, 100.0, 4);
        let mut image = DepthImage::zeroed(4, 2, 3);
        *image.at_mut(1, 0, 0) = 7.0;
        *image.at_mut(2, 1, 2) = 3.0;
        (
            RunReport {
                engine: "cpu-seq".into(),
                image,
                stats: ReconStats::default(),
                total_time_s: 1.0,
                comm_time_s: 0.0,
                bus_wait_s: 0.0,
                host_table_time_s: 0.0,
                compute_time_s: 1.0,
                input_bytes: 1024,
                dims: (4, 2, 3),
                rows_per_slab: 0,
                n_slabs: 0,
                transfers: 0,
                gpu_replans: 0,
                gpu_transfer_retries: 0,
                pipeline_depth: 0,
                table_cache: laue_core::cache::TableCacheStats::default(),
                slab_densities: Vec::new(),
                slab_privatized: Vec::new(),
                plan: None,
                fallback: None,
                recovery: crate::report::RecoveryAccounting::default(),
                integrity: laue_core::IntegrityReport::default(),
                faults_injected: None,
                trace_dropped: 0,
                cluster: None,
            },
            cfg,
        )
    }

    #[test]
    fn mh5_export_round_trips() {
        let (r, cfg) = report();
        let path = std::env::temp_dir().join(format!("export_{}.mh5", std::process::id()));
        write_mh5(&path, &r, &cfg).unwrap();
        let f = FileReader::open(&path).unwrap();
        let g = f.resolve_path("/reconstruction").unwrap();
        assert_eq!(
            f.attr(g, "engine").unwrap().unwrap().as_str(),
            Some("cpu-seq")
        );
        assert_eq!(
            f.attr(g, "n_depth_bins").unwrap().unwrap().as_int(),
            Some(4)
        );
        let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
        let data: Vec<f64> = f.read_all(ds).unwrap();
        assert_eq!(data, r.image.data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_exports_are_parsable() {
        let (r, cfg) = report();
        let mut buf = Vec::new();
        write_profile_text(&mut buf, &r.image, &cfg, 0, 0).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let data_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data_lines.len(), 4);
        // Bin 1 (centre 37.5) carries 7.0.
        let fields: Vec<f64> = data_lines[1]
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(fields, vec![37.5, 7.0]);

        let mut buf = Vec::new();
        write_histogram_text(&mut buf, &r.image, &cfg).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("37.5"));
        let total: f64 = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 10.0).abs() < 1e-9);
    }
}
