//! Engine selection.

use laue_core::gpu::Layout;

/// Which implementation reconstructs the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's baseline: the prior sequential CPU program.
    CpuSeq,
    /// Row-parallel CPU variant on `threads` OS threads.
    CpuThreaded { threads: usize },
    /// The paper's CUDA design on the simulated device.
    Gpu { layout: Layout },
    /// GPU with host-precomputed depth tables (the paper's
    /// `edge`/`gpuPointArray` design point).
    GpuTables,
    /// Double-buffered two-stream GPU pipeline (the overlap ablation).
    GpuOverlapped,
}

impl Engine {
    /// Short label for reports and bench output.
    pub fn label(&self) -> String {
        match self {
            Engine::CpuSeq => "cpu-seq".to_string(),
            Engine::CpuThreaded { threads } => format!("cpu-threaded({threads})"),
            Engine::Gpu {
                layout: Layout::Flat1d,
            } => "gpu-1d".to_string(),
            Engine::Gpu {
                layout: Layout::Pointer3d,
            } => "gpu-3d".to_string(),
            Engine::GpuTables => "gpu-tables".to_string(),
            Engine::GpuOverlapped => "gpu-overlap".to_string(),
        }
    }

    /// Does this engine run on the simulated device?
    pub fn is_gpu(&self) -> bool {
        matches!(
            self,
            Engine::Gpu { .. } | Engine::GpuTables | Engine::GpuOverlapped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let engines = [
            Engine::CpuSeq,
            Engine::CpuThreaded { threads: 4 },
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
            Engine::Gpu {
                layout: Layout::Pointer3d,
            },
            Engine::GpuTables,
            Engine::GpuOverlapped,
        ];
        let labels: Vec<String> = engines.iter().map(|e| e.label()).collect();
        for i in 0..labels.len() {
            for j in i + 1..labels.len() {
                assert_ne!(labels[i], labels[j]);
            }
        }
        assert!(!Engine::CpuSeq.is_gpu());
        assert!(Engine::GpuOverlapped.is_gpu());
    }
}
