//! Engine selection.

use laue_core::gpu::{GpuOptions, Layout, PipelineDepth, Triangulation};

/// Which implementation reconstructs the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's baseline: the prior sequential CPU program.
    CpuSeq,
    /// Row-parallel CPU variant on `threads` OS threads.
    CpuThreaded { threads: usize },
    /// The paper's CUDA design on the simulated device.
    Gpu { layout: Layout },
    /// GPU with host-precomputed depth tables (the paper's
    /// `edge`/`gpuPointArray` design point).
    GpuTables,
    /// k-deep ring-buffered three-stream GPU pipeline (the transfer/compute
    /// overlap ablation; ring depth defaults to 3 and is overridden by
    /// `ReconstructionConfig::pipeline_depth`).
    GpuPipelined,
    /// A fleet of `devices` simulated GPUs, one row band each, every device
    /// running the k-deep ring pipeline. A device that dies mid-run has its
    /// unfinished rows requeued onto the survivors.
    GpuMulti { devices: usize },
    /// `nodes` chassis of `devices_per_node` GPUs each, linked by a metered
    /// interconnect: row bands shard across nodes, each node runs the fleet
    /// engine inside its own PCIe domain, and the depth image gathers back
    /// to the head node over tree or ring routes. A node whose devices all
    /// die has its rows re-banded onto the surviving nodes.
    GpuCluster {
        nodes: usize,
        devices_per_node: usize,
    },
}

impl Engine {
    /// Short label for reports and bench output.
    pub fn label(&self) -> String {
        match self {
            Engine::CpuSeq => "cpu-seq".to_string(),
            Engine::CpuThreaded { threads } => format!("cpu-threaded({threads})"),
            Engine::Gpu {
                layout: Layout::Flat1d,
            } => "gpu-1d".to_string(),
            Engine::Gpu {
                layout: Layout::Pointer3d,
            } => "gpu-3d".to_string(),
            Engine::GpuTables => "gpu-tables".to_string(),
            Engine::GpuPipelined => "gpu-pipe".to_string(),
            Engine::GpuMulti { devices } => format!("gpu-multi({devices})"),
            Engine::GpuCluster {
                nodes,
                devices_per_node,
            } => format!("gpu-cluster({nodes}x{devices_per_node})"),
        }
    }

    /// Does this engine run on the simulated device?
    pub fn is_gpu(&self) -> bool {
        self.gpu_plan().is_some()
    }

    /// The device schedule this engine stands for: kernel options plus ring
    /// depth. `None` for the CPU engines. The serial engines keep the
    /// paper's one-slot pipeline (so `elapsed == comm + compute` holds
    /// exactly); `gpu-pipe` rings [`PipelineDepth::DEFAULT`] slots deep.
    /// `ReconstructionConfig::pipeline_depth` overrides the depth either way.
    pub fn gpu_plan(&self) -> Option<(GpuOptions, PipelineDepth)> {
        let (opts, depth) = match self {
            Engine::CpuSeq | Engine::CpuThreaded { .. } => return None,
            Engine::Gpu { layout } => (
                GpuOptions {
                    layout: *layout,
                    triangulation: Triangulation::InKernel,
                    ..GpuOptions::default()
                },
                PipelineDepth::SERIAL,
            ),
            Engine::GpuTables => (
                GpuOptions {
                    layout: Layout::Flat1d,
                    triangulation: Triangulation::HostTables,
                    ..GpuOptions::default()
                },
                PipelineDepth::SERIAL,
            ),
            Engine::GpuPipelined | Engine::GpuMulti { .. } | Engine::GpuCluster { .. } => (
                GpuOptions {
                    layout: Layout::Flat1d,
                    triangulation: Triangulation::InKernel,
                    ..GpuOptions::default()
                },
                PipelineDepth::DEFAULT,
            ),
        };
        Some((opts, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let engines = [
            Engine::CpuSeq,
            Engine::CpuThreaded { threads: 4 },
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
            Engine::Gpu {
                layout: Layout::Pointer3d,
            },
            Engine::GpuTables,
            Engine::GpuPipelined,
            Engine::GpuMulti { devices: 4 },
            Engine::GpuCluster {
                nodes: 4,
                devices_per_node: 1,
            },
        ];
        let labels: Vec<String> = engines.iter().map(|e| e.label()).collect();
        for i in 0..labels.len() {
            for j in i + 1..labels.len() {
                assert_ne!(labels[i], labels[j]);
            }
        }
        assert!(!Engine::CpuSeq.is_gpu());
        assert!(Engine::GpuPipelined.is_gpu());
        assert!(Engine::GpuMulti { devices: 2 }.is_gpu());
        assert!(Engine::GpuCluster {
            nodes: 2,
            devices_per_node: 2
        }
        .is_gpu());
    }
}
