//! Command-line interface (`laue` binary): argument parsing and command
//! execution, kept in the library so both are unit-testable.
//!
//! ```text
//! laue generate    --out scan.mh5 [--rows N] [--cols N] [--steps N] …
//! laue reconstruct --input scan.mh5 [--engine E] [--out recon.mh5] …
//! laue validate    --input scan.mh5 [--engine E] …
//! laue inspect     <file.mh5>
//! ```

use std::collections::BTreeMap;

use cuda_sim::{FaultPlan, InterconnectProps};
use laue_core::gpu::Layout;
use laue_core::{
    AccumulationMode, CompactionMode, IntegrityMode, PlanMode, ReconstructionConfig,
    ReductionTopology,
};

use crate::engine::Engine;
use crate::{GpuFailurePolicy, Pipeline, PipelineError, Result};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Generate(GenerateArgs),
    Reconstruct(ReconstructArgs),
    Validate(ReconstructArgs),
    /// Reconstruct every `.mh5` scan in a directory, printing one summary
    /// row per file.
    Batch {
        dir: String,
        engine: Engine,
        args: ReconstructArgs,
    },
    Inspect {
        path: String,
    },
    Help,
}

/// Arguments of `laue generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    pub out: String,
    pub rows: usize,
    pub cols: usize,
    pub steps: usize,
    pub scatterers: usize,
    pub background: f64,
    pub noise: f64,
    pub seed: u64,
}

/// Arguments of `laue reconstruct` / `laue validate`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructArgs {
    pub input: String,
    pub out: Option<String>,
    pub histogram: Option<String>,
    pub trace: Option<String>,
    pub variance: Option<String>,
    pub engine: Engine,
    pub depth_start: f64,
    pub depth_end: f64,
    pub bins: usize,
    pub cutoff: f64,
    /// Sparsity pass: shadow culling + active-pair compaction
    /// (`--compaction off|auto|on`; default `off` = dense traversal).
    pub compaction: CompactionMode,
    /// GPU depth-intensity accumulation strategy
    /// (`--accumulation atomic|privatized|auto`; default `atomic` = the
    /// paper's CAS-loop `atomicAdd(double)`).
    pub accumulation: AccumulationMode,
    /// Execution planning (`--plan fixed|auto`; default `fixed`). Under
    /// `auto` the cost-model planner picks layout, table placement, ring
    /// depth, and slab rows, and resolves compaction/accumulation per slab.
    pub plan: PlanMode,
    /// End-to-end data-integrity policy
    /// (`--integrity off|verify|scrub`; default `off`).
    pub integrity: IntegrityMode,
    /// Launch-watchdog deadline multiplier (`--watchdog-multiplier`;
    /// `None` keeps the config default).
    pub watchdog_multiplier: Option<f64>,
    pub rows_per_slab: Option<usize>,
    /// Ring depth of the GPU transfer/compute pipeline (`--pipeline-depth`).
    pub pipeline_depth: Option<usize>,
    /// Device-resident depth-table cache budget, MiB (`--table-cache-mb`;
    /// 0 disables residency).
    pub table_cache_mb: Option<u64>,
    /// Simulated-kernel worker threads (`--sim-workers`, resolved at parse
    /// time: `0`/`auto` → the host's available parallelism). `None` keeps
    /// the deterministic sequential executor.
    pub sim_workers: Option<usize>,
    /// Detector region of interest: `(r0, c0, rows, cols)`.
    pub roi: Option<(usize, usize, usize, usize)>,
    /// What to do when a GPU engine fails unrecoverably.
    pub on_gpu_failure: GpuFailurePolicy,
    /// Scripted device-fault schedule (`--inject-gpu-fault`, testing only).
    pub inject_fault: Option<FaultPlan>,
    /// Journal directory for checkpointed GPU runs (`--journal-dir`).
    pub journal_dir: Option<String>,
    /// Replay an interrupted run's journal instead of starting fresh
    /// (`--resume`; needs `--journal-dir`).
    pub resume: bool,
    /// Install the fault schedule on this fleet device only
    /// (`--fault-device`, testing only; node-major flattened index for
    /// `gpu-cluster` engines).
    pub fault_device: Option<usize>,
    /// Inter-node reduction routing (`--reduction tree|ring|auto`;
    /// `None` = auto). Cluster engines only.
    pub reduction: Option<ReductionTopology>,
    /// Overlap the inter-node reduction with the compute tail
    /// (`--overlap on|off|auto`; `None` = auto). Cluster engines only.
    pub overlap: Option<bool>,
    /// Inter-node fabric preset (`--interconnect ib-qdr|ib-fdr|nvlink|
    /// gige`; default ib-qdr). Cluster engines only.
    pub interconnect: InterconnectProps,
}

/// Parse an engine name.
pub fn parse_engine(s: &str) -> std::result::Result<Engine, String> {
    if let Some(t) = s.strip_prefix("cpu-threaded:") {
        let threads: usize = t
            .parse()
            .map_err(|_| format!("bad thread count in engine {s:?}"))?;
        return Ok(Engine::CpuThreaded { threads });
    }
    if let Some(t) = s.strip_prefix("gpu-multi:") {
        let devices: usize = t
            .parse()
            .map_err(|_| format!("bad device count in engine {s:?}"))?;
        if devices == 0 {
            return Err(format!("engine {s:?} needs at least one device"));
        }
        return Ok(Engine::GpuMulti { devices });
    }
    if let Some(t) = s.strip_prefix("gpu-cluster:") {
        // N nodes of M devices each: `gpu-cluster:4` or `gpu-cluster:4x2`.
        let (n, m) = match t.split_once('x') {
            Some((n, m)) => (n, Some(m)),
            None => (t, None),
        };
        let nodes: usize = n
            .parse()
            .map_err(|_| format!("bad node count in engine {s:?}"))?;
        let devices_per_node: usize = match m {
            Some(m) => m
                .parse()
                .map_err(|_| format!("bad per-node device count in engine {s:?}"))?,
            None => 1,
        };
        if nodes == 0 || devices_per_node == 0 {
            return Err(format!(
                "engine {s:?} needs at least one node and one device per node"
            ));
        }
        return Ok(Engine::GpuCluster {
            nodes,
            devices_per_node,
        });
    }
    match s {
        "cpu" | "cpu-seq" => Ok(Engine::CpuSeq),
        "gpu" | "gpu-1d" => Ok(Engine::Gpu {
            layout: Layout::Flat1d,
        }),
        "gpu-3d" => Ok(Engine::Gpu {
            layout: Layout::Pointer3d,
        }),
        "gpu-tables" => Ok(Engine::GpuTables),
        "gpu-pipe" => Ok(Engine::GpuPipelined),
        other => Err(format!(
            "unknown engine {other:?} (try cpu, cpu-threaded:N, gpu-1d, gpu-3d, gpu-tables, \
             gpu-pipe, gpu-multi:N, gpu-cluster:N[xM])"
        )),
    }
}

/// Parse a `--sim-workers` value: a thread count, or `0`/`auto` for the
/// host's available parallelism.
pub fn parse_sim_workers(s: &str) -> std::result::Result<usize, String> {
    let n: usize = if s == "auto" {
        0
    } else {
        s.parse()
            .map_err(|_| format!("bad --sim-workers {s:?} (want a count, 0, or auto)"))?
    };
    Ok(if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    })
}

/// Parse a `--reduction` value: a routing topology, or `auto` to let the
/// plan mode decide (tree under `--plan fixed`, the cost model's argmin
/// under `--plan auto`).
pub fn parse_reduction(s: &str) -> std::result::Result<Option<ReductionTopology>, String> {
    if s == "auto" {
        return Ok(None);
    }
    ReductionTopology::parse(s)
        .map(Some)
        .ok_or_else(|| format!("bad --reduction {s:?} (try tree, ring, auto)"))
}

/// Parse an `--overlap` value: `on`, `off`, or `auto` (plan-mode decides).
pub fn parse_overlap(s: &str) -> std::result::Result<Option<bool>, String> {
    match s {
        "auto" => Ok(None),
        "on" => Ok(Some(true)),
        "off" => Ok(Some(false)),
        other => Err(format!("bad --overlap {other:?} (try on, off, auto)")),
    }
}

/// Parse an `--interconnect` preset name.
pub fn parse_interconnect(s: &str) -> std::result::Result<InterconnectProps, String> {
    InterconnectProps::by_name(s)
        .ok_or_else(|| format!("unknown --interconnect {s:?} (try ib-qdr, ib-fdr, nvlink, gige)"))
}

/// Parse an `--on-gpu-failure` policy name.
pub fn parse_gpu_failure_policy(s: &str) -> std::result::Result<GpuFailurePolicy, String> {
    match s {
        "abort" => Ok(GpuFailurePolicy::Abort),
        "fallback-cpu" => Ok(GpuFailurePolicy::FallbackCpu),
        other => Err(format!(
            "unknown GPU failure policy {other:?} (try abort, fallback-cpu)"
        )),
    }
}

/// Parse an `--inject-gpu-fault` schedule: comma-separated `key=value`
/// items, e.g. `seed=7,alloc-nth=1,h2d-prob=0.1,free-mem=1048576`.
pub fn parse_fault_plan(spec: &str) -> std::result::Result<FaultPlan, String> {
    let mut plan = FaultPlan::new(0);
    for item in spec.split(',') {
        let Some((key, value)) = item.split_once('=') else {
            return Err(format!(
                "--inject-gpu-fault wants comma-separated key=value items, got {item:?}"
            ));
        };
        let num = || -> std::result::Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("bad --inject-gpu-fault {key}: {value:?}"))
        };
        let prob = || -> std::result::Result<f64, String> {
            let p: f64 = value
                .parse()
                .map_err(|_| format!("bad --inject-gpu-fault {key}: {value:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "--inject-gpu-fault {key} wants a probability in [0, 1], got {value}"
                ));
            }
            Ok(p)
        };
        plan = match key {
            "seed" => FaultPlan {
                seed: num()?,
                ..plan
            },
            "alloc-nth" => plan.fail_nth_alloc(num()?),
            "h2d-nth" => plan.fail_nth_h2d(num()?),
            "d2h-nth" => plan.fail_nth_d2h(num()?),
            "h2d-prob" => plan.h2d_fault_rate(prob()?),
            "d2h-prob" => plan.d2h_fault_rate(prob()?),
            "free-mem" => plan.report_mem_bytes(num()?),
            "dead-after" => plan.fail_after(num()?),
            "dead-after-launches" => plan.fail_after_launches(num()?),
            "flip-h2d-nth" => plan.flip_nth_h2d(num()?),
            "flip-d2h-nth" => plan.flip_nth_d2h(num()?),
            "flip-byte" => plan.flip_byte_offset(num()?),
            "flip-kernel-nth" => plan.flip_nth_kernel(num()?),
            "flip-op" => plan.flip_op_index(num()?),
            "stall-nth" => FaultPlan {
                stuck_kernel_nth: Some(num()?),
                ..plan
            },
            "stall-s" => {
                let s: f64 = value
                    .parse()
                    .map_err(|_| format!("bad --inject-gpu-fault {key}: {value:?}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!(
                        "--inject-gpu-fault {key} wants a positive duration, got {value}"
                    ));
                }
                FaultPlan { stall_s: s, ..plan }
            }
            other => {
                return Err(format!(
                    "unknown --inject-gpu-fault key {other:?} (try seed, alloc-nth, \
                     h2d-nth, d2h-nth, h2d-prob, d2h-prob, free-mem, dead-after, \
                     dead-after-launches, flip-h2d-nth, flip-d2h-nth, flip-byte, \
                     flip-kernel-nth, flip-op, stall-nth, stall-s)"
                ))
            }
        };
    }
    if plan.stuck_kernel_nth.is_some() && plan.stall_s <= 0.0 {
        return Err("--inject-gpu-fault stall-nth needs stall-s=<seconds>".into());
    }
    Ok(plan)
}

/// Flags that take no value; they parse to `"true"`.
const VALUELESS_FLAGS: &[&str] = &["resume"];

/// Split `--key value` pairs (and bare boolean flags, see
/// [`VALUELESS_FLAGS`]); positional arguments keep their order.
fn split_flags(
    args: &[String],
) -> std::result::Result<(BTreeMap<String, String>, Vec<String>), String> {
    let mut flags = BTreeMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = if VALUELESS_FLAGS.contains(&key) {
                i += 1;
                "true".to_string()
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                i += 2;
                value.clone()
            };
            if flags.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    Ok((flags, positional))
}

fn get_parse<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> std::result::Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: {v:?}")),
    }
}

fn reject_unknown(
    flags: &BTreeMap<String, String>,
    allowed: &[&str],
) -> std::result::Result<(), String> {
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown flag --{key}"));
        }
    }
    Ok(())
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> std::result::Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "generate" => {
            let (flags, positional) = split_flags(rest)?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument {:?}", positional[0]));
            }
            reject_unknown(
                &flags,
                &[
                    "out",
                    "rows",
                    "cols",
                    "steps",
                    "scatterers",
                    "background",
                    "noise",
                    "seed",
                ],
            )?;
            let out = flags
                .get("out")
                .ok_or("generate needs --out <file>")?
                .clone();
            Ok(Command::Generate(GenerateArgs {
                out,
                rows: get_parse(&flags, "rows", 32)?,
                cols: get_parse(&flags, "cols", 32)?,
                steps: get_parse(&flags, "steps", 32)?,
                scatterers: get_parse(&flags, "scatterers", 24)?,
                background: get_parse(&flags, "background", 10.0)?,
                noise: get_parse(&flags, "noise", 0.0)?,
                seed: get_parse(&flags, "seed", 0)?,
            }))
        }
        "batch" => {
            let (flags, positional) = split_flags(rest)?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument {:?}", positional[0]));
            }
            reject_unknown(
                &flags,
                &[
                    "dir",
                    "engine",
                    "depth-start",
                    "depth-end",
                    "bins",
                    "cutoff",
                ],
            )?;
            let dir = flags
                .get("dir")
                .ok_or("batch needs --dir <directory>")?
                .clone();
            let engine = match flags.get("engine") {
                None => Engine::Gpu {
                    layout: Layout::Flat1d,
                },
                Some(e) => parse_engine(e)?,
            };
            let args = ReconstructArgs {
                input: String::new(),
                out: None,
                histogram: None,
                trace: None,
                variance: None,
                engine,
                depth_start: get_parse(&flags, "depth-start", -4000.0)?,
                depth_end: get_parse(&flags, "depth-end", 4000.0)?,
                bins: get_parse(&flags, "bins", 400)?,
                cutoff: get_parse(&flags, "cutoff", 0.0)?,
                compaction: CompactionMode::default(),
                accumulation: AccumulationMode::default(),
                plan: PlanMode::default(),
                integrity: IntegrityMode::default(),
                watchdog_multiplier: None,
                rows_per_slab: None,
                pipeline_depth: None,
                table_cache_mb: None,
                sim_workers: None,
                roi: None,
                on_gpu_failure: GpuFailurePolicy::default(),
                inject_fault: None,
                journal_dir: None,
                resume: false,
                fault_device: None,
                reduction: None,
                overlap: None,
                interconnect: InterconnectProps::ib_qdr(),
            };
            Ok(Command::Batch { dir, engine, args })
        }
        "reconstruct" | "validate" => {
            let (flags, positional) = split_flags(rest)?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument {:?}", positional[0]));
            }
            reject_unknown(
                &flags,
                &[
                    "input",
                    "out",
                    "histogram",
                    "trace",
                    "variance",
                    "engine",
                    "depth-start",
                    "depth-end",
                    "bins",
                    "cutoff",
                    "compaction",
                    "accumulation",
                    "plan",
                    "integrity",
                    "watchdog-multiplier",
                    "rows-per-slab",
                    "pipeline-depth",
                    "table-cache-mb",
                    "sim-workers",
                    "roi",
                    "on-gpu-failure",
                    "inject-gpu-fault",
                    "journal-dir",
                    "resume",
                    "fault-device",
                    "reduction",
                    "overlap",
                    "interconnect",
                ],
            )?;
            let input = flags
                .get("input")
                .ok_or(format!("{cmd} needs --input <file>"))?
                .clone();
            let engine = match flags.get("engine") {
                None => Engine::Gpu {
                    layout: Layout::Flat1d,
                },
                Some(e) => parse_engine(e)?,
            };
            let roi = match flags.get("roi") {
                None => None,
                Some(spec) => {
                    let parts: Vec<usize> = spec
                        .split(':')
                        .map(|t| t.parse().map_err(|_| format!("bad --roi component {t:?}")))
                        .collect::<std::result::Result<_, String>>()?;
                    let [r0, c0, rows, cols] = parts.as_slice() else {
                        return Err(format!("--roi wants r0:c0:rows:cols, got {spec:?}"));
                    };
                    Some((*r0, *c0, *rows, *cols))
                }
            };
            let args = ReconstructArgs {
                input,
                out: flags.get("out").cloned(),
                histogram: flags.get("histogram").cloned(),
                trace: flags.get("trace").cloned(),
                variance: flags.get("variance").cloned(),
                engine,
                depth_start: get_parse(&flags, "depth-start", -4000.0)?,
                depth_end: get_parse(&flags, "depth-end", 4000.0)?,
                bins: get_parse(&flags, "bins", 400)?,
                cutoff: get_parse(&flags, "cutoff", 0.0)?,
                compaction: match flags.get("compaction") {
                    None => CompactionMode::default(),
                    Some(s) => CompactionMode::parse(s)
                        .ok_or_else(|| format!("bad --compaction {s:?} (try off, auto, on)"))?,
                },
                accumulation: match flags.get("accumulation") {
                    None => AccumulationMode::default(),
                    Some(s) => AccumulationMode::parse(s).ok_or_else(|| {
                        format!("bad --accumulation {s:?} (try atomic, privatized, auto)")
                    })?,
                },
                plan: match flags.get("plan") {
                    None => PlanMode::default(),
                    Some(s) => PlanMode::parse(s)
                        .ok_or_else(|| format!("bad --plan {s:?} (try fixed, auto)"))?,
                },
                integrity: match flags.get("integrity") {
                    None => IntegrityMode::default(),
                    Some(s) => IntegrityMode::parse(s)
                        .ok_or_else(|| format!("bad --integrity {s:?} (try off, verify, scrub)"))?,
                },
                watchdog_multiplier: flags
                    .get("watchdog-multiplier")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("bad --watchdog-multiplier: {v:?}"))
                    })
                    .transpose()?,
                rows_per_slab: flags
                    .get("rows-per-slab")
                    .map(|v| v.parse().map_err(|_| format!("bad --rows-per-slab: {v:?}")))
                    .transpose()?,
                pipeline_depth: flags
                    .get("pipeline-depth")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("bad --pipeline-depth: {v:?}"))
                    })
                    .transpose()?,
                table_cache_mb: flags
                    .get("table-cache-mb")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("bad --table-cache-mb: {v:?}"))
                    })
                    .transpose()?,
                sim_workers: flags
                    .get("sim-workers")
                    .map(|v| parse_sim_workers(v))
                    .transpose()?,
                roi,
                on_gpu_failure: match flags.get("on-gpu-failure") {
                    None => GpuFailurePolicy::default(),
                    Some(s) => parse_gpu_failure_policy(s)?,
                },
                inject_fault: flags
                    .get("inject-gpu-fault")
                    .map(|s| parse_fault_plan(s))
                    .transpose()?,
                journal_dir: flags.get("journal-dir").cloned(),
                resume: flags.contains_key("resume"),
                fault_device: flags
                    .get("fault-device")
                    .map(|v| v.parse().map_err(|_| format!("bad --fault-device: {v:?}")))
                    .transpose()?,
                reduction: match flags.get("reduction") {
                    None => None,
                    Some(s) => parse_reduction(s)?,
                },
                overlap: match flags.get("overlap") {
                    None => None,
                    Some(s) => parse_overlap(s)?,
                },
                interconnect: match flags.get("interconnect") {
                    None => InterconnectProps::ib_qdr(),
                    Some(s) => parse_interconnect(s)?,
                },
            };
            if args.resume && args.journal_dir.is_none() {
                return Err("--resume needs --journal-dir".into());
            }
            if cmd == "reconstruct" {
                Ok(Command::Reconstruct(args))
            } else {
                Ok(Command::Validate(args))
            }
        }
        "inspect" => {
            let (flags, positional) = split_flags(rest)?;
            reject_unknown(&flags, &[])?;
            match positional.as_slice() {
                [path] => Ok(Command::Inspect { path: path.clone() }),
                _ => Err("inspect takes exactly one file".into()),
            }
        }
        other => Err(format!("unknown command {other:?} (try help)")),
    }
}

/// The help text.
pub const HELP: &str = "\
laue — wire-scan Laue depth reconstruction (CLUSTER 2015 reproduction)

USAGE:
  laue generate    --out <scan.mh5> [--rows N] [--cols N] [--steps N]
                   [--scatterers K] [--background B] [--noise X] [--seed S]
  laue reconstruct --input <scan.mh5> [--engine E] [--out <recon.mh5>]
                   [--histogram <file.txt>] [--trace <trace.json>]
                   [--variance <sigma.mh5>] [--roi r0:c0:rows:cols]
                   [--depth-start UM] [--depth-end UM] [--bins N]
                   [--cutoff C] [--compaction off|auto|on]
                   [--accumulation atomic|privatized|auto]
                   [--plan fixed|auto]
                   [--integrity off|verify|scrub] [--watchdog-multiplier X]
                   [--rows-per-slab R] [--pipeline-depth K]
                   [--table-cache-mb M] [--sim-workers N|0|auto]
                   [--on-gpu-failure abort|fallback-cpu]
                   [--inject-gpu-fault k=v,…] [--fault-device I]
                   [--journal-dir <dir>] [--resume]
                   [--interconnect ib-qdr|ib-fdr|nvlink|gige]
                   [--reduction tree|ring|auto] [--overlap on|off|auto]
  laue validate    --input <scan.mh5> [same options as reconstruct]
  laue batch       --dir <directory> [--engine E] [--depth-start/-end UM]
                   [--bins N] [--cutoff C]
  laue inspect     <file.mh5>

ENGINES:
  cpu | cpu-threaded:N | gpu-1d | gpu-3d | gpu-tables | gpu-pipe | gpu-multi:N
  | gpu-cluster:N[xM]
  (cpu-threaded:0 = one thread per available host core; gpu-cluster runs N
  chassis of M devices each — M defaults to 1 — joined by a metered fabric)

SPARSITY:
  --compaction off    dense traversal: every (pixel, pair) visited (default)
  --compaction on     wire-shadow row culling plus a prescan that compacts
                      the work-list to pairs with |ΔI| above the cutoff;
                      output stays bit-identical to the dense path
  --compaction auto   per-slab: prescan, then launch compact only when the
                      cost model prices the compacted launch cheaper

ACCUMULATION:
  --accumulation atomic      per-deposit CAS-loop atomicAdd(double) on device
                             memory — the paper's scheme (default)
  --accumulation privatized  per-block depth-bin tiles in shared memory,
                             committed by one global add per touched
                             (pixel, bin) cell; slabs whose tile exceeds the
                             device's shared memory fall back to atomic;
                             output stays bit-identical to the atomic path
  --accumulation auto        per-slab: privatize when the cost model prices
                             the tiled kernel cheaper than the atomic one

PLANNER:
  --plan fixed  honour the configured engine/flags verbatim (default)
  --plan auto   single-GPU engines: enumerate layout × table placement ×
                ring depth × slab rows, predict each candidate's virtual
                cost with the device's calibrated cost model, and run the
                argmin; compaction and accumulation resolve per slab by the
                same model. The chosen plan, its predicted cost, and the
                prediction error land in the run report's plan block. The
                resolved plan is part of the journal key: a flip forces a
                clean restart. CPU and gpu-multi engines ignore --plan auto
                (per-slab autos still apply on gpu-multi).

CHECKPOINT / RESUME:
  --journal-dir <dir>  journal every committed GPU slab under <dir>; an
                       interrupted run leaves the journal behind
  --resume             replay the journal of an interrupted run with the
                       same scan/config/engine and recompute only the
                       remaining slabs (bit-identical to an uninterrupted
                       run; needs --journal-dir)

GPU PIPELINE:
  --pipeline-depth K   ring depth: slab slots in flight (1 = serial;
                       gpu-pipe defaults to 3, other GPU engines to 1)
  --table-cache-mb M   device-resident depth-table budget in MiB
                       (default: a quarter of device memory; 0 disables)
  --sim-workers N      simulated-kernel worker threads (0 or auto = all
                       host cores; default: deterministic sequential)

DATA INTEGRITY:
  --integrity off     no checking (default); silent corruption propagates
  --integrity verify  CRC64-checksummed transfers, ABFT per-slab depth-sum
                      verification against a host recompute, and a launch
                      watchdog; a detected corruption aborts the run
  --integrity scrub   verify, plus recovery: the condemned slab is poisoned
                      in the journal and re-executed with backoff (host
                      repair if the device keeps corrupting); the run
                      completes bit-identical to a fault-free run and is
                      marked INTEGRITY-DEGRADED when anything was corrected
  --watchdog-multiplier X  treat a launch slower than X times its cost-model
                      prediction as hung (default 4)

CLUSTER (gpu-cluster:N[xM]):
  --interconnect P     fabric preset joining the nodes: ib-qdr (default),
                       ib-fdr, nvlink, or gige; each link is a metered
                       shared resource, so concurrent reduction segments
                       queue and the wait lands in the run report
  --reduction T        inter-node depth-image routing: tree (hierarchical
                       gather, default under --plan fixed), ring (neighbour
                       relay — less head-link pressure on big clusters), or
                       auto (the cost model picks; implies pricing both)
  --overlap V          on (default) starts each node's reduction sends as
                       soon as its band is done, overlapping the fabric
                       with the compute tail of slower nodes; off inserts
                       a barrier first; auto defers to the cost model
  Under --plan auto the planner sweeps node count × topology × overlap and
  reports the full candidate table. The resolved topology is part of the
  journal key; node loss re-bands remaining rows onto survivors and the
  run completes DEGRADED but bit-identical.

GPU FAULT HANDLING:
  --on-gpu-failure abort         surface GPU errors (default)
  --on-gpu-failure fallback-cpu  re-run on the CPU engine and mark the
                                 run report DEGRADED
  --inject-gpu-fault             scripted fault schedule for testing:
                                 comma-separated key=value with keys
                                 seed, alloc-nth, h2d-nth, d2h-nth,
                                 h2d-prob, d2h-prob, free-mem, dead-after,
                                 dead-after-launches, and silent-corruption
                                 keys flip-h2d-nth, flip-d2h-nth, flip-byte,
                                 flip-kernel-nth, flip-op, stall-nth, stall-s
  --fault-device I               install the schedule on fleet device I
                                 only (gpu-multi failover testing)
";

fn recon_config(args: &ReconstructArgs) -> ReconstructionConfig {
    let mut cfg = ReconstructionConfig::new(args.depth_start, args.depth_end, args.bins);
    cfg.intensity_cutoff = args.cutoff;
    cfg.compaction = args.compaction;
    cfg.accumulation = args.accumulation;
    cfg.plan = args.plan;
    cfg.integrity = args.integrity;
    if let Some(w) = args.watchdog_multiplier {
        cfg.watchdog_multiplier = w;
    }
    cfg.rows_per_slab = args.rows_per_slab;
    cfg.pipeline_depth = args.pipeline_depth;
    cfg
}

fn recon_pipeline(args: &ReconstructArgs) -> Pipeline {
    Pipeline {
        on_gpu_failure: args.on_gpu_failure,
        fault_plan: args.inject_fault.clone(),
        exec_mode: match args.sim_workers {
            Some(n) => cuda_sim::ExecMode::Threaded(n),
            None => cuda_sim::ExecMode::Sequential,
        },
        table_cache_mb: args.table_cache_mb,
        journal_dir: args.journal_dir.clone().map(std::path::PathBuf::from),
        resume: args.resume,
        fault_device: args.fault_device,
        reduction: args.reduction,
        overlap: args.overlap,
        interconnect: args.interconnect.clone(),
        ..Pipeline::default()
    }
}

/// Execute a parsed command, writing human output to `out`.
pub fn run<W: std::io::Write>(cmd: &Command, out: &mut W) -> Result<()> {
    match cmd {
        Command::Help => {
            write!(out, "{HELP}")?;
            Ok(())
        }
        Command::Generate(a) => {
            let scan = laue_wire::SyntheticScanBuilder::new(a.rows, a.cols, a.steps)
                .scatterers(a.scatterers)
                .background(a.background)
                .noise(a.noise)
                .seed(a.seed)
                .build()?;
            laue_wire::write_scan(&a.out, &scan.geometry, &scan.images, Some(&scan.truth), 8)?;
            let bytes = std::fs::metadata(&a.out).map(|m| m.len()).unwrap_or(0);
            writeln!(
                out,
                "wrote {} ({} images of {}×{}, {} scatterers, {} bytes)",
                a.out,
                a.steps,
                a.rows,
                a.cols,
                scan.truth.len(),
                bytes
            )?;
            Ok(())
        }
        Command::Reconstruct(a) => {
            let cfg = recon_config(a);
            let pipeline = recon_pipeline(a);
            let fingerprint = crate::run::file_fingerprint(&a.input)?;
            let mut scan = laue_wire::ScanFile::open(&a.input)?;
            let geometry = scan.geometry().clone();
            let report = match a.roi {
                None => pipeline.run_source_keyed(
                    &mut scan,
                    &geometry,
                    &cfg,
                    a.engine,
                    Some(fingerprint),
                )?,
                Some((r0, c0, rows, cols)) => {
                    let roi_geom = geometry.crop(r0, c0, rows, cols)?;
                    let mut roi = laue_core::input::RoiSlabSource::new(scan, r0, c0, rows, cols)?;
                    pipeline.run_source_keyed(
                        &mut roi,
                        &roi_geom,
                        &cfg,
                        a.engine,
                        Some(fingerprint),
                    )?
                }
            };
            writeln!(out, "{}", report.summary())?;
            if let Some(path) = &a.out {
                crate::export::write_mh5(path, &report, &cfg)?;
                writeln!(out, "wrote {path}")?;
            }
            if let Some(path) = &a.histogram {
                let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
                crate::export::write_histogram_text(&mut f, &report.image, &cfg)?;
                writeln!(out, "wrote {path}")?;
            }
            if let Some(path) = &a.variance {
                // Variance runs the sequential CPU path (exact propagation).
                let mut scan = laue_wire::ScanFile::open(&a.input)?;
                let geometry = scan.geometry().clone();
                let (geom_v, stack) = match a.roi {
                    None => {
                        let rows = geometry.detector.n_rows;
                        (
                            geometry.clone(),
                            laue_core::SlabSource::read_slab(&mut scan, 0, rows)?,
                        )
                    }
                    Some((r0, c0, rows, cols)) => {
                        let g = geometry.crop(r0, c0, rows, cols)?;
                        let mut roi =
                            laue_core::input::RoiSlabSource::new(scan, r0, c0, rows, cols)?;
                        let slab = laue_core::SlabSource::read_slab(&mut roi, 0, rows)?;
                        (g, slab)
                    }
                };
                let view = laue_core::ScanView::new(
                    &stack,
                    geom_v.wire.n_steps,
                    geom_v.detector.n_rows,
                    geom_v.detector.n_cols,
                )?;
                let var = laue_core::uncertainty::reconstruct_with_variance(&view, &geom_v, &cfg)?;
                let var_report = crate::report::RunReport {
                    engine: "variance(cpu-seq)".into(),
                    image: var.variance,
                    stats: var.stats,
                    total_time_s: 0.0,
                    comm_time_s: 0.0,
                    bus_wait_s: 0.0,
                    host_table_time_s: 0.0,
                    compute_time_s: 0.0,
                    input_bytes: report.input_bytes,
                    dims: report.dims,
                    rows_per_slab: 0,
                    n_slabs: 0,
                    transfers: 0,
                    gpu_replans: 0,
                    gpu_transfer_retries: 0,
                    pipeline_depth: 0,
                    table_cache: laue_core::cache::TableCacheStats::default(),
                    slab_densities: Vec::new(),
                    slab_privatized: Vec::new(),
                    plan: None,
                    fallback: None,
                    recovery: crate::report::RecoveryAccounting::default(),
                    integrity: laue_core::IntegrityReport::default(),
                    faults_injected: None,
                    trace_dropped: 0,
                    cluster: None,
                };
                crate::export::write_mh5(path, &var_report, &cfg)?;
                writeln!(out, "wrote {path} (per-bin variance; σ = sqrt)")?;
            }
            if let Some(path) = &a.trace {
                // Re-run the engine's own schedule (layout, ring depth) on a
                // dedicated device to capture the op timeline.
                if let Some((opts, depth)) = a.engine.gpu_plan() {
                    let device = cuda_sim::Device::new(pipeline.device.clone());
                    let mut scan = laue_wire::ScanFile::open(&a.input)?;
                    let geometry = scan.geometry().clone();
                    laue_core::gpu::reconstruct_pipelined(
                        &device, &mut scan, &geometry, &cfg, opts, depth, None,
                    )?;
                    std::fs::write(path, device.export_chrome_trace())?;
                    writeln!(out, "wrote {path} (open in chrome://tracing)")?;
                } else {
                    writeln!(out, "--trace only applies to GPU engines; skipped")?;
                }
            }
            Ok(())
        }
        Command::Validate(a) => {
            let cfg = recon_config(a);
            let pipeline = recon_pipeline(a);
            let scan = laue_wire::ScanFile::open(&a.input)?;
            let Some(truth) = scan.truth().cloned() else {
                return Err(PipelineError::Wire(laue_wire::WireError::MissingField(
                    "/entry/truth (validate needs a synthetic scan)".into(),
                )));
            };
            let step = scan.geometry().wire.step.norm();
            let report = pipeline.run_scan_file(&a.input, &cfg, a.engine)?;
            let tol = 2.0 * step + 2.0 * cfg.bin_width();
            let mut recovered = 0usize;
            let mut worst: f64 = 0.0;
            for s in &truth.scatterers {
                if let Some(p) = report.image.pixel_peak_depth(s.row, s.col, &cfg) {
                    let err = (p - s.depth).abs();
                    if err <= tol {
                        recovered += 1;
                        worst = worst.max(err);
                    }
                }
            }
            writeln!(out, "{}", report.summary())?;
            writeln!(
                out,
                "validation: {recovered}/{} scatterers recovered within ±{tol:.1} µm \
                 (worst accepted error {worst:.1} µm)",
                truth.len()
            )?;
            Ok(())
        }
        Command::Batch { dir, engine, args } => {
            let cfg = recon_config(args);
            let pipeline = Pipeline::default();
            let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "mh5"))
                .collect();
            paths.sort();
            if paths.is_empty() {
                writeln!(out, "no .mh5 files in {dir}")?;
                return Ok(());
            }
            writeln!(
                out,
                "{:<32} {:>14} {:>12} {:>12} {:>9}",
                "file", "stack", "total (ms)", "xfer (ms)", "active"
            )?;
            let mut failures = 0usize;
            for path in &paths {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().to_string())
                    .unwrap_or_default();
                match pipeline.run_scan_file(path, &cfg, *engine) {
                    Ok(r) => {
                        let (p, m, n) = r.dims;
                        writeln!(
                            out,
                            "{name:<32} {:>14} {:>12.3} {:>12.3} {:>8.1}%",
                            format!("{p}×{m}×{n}"),
                            r.total_time_s * 1e3,
                            r.comm_time_s * 1e3,
                            100.0 * r.stats.active_fraction(),
                        )?;
                    }
                    Err(e) => {
                        failures += 1;
                        writeln!(out, "{name:<32} ERROR: {e}")?;
                    }
                }
            }
            writeln!(out, "{} file(s), {failures} failure(s)", paths.len())?;
            Ok(())
        }
        Command::Inspect { path } => {
            let reader = mh5::FileReader::open(path)?;
            write!(out, "{}", mh5::tools::dump_tree(&reader)?)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!(parse_engine("cpu").unwrap(), Engine::CpuSeq);
        assert_eq!(
            parse_engine("cpu-threaded:4").unwrap(),
            Engine::CpuThreaded { threads: 4 }
        );
        // 0 is "one thread per available core", resolved inside the
        // pipeline so the report and journal see the real count.
        assert_eq!(
            parse_engine("cpu-threaded:0").unwrap(),
            Engine::CpuThreaded { threads: 0 }
        );
        assert_eq!(
            parse_engine("gpu").unwrap(),
            Engine::Gpu {
                layout: Layout::Flat1d
            }
        );
        assert_eq!(
            parse_engine("gpu-3d").unwrap(),
            Engine::Gpu {
                layout: Layout::Pointer3d
            }
        );
        assert_eq!(parse_engine("gpu-tables").unwrap(), Engine::GpuTables);
        assert_eq!(parse_engine("gpu-pipe").unwrap(), Engine::GpuPipelined);
        assert!(parse_engine("tpu").is_err());
        assert!(
            parse_engine("gpu-overlap").is_err(),
            "superseded by gpu-pipe"
        );
        assert!(parse_engine("cpu-threaded:x").is_err());
    }

    #[test]
    fn cluster_engine_names_parse() {
        assert_eq!(
            parse_engine("gpu-cluster:3").unwrap(),
            Engine::GpuCluster {
                nodes: 3,
                devices_per_node: 1
            }
        );
        assert_eq!(
            parse_engine("gpu-cluster:4x2").unwrap(),
            Engine::GpuCluster {
                nodes: 4,
                devices_per_node: 2
            }
        );
        assert!(parse_engine("gpu-cluster:0").is_err());
        assert!(parse_engine("gpu-cluster:2x0").is_err());
        assert!(parse_engine("gpu-cluster:").is_err());
        assert!(parse_engine("gpu-cluster:2xtwo").is_err());
    }

    #[test]
    fn cluster_flags_parse() {
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            "scan.mh5",
            "--engine",
            "gpu-cluster:4x2",
            "--reduction",
            "ring",
            "--overlap",
            "off",
            "--interconnect",
            "nvlink",
        ]))
        .unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(
            a.engine,
            Engine::GpuCluster {
                nodes: 4,
                devices_per_node: 2
            }
        );
        assert_eq!(a.reduction, Some(ReductionTopology::Ring));
        assert_eq!(a.overlap, Some(false));
        assert_eq!(a.interconnect.name, "nvlink");

        // Absent flags: auto topology/overlap over the default fabric.
        let cmd = parse(&sv(&["reconstruct", "--input", "scan.mh5"])).unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.reduction, None);
        assert_eq!(a.overlap, None);
        assert_eq!(a.interconnect, InterconnectProps::ib_qdr());

        // "auto" is the explicit spelling of the default.
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            "scan.mh5",
            "--reduction",
            "auto",
            "--overlap",
            "auto",
        ]))
        .unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.reduction, None);
        assert_eq!(a.overlap, None);

        // Bad values are parse errors that name the flag.
        assert!(
            parse(&sv(&["reconstruct", "--input", "x", "--reduction", "star"]))
                .unwrap_err()
                .contains("--reduction")
        );
        assert!(
            parse(&sv(&["reconstruct", "--input", "x", "--overlap", "maybe"]))
                .unwrap_err()
                .contains("--overlap")
        );
        assert!(parse(&sv(&[
            "reconstruct",
            "--input",
            "x",
            "--interconnect",
            "ethernet"
        ]))
        .unwrap_err()
        .contains("--interconnect"));
    }

    #[test]
    fn pipeline_and_worker_flags_parse() {
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            "scan.mh5",
            "--engine",
            "gpu-pipe",
            "--pipeline-depth",
            "4",
            "--table-cache-mb",
            "64",
            "--sim-workers",
            "3",
        ]))
        .unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.engine, Engine::GpuPipelined);
        assert_eq!(a.pipeline_depth, Some(4));
        assert_eq!(a.table_cache_mb, Some(64));
        assert_eq!(a.sim_workers, Some(3));

        // 0 and auto resolve to the host's parallelism, at least one thread.
        assert!(parse_sim_workers("auto").unwrap() >= 1);
        assert_eq!(
            parse_sim_workers("auto").unwrap(),
            parse_sim_workers("0").unwrap()
        );
        assert!(parse_sim_workers("four").is_err());

        // Absent flags keep the deterministic defaults.
        let cmd = parse(&sv(&["reconstruct", "--input", "scan.mh5"])).unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.pipeline_depth, None);
        assert_eq!(a.table_cache_mb, None);
        assert_eq!(a.sim_workers, None);
        assert!(parse(&sv(&[
            "reconstruct",
            "--input",
            "x",
            "--pipeline-depth",
            "deep"
        ]))
        .unwrap_err()
        .contains("pipeline-depth"));
    }

    #[test]
    fn compaction_flag_parses() {
        for (spec, mode) in [
            ("off", CompactionMode::Off),
            ("auto", CompactionMode::Auto),
            ("on", CompactionMode::On),
        ] {
            let cmd = parse(&sv(&[
                "reconstruct",
                "--input",
                "scan.mh5",
                "--compaction",
                spec,
            ]))
            .unwrap();
            let Command::Reconstruct(a) = cmd else {
                panic!("wrong command")
            };
            assert_eq!(a.compaction, mode);
            assert_eq!(recon_config(&a).compaction, mode);
        }

        // Default stays dense; bad values are parse errors.
        let cmd = parse(&sv(&["validate", "--input", "scan.mh5"])).unwrap();
        let Command::Validate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.compaction, CompactionMode::Off);
        assert!(parse(&sv(&[
            "reconstruct",
            "--input",
            "x",
            "--compaction",
            "dense"
        ]))
        .unwrap_err()
        .contains("--compaction"));
    }

    #[test]
    fn accumulation_flag_parses() {
        for (spec, mode) in [
            ("atomic", AccumulationMode::Atomic),
            ("privatized", AccumulationMode::Privatized),
            ("auto", AccumulationMode::Auto),
        ] {
            let cmd = parse(&sv(&[
                "reconstruct",
                "--input",
                "scan.mh5",
                "--accumulation",
                spec,
            ]))
            .unwrap();
            let Command::Reconstruct(a) = cmd else {
                panic!("wrong command")
            };
            assert_eq!(a.accumulation, mode);
            assert_eq!(recon_config(&a).accumulation, mode);
        }

        // Default stays atomic; bad values are parse errors.
        let cmd = parse(&sv(&["validate", "--input", "scan.mh5"])).unwrap();
        let Command::Validate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.accumulation, AccumulationMode::Atomic);
        assert!(parse(&sv(&[
            "reconstruct",
            "--input",
            "x",
            "--accumulation",
            "shared"
        ]))
        .unwrap_err()
        .contains("--accumulation"));
    }

    #[test]
    fn plan_flag_parses() {
        for (spec, mode) in [("fixed", PlanMode::Fixed), ("auto", PlanMode::Auto)] {
            let cmd = parse(&sv(&["reconstruct", "--input", "scan.mh5", "--plan", spec])).unwrap();
            let Command::Reconstruct(a) = cmd else {
                panic!("wrong command")
            };
            assert_eq!(a.plan, mode);
            assert_eq!(recon_config(&a).plan, mode);
        }

        // Default stays fixed; bad values are parse errors.
        let cmd = parse(&sv(&["validate", "--input", "scan.mh5"])).unwrap();
        let Command::Validate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.plan, PlanMode::Fixed);
        assert!(
            parse(&sv(&["reconstruct", "--input", "x", "--plan", "best"]))
                .unwrap_err()
                .contains("--plan")
        );
    }

    #[test]
    fn integrity_flags_parse() {
        for (spec, mode) in [
            ("off", IntegrityMode::Off),
            ("verify", IntegrityMode::Verify),
            ("scrub", IntegrityMode::Scrub),
        ] {
            let cmd = parse(&sv(&[
                "reconstruct",
                "--input",
                "scan.mh5",
                "--integrity",
                spec,
                "--watchdog-multiplier",
                "6.5",
            ]))
            .unwrap();
            let Command::Reconstruct(a) = cmd else {
                panic!("wrong command")
            };
            assert_eq!(a.integrity, mode);
            assert_eq!(a.watchdog_multiplier, Some(6.5));
            let cfg = recon_config(&a);
            assert_eq!(cfg.integrity, mode);
            assert_eq!(cfg.watchdog_multiplier, 6.5);
        }

        // Defaults: off, config-default watchdog.
        let cmd = parse(&sv(&["reconstruct", "--input", "scan.mh5"])).unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.integrity, IntegrityMode::Off);
        assert_eq!(a.watchdog_multiplier, None);
        assert!(parse(&sv(&[
            "reconstruct",
            "--input",
            "x",
            "--integrity",
            "paranoid"
        ]))
        .unwrap_err()
        .contains("--integrity"));

        // Silent-corruption fault keys round-trip into the plan.
        let plan = parse_fault_plan(
            "seed=9,flip-h2d-nth=2,flip-d2h-nth=3,flip-byte=17,\
             flip-kernel-nth=1,flip-op=5,stall-nth=2,stall-s=0.5",
        )
        .unwrap();
        assert_eq!(plan.flip_h2d_nth, Some(2));
        assert_eq!(plan.flip_d2h_nth, Some(3));
        assert_eq!(plan.flip_byte, 17);
        assert_eq!(plan.flip_kernel_nth, Some(1));
        assert_eq!(plan.flip_op, 5);
        assert_eq!(plan.stuck_kernel_nth, Some(2));
        assert_eq!(plan.stall_s, 0.5);
        assert!(plan.is_active());
        assert!(parse_fault_plan("stall-nth=2")
            .unwrap_err()
            .contains("stall-s"));
        assert!(parse_fault_plan("stall-nth=2,stall-s=-1")
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn generate_parses_with_defaults() {
        let cmd = parse(&sv(&[
            "generate", "--out", "x.mh5", "--rows", "8", "--seed", "9",
        ]))
        .unwrap();
        let Command::Generate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.out, "x.mh5");
        assert_eq!(a.rows, 8);
        assert_eq!(a.cols, 32, "default");
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn reconstruct_parses() {
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            "scan.mh5",
            "--engine",
            "gpu-3d",
            "--bins",
            "128",
            "--rows-per-slab",
            "2",
        ]))
        .unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.input, "scan.mh5");
        assert_eq!(
            a.engine,
            Engine::Gpu {
                layout: Layout::Pointer3d
            }
        );
        assert_eq!(a.bins, 128);
        assert_eq!(a.rows_per_slab, Some(2));
        assert_eq!(a.cutoff, 0.0);
    }

    #[test]
    fn gpu_failure_flags_parse() {
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            "scan.mh5",
            "--on-gpu-failure",
            "fallback-cpu",
            "--inject-gpu-fault",
            "seed=7,alloc-nth=1,h2d-prob=0.25,free-mem=1048576,dead-after=40",
        ]))
        .unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.on_gpu_failure, GpuFailurePolicy::FallbackCpu);
        let plan = a.inject_fault.unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.fail_alloc_nth, Some(1));
        assert_eq!(plan.h2d_fail_prob, 0.25);
        assert_eq!(plan.report_mem, Some(1 << 20));
        assert_eq!(plan.fail_after_ops, Some(40));
        assert!(plan.is_active());

        // Defaults: abort, no injection.
        let cmd = parse(&sv(&["reconstruct", "--input", "scan.mh5"])).unwrap();
        let Command::Reconstruct(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.on_gpu_failure, GpuFailurePolicy::Abort);
        assert_eq!(a.inject_fault, None);

        // Bad values are parse errors, not panics.
        assert!(parse_gpu_failure_policy("explode")
            .unwrap_err()
            .contains("abort"));
        assert!(parse_fault_plan("alloc-nth")
            .unwrap_err()
            .contains("key=value"));
        assert!(parse_fault_plan("h2d-prob=1.5")
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(parse_fault_plan("alloc-nth=x")
            .unwrap_err()
            .contains("alloc-nth"));
        assert!(parse_fault_plan("warp-core=1")
            .unwrap_err()
            .contains("warp-core"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&sv(&["generate"])).unwrap_err().contains("--out"));
        assert!(parse(&sv(&["reconstruct"]))
            .unwrap_err()
            .contains("--input"));
        assert!(parse(&sv(&["reconstruct", "--input"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&sv(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&sv(&["generate", "--out", "x", "--bogus", "1"]))
            .unwrap_err()
            .contains("--bogus"));
        assert!(parse(&sv(&["generate", "--out", "a", "--out", "b"]))
            .unwrap_err()
            .contains("twice"));
        assert!(parse(&sv(&["inspect"])).is_err());
        assert!(parse(&sv(&["inspect", "a", "b"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
        let mut buf = Vec::new();
        run(&Command::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn generate_reconstruct_validate_inspect_round_trip() {
        let dir = std::env::temp_dir();
        let scan = dir.join(format!("cli_scan_{}.mh5", std::process::id()));
        let recon = dir.join(format!("cli_recon_{}.mh5", std::process::id()));
        let scan_s = scan.to_string_lossy().to_string();
        let recon_s = recon.to_string_lossy().to_string();

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "generate",
            "--out",
            &scan_s,
            "--rows",
            "8",
            "--cols",
            "8",
            "--steps",
            "12",
            "--scatterers",
            "4",
            "--seed",
            "5",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("wrote"));

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            &scan_s,
            "--out",
            &recon_s,
            "--engine",
            "gpu-1d",
            "--depth-start",
            "-1500",
            "--depth-end",
            "1500",
            "--bins",
            "300",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("gpu-1d"), "{text}");
        assert!(std::fs::metadata(&recon).is_ok());

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "validate",
            "--input",
            &scan_s,
            "--depth-start",
            "-1500",
            "--depth-end",
            "1500",
            "--bins",
            "300",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("validation:"), "{text}");
        assert!(
            text.contains("4 scatterers") || text.contains("/4"),
            "{text}"
        );

        let mut buf = Vec::new();
        run(
            &Command::Inspect {
                path: scan_s.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("/entry/images"), "{text}");

        std::fs::remove_file(&scan).ok();
        std::fs::remove_file(&recon).ok();
    }

    #[test]
    fn batch_reconstructs_a_directory() {
        let dir = std::env::temp_dir().join(format!("laue_batch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().to_string();
        for (i, seed) in [3u64, 4].iter().enumerate() {
            let scan_path = dir.join(format!("scan_{i}.mh5"));
            let cmd = parse(&sv(&[
                "generate",
                "--out",
                &scan_path.to_string_lossy(),
                "--rows",
                "6",
                "--cols",
                "6",
                "--steps",
                "10",
                "--scatterers",
                "3",
                "--seed",
                &seed.to_string(),
            ]))
            .unwrap();
            run(&cmd, &mut Vec::new()).unwrap();
        }
        // A decoy non-mh5 file is ignored; a corrupt mh5 is reported.
        std::fs::write(dir.join("notes.txt"), b"ignore me").unwrap();
        std::fs::write(dir.join("broken.mh5"), b"not a container").unwrap();

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "batch",
            "--dir",
            &dir_s,
            "--engine",
            "cpu",
            "--depth-start",
            "-1500",
            "--depth-end",
            "1500",
            "--bins",
            "100",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("scan_0.mh5"), "{text}");
        assert!(text.contains("scan_1.mh5"), "{text}");
        assert!(text.contains("broken.mh5"), "{text}");
        assert!(text.contains("ERROR"), "{text}");
        assert!(text.contains("3 file(s), 1 failure(s)"), "{text}");
        assert!(!text.contains("notes.txt"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roi_and_variance_flags_work_end_to_end() {
        let dir = std::env::temp_dir();
        let scan = dir.join(format!("cli_roi_{}.mh5", std::process::id()));
        let var = dir.join(format!("cli_var_{}.mh5", std::process::id()));
        let scan_s = scan.to_string_lossy().to_string();
        let var_s = var.to_string_lossy().to_string();

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "generate",
            "--out",
            &scan_s,
            "--rows",
            "10",
            "--cols",
            "10",
            "--steps",
            "12",
            "--scatterers",
            "5",
            "--seed",
            "8",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();

        let mut buf = Vec::new();
        let cmd = parse(&sv(&[
            "reconstruct",
            "--input",
            &scan_s,
            "--roi",
            "2:3:4:5",
            "--variance",
            &var_s,
            "--depth-start",
            "-1500",
            "--depth-end",
            "1500",
            "--bins",
            "150",
        ]))
        .unwrap();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("12×4×5"), "ROI dims in summary: {text}");
        assert!(text.contains("variance"), "{text}");
        // The variance file holds a 150×4×5 dataset.
        let f = mh5::FileReader::open(&var).unwrap();
        let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
        assert_eq!(f.dataset_info(ds).unwrap().shape, vec![150, 4, 5]);

        // Bad ROI specs are parse errors.
        assert!(
            parse(&sv(&["reconstruct", "--input", "x", "--roi", "1:2:3"]))
                .unwrap_err()
                .contains("r0:c0:rows:cols")
        );
        assert!(
            parse(&sv(&["reconstruct", "--input", "x", "--roi", "a:2:3:4"]))
                .unwrap_err()
                .contains("bad --roi")
        );

        std::fs::remove_file(&scan).ok();
        std::fs::remove_file(&var).ok();
    }

    #[test]
    fn run_surfaces_io_errors() {
        let cmd = Command::Inspect {
            path: "/nonexistent/nope.mh5".into(),
        };
        let mut buf = Vec::new();
        assert!(run(&cmd, &mut buf).is_err());
    }
}
