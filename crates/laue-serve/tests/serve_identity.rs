//! Service-level bit-identity: every job the service completes — fused
//! into a batch, preempted mid-run, migrated across devices, under any
//! tenant mix — must produce exactly the image and stats a standalone
//! single-job run of the same spec produces. Batching and scheduling are
//! performance knobs; if they are ever *observable* in the output, the
//! service is broken.

use cuda_sim::{Device, DeviceProps};
use laue_core::gpu::{reconstruct_with_options, GpuOptions};
use laue_core::InMemorySlabSource;
use laue_serve::{serve, Arrival, BatchPolicy, JobOutcome, JobSpec, ServeConfig, WorkloadSpec};
use proptest::prelude::*;

/// Standalone single-run reference for a job spec: a fresh device, the
/// default engine, no service anywhere in sight.
fn standalone(spec: &JobSpec) -> (Vec<f64>, laue_core::ReconStats) {
    let scan = spec.materialize();
    let mut source = InMemorySlabSource::new(
        scan.images,
        spec.shape.n_steps,
        spec.shape.n_rows,
        spec.shape.n_cols,
    )
    .unwrap();
    let device = Device::new(DeviceProps::tesla_m2070());
    let out = reconstruct_with_options(
        &device,
        &mut source,
        &scan.geometry,
        &spec.config(),
        GpuOptions::default(),
    )
    .unwrap();
    (out.image.data, out.stats)
}

fn assert_outcomes_standalone(outcomes: &[JobOutcome], specs: &[JobSpec]) {
    assert_eq!(outcomes.len(), specs.len(), "every accepted job completes");
    for outcome in outcomes {
        let spec = specs.iter().find(|s| s.id == outcome.id).unwrap();
        let (image, stats) = standalone(spec);
        assert_eq!(
            outcome.image.data, image,
            "job {} (batched={}, quanta={}, migrations={}) must be \
             bit-identical to its standalone run",
            outcome.id, outcome.batched, outcome.quanta, outcome.migrations
        );
        assert_eq!(outcome.stats, stats, "job {} stats", outcome.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: across random tenant mixes, job-size
    /// mixes, arrival rates, quanta, and batching on/off, every served
    /// job is bit-identical to a standalone single run of its spec.
    #[test]
    fn every_served_job_is_bit_identical_to_standalone(
        seed in 0u64..1000,
        n_jobs in 4usize..10,
        small_fraction in prop_oneof![Just(0.0), Just(0.5), Just(0.9), Just(1.0)],
        rate in prop_oneof![Just(50.0), Just(2000.0)],
        quantum in prop_oneof![Just(4usize), Just(8usize), Just(usize::MAX)],
        batching in any::<bool>(),
        n_devices in 1usize..4,
    ) {
        let spec = WorkloadSpec {
            seed,
            n_jobs,
            n_tenants: 3,
            small_fraction,
            interactive_fraction: 0.4,
            arrival: Arrival::Open { rate_hz: rate },
        };
        let workload = spec.generate();
        let specs = workload.initial.clone();
        let mut cfg = ServeConfig::for_tenants(spec.n_tenants);
        cfg.n_devices = n_devices;
        cfg.devices_per_chassis = 2;
        cfg.quantum_rows = quantum;
        if !batching {
            cfg.batch = BatchPolicy::unbatched();
        }
        let report = serve(&cfg, workload).unwrap();
        assert_outcomes_standalone(&report.outcomes, &specs);
    }
}

/// A deterministic scenario tuned to force preemption *and* migration:
/// two devices, a tiny quantum, a mixed workload. The property above
/// covers it statistically; this pins it so a regression can't hide
/// behind proptest sampling.
#[test]
fn preempted_and_migrated_jobs_stay_standalone_identical() {
    let spec = WorkloadSpec::mixed(10, 3000.0, 21);
    let workload = spec.generate();
    let specs = workload.initial.clone();
    let mut cfg = ServeConfig::for_tenants(spec.n_tenants);
    cfg.n_devices = 2;
    cfg.quantum_rows = 4;
    let report = serve(&cfg, workload).unwrap();
    assert!(
        report.preemptions > 0,
        "mixed load with a 4-row quantum must preempt"
    );
    assert_outcomes_standalone(&report.outcomes, &specs);
    // Determinism of the whole service: run it again, same everything.
    let again = serve(&cfg, spec.generate()).unwrap();
    assert_eq!(again.makespan_s.to_bits(), report.makespan_s.to_bits());
    assert_eq!(again.preemptions, report.preemptions);
    assert_eq!(again.outcomes.len(), report.outcomes.len());
    for (a, b) in again.outcomes.iter().zip(&report.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.finish_s.to_bits(), b.finish_s.to_bits());
        assert_eq!(a.image.data, b.image.data);
    }
}

/// Closed-loop workloads complete the full job budget and stay
/// bit-identical (resubmission times depend on service times, so this
/// also exercises the completion→arrival feedback path).
#[test]
fn closed_loop_serves_full_budget_identically() {
    let mut spec = WorkloadSpec::small_heavy(12, 1.0, 5);
    spec.arrival = Arrival::Closed {
        clients: 3,
        think_s: 1e-4,
    };
    let workload = spec.generate();
    let cfg = ServeConfig::for_tenants(spec.n_tenants);
    let report = serve(&cfg, workload).unwrap();
    assert_eq!(report.outcomes.len(), 12, "the whole budget is served");
    for outcome in &report.outcomes {
        // Rebuild the job's spec from a fresh generation replaying the
        // same closed loop is impractical; instead verify against the
        // spec the service actually ran, reconstructed from its id/seed.
        let (image, stats) = standalone(&JobSpec {
            id: outcome.id,
            tenant: outcome.tenant,
            class: outcome.class,
            arrival_s: outcome.arrival_s,
            shape: if outcome.image.n_rows == 6 {
                laue_serve::JobShape::small()
            } else {
                laue_serve::JobShape::large()
            },
            seed: spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(outcome.id),
        });
        assert_eq!(outcome.image.data, image, "closed-loop job {}", outcome.id);
        assert_eq!(outcome.stats, stats);
    }
}

/// Fairness sanity: with one tenant weighted 4× under saturation, it
/// receives measurably more service than an equal-weight peer.
#[test]
fn weights_shift_service_share_under_saturation() {
    let spec = WorkloadSpec {
        seed: 13,
        n_jobs: 40,
        n_tenants: 2,
        small_fraction: 1.0,
        interactive_fraction: 0.0,
        arrival: Arrival::Open { rate_hz: 1.0e5 }, // everything queued at once
    };
    let run = |weights: Vec<f64>| {
        let mut cfg = ServeConfig::for_tenants(2);
        cfg.tenant_weights = weights;
        cfg.n_devices = 1;
        cfg.batch = BatchPolicy {
            max_jobs: 2, // small batches so pick order matters
            ..BatchPolicy::default()
        };
        serve(&cfg, spec.generate()).unwrap()
    };
    let fair = run(vec![1.0, 1.0]);
    let skewed = run(vec![4.0, 1.0]);
    let mean_latency = |r: &laue_serve::ServeReport, tenant: usize| {
        let xs: Vec<f64> = r
            .outcomes
            .iter()
            .filter(|o| o.tenant == tenant)
            .map(|o| o.latency_s())
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(
        mean_latency(&skewed, 0) < mean_latency(&fair, 0),
        "a 4× weight must improve tenant 0's mean latency: {:.3e} vs {:.3e}",
        mean_latency(&skewed, 0),
        mean_latency(&fair, 0)
    );
}
