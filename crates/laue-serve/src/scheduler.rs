//! The service loop: admission → queues → batch former → fleet executor.
//!
//! The scheduler is a deterministic discrete-event loop over fleet time.
//! Each iteration picks the device that frees earliest, advances the
//! clock to the first instant that device has ready work (admitting any
//! arrivals that occur on the way), and dispatches once:
//!
//! * if the serve-order head job is batchable, the batch former harvests
//!   every ready fused-eligible job that fits the memory budget and the
//!   whole set runs as **one** fused launch (one coalesced upload, one
//!   kernel, per-job outputs bit-identical to standalone runs);
//! * otherwise the head job runs **one quantum** of rows through the
//!   checkpointed engine. An unfinished job re-queues with its
//!   [`SlabProgress`] and may resume on any device — preemption and
//!   migration are the same mechanism the crash-recovery journal uses,
//!   which is why a preempted, migrated job still completes
//!   bit-identical to an uninterrupted one.
//!
//! Virtual time does not advance while the scheduler "thinks": decision
//! cost is zero, only measured device work and declared arrivals move
//! the clock. Two runs of the same workload therefore produce identical
//! timelines, which the CI latency gates depend on.

use std::collections::VecDeque;

use cuda_sim::DeviceProps;
use laue_core::cache::TableCacheStats;
use laue_core::gpu::batch::{reconstruct_batch_fused, BatchJob};
use laue_core::gpu::{reconstruct_checkpointed_bounded, GpuOptions, PipelineDepth, Triangulation};
use laue_core::journal::SlabProgress;
use laue_core::{InMemorySlabSource, Result};

use crate::admission::{AdmissionPolicy, AdmissionStats, ServicePredictor};
use crate::batcher::{BatchPolicy, BatchStats};
use crate::fleet::GpuFleet;
use crate::job::{JobOutcome, JobSpec, RejectReason};
use crate::queue::{QueuedJob, TenantQueues};
use crate::workload::Workload;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Devices in the fleet.
    pub n_devices: usize,
    /// Devices sharing one chassis (PCIe bus + host CPU).
    pub devices_per_chassis: usize,
    /// Device model (homogeneous fleet).
    pub device: DeviceProps,
    /// Fleet-wide depth-table cache budget, bytes.
    pub cache_bytes: u64,
    /// Fair-share weight per tenant (index = tenant id).
    pub tenant_weights: Vec<f64>,
    /// Admission limits.
    pub admission: AdmissionPolicy,
    /// Batch-forming policy.
    pub batch: BatchPolicy,
    /// Preemption quantum, rows per dispatch of a non-fused job.
    /// `usize::MAX` disables preemption.
    pub quantum_rows: usize,
    /// Run non-fused jobs with host-precomputed depth tables through the
    /// shared cache (cross-tenant reuse); `false` = in-kernel
    /// triangulation, cache unused.
    pub host_tables: bool,
}

impl ServeConfig {
    /// Sensible service for `n_tenants` equal-weight tenants: two M2070s
    /// in one chassis, batching on, 8-row quantum, shared tables.
    pub fn for_tenants(n_tenants: usize) -> ServeConfig {
        ServeConfig {
            n_devices: 2,
            devices_per_chassis: 2,
            device: DeviceProps::tesla_m2070(),
            cache_bytes: 32 * 1024 * 1024,
            tenant_weights: vec![1.0; n_tenants.max(1)],
            admission: AdmissionPolicy::unbounded(),
            batch: BatchPolicy::default(),
            quantum_rows: 8,
            host_tables: true,
        }
    }
}

/// Everything one service run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Completed jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Turned-away arrivals with reasons.
    pub rejected: Vec<(JobSpec, RejectReason)>,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Batch-former counters.
    pub batch: BatchStats,
    /// Fleet makespan: when the last job finished.
    pub makespan_s: f64,
    /// Busy device-seconds over available device-seconds.
    pub utilization: f64,
    /// Quanta that ended with the job unfinished (requeued).
    pub preemptions: u64,
    /// Resumes on a different device than the previous quantum.
    pub migrations: u64,
    /// Fleet-wide depth-table cache accounting.
    pub cache: TableCacheStats,
}

impl ServeReport {
    /// Completed jobs per fleet second.
    pub fn goodput_jobs_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / self.makespan_s
        }
    }

    /// Nearest-rank latency percentile over completed jobs, `q ∈ (0, 1]`.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut lats: Vec<f64> = self.outcomes.iter().map(|o| o.latency_s()).collect();
        if lats.is_empty() {
            return 0.0;
        }
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
        lats[rank - 1]
    }

    /// Median latency.
    pub fn p50_s(&self) -> f64 {
        self.latency_percentile(0.50)
    }

    /// Tail latency.
    pub fn p99_s(&self) -> f64 {
        self.latency_percentile(0.99)
    }
}

/// Run a workload through the service. Deterministic: the same config
/// and workload always produce the same report, bit for bit.
pub fn serve(cfg: &ServeConfig, workload: Workload) -> Result<ServeReport> {
    let fleet = GpuFleet::new(
        cfg.n_devices,
        cfg.devices_per_chassis,
        cfg.device.clone(),
        cfg.cache_bytes,
    );
    let mut predictor =
        ServicePredictor::new(fleet.device_props().clone(), fleet.host_props().clone());
    let max_tenant = workload.initial.iter().map(|j| j.tenant).max().unwrap_or(0);
    assert!(
        cfg.tenant_weights.len() > max_tenant,
        "a weight per tenant: {} tenants, {} weights",
        max_tenant + 1,
        cfg.tenant_weights.len()
    );

    let mut pending: VecDeque<JobSpec> = workload.initial.into();
    let mut closed = workload.closed;
    let mut queues = TenantQueues::new(cfg.tenant_weights.clone());
    let mut state = ServeState {
        fleet,
        queues: &mut queues,
        outcomes: Vec::new(),
        rejected: Vec::new(),
        admission: AdmissionStats::default(),
        batch: BatchStats::default(),
        preemptions: 0,
        migrations: 0,
    };

    loop {
        // Where can the fleet next do work?
        let (dev, free) = state.fleet.clock.earliest_free();
        let horizon = match (state.queues.earliest_ready(), pending.front()) {
            (Some(q), Some(p)) => q.min(p.arrival_s),
            (Some(q), None) => q,
            (None, Some(p)) => p.arrival_s,
            (None, None) => break,
        };
        let now = free.max(horizon);

        // Admit every arrival on or before the dispatch instant.
        while pending.front().is_some_and(|j| j.arrival_s <= now) {
            let spec = pending.pop_front().unwrap();
            let predicted = predictor.predict(&spec);
            let decision = cfg.admission.admit(
                state.queues.tenant_depth(spec.tenant),
                state.queues.predicted_backlog_s(),
                predicted,
            );
            state.admission.record(&decision);
            match decision {
                Ok(()) => state.queues.push(QueuedJob::new(spec, predicted)),
                Err(reason) => state.rejected.push((spec, reason)),
            }
        }

        // Dispatch once on the chosen device (an all-rejected admission
        // round can leave nothing ready — loop and re-evaluate).
        let Some(head) = state.queues.pick(now) else {
            continue;
        };
        let finished = if cfg.batch.eligible(&head.spec) {
            state.run_fused(cfg, head, dev, now)?
        } else {
            state.run_quantum(cfg, head, dev, now)?
        };

        // Closed-loop clients respond to completions with fresh arrivals.
        if let Some(cl) = closed.as_mut() {
            for finish_s in finished {
                if let Some(next) = cl.next_job(finish_s) {
                    let at = pending
                        .iter()
                        .position(|j| j.arrival_s > next.arrival_s)
                        .unwrap_or(pending.len());
                    pending.insert(at, next);
                }
            }
        }
    }

    let makespan_s = state.fleet.clock.makespan_s();
    let utilization = state.fleet.clock.utilization();
    let cache = state.fleet.cache().totals();
    Ok(ServeReport {
        outcomes: state.outcomes,
        rejected: state.rejected,
        admission: state.admission,
        batch: state.batch,
        makespan_s,
        utilization,
        preemptions: state.preemptions,
        migrations: state.migrations,
        cache,
    })
}

/// Mutable run state threaded through the dispatch paths.
struct ServeState<'a> {
    fleet: GpuFleet,
    queues: &'a mut TenantQueues,
    outcomes: Vec<JobOutcome>,
    rejected: Vec<(JobSpec, RejectReason)>,
    admission: AdmissionStats,
    batch: BatchStats,
    preemptions: u64,
    migrations: u64,
}

impl ServeState<'_> {
    /// Fuse the head job with every ready eligible job that fits, run
    /// the batch as one launch, and complete every member. Returns the
    /// members' finish times (for closed-loop resubmission).
    fn run_fused(
        &mut self,
        cfg: &ServeConfig,
        head: QueuedJob,
        dev: usize,
        now: f64,
    ) -> Result<Vec<f64>> {
        let mut used = head.spec.shape.fused_bytes();
        let mut members = vec![head];
        if cfg.batch.max_jobs > 1 {
            let extra = self.queues.pick_batch(now, cfg.batch.max_jobs - 1, |j| {
                cfg.batch.admit_to_batch(j, &mut used)
            });
            members.extend(extra);
        }

        let scans: Vec<_> = members.iter().map(|m| m.spec.materialize()).collect();
        let job_cfgs: Vec<_> = members.iter().map(|m| m.spec.config()).collect();
        let mut sources: Vec<InMemorySlabSource> = members
            .iter()
            .zip(&scans)
            .map(|(m, scan)| {
                InMemorySlabSource::new(
                    scan.images.clone(),
                    m.spec.shape.n_steps,
                    m.spec.shape.n_rows,
                    m.spec.shape.n_cols,
                )
            })
            .collect::<Result<_>>()?;
        let mut jobs: Vec<BatchJob<'_>> = sources
            .iter_mut()
            .zip(&scans)
            .zip(&job_cfgs)
            .map(|((source, scan), cfg)| BatchJob {
                source,
                geom: &scan.geometry,
                cfg,
            })
            .collect();
        let batch = reconstruct_batch_fused(self.fleet.device(dev), &mut jobs)?;
        drop(jobs);

        let span = self.fleet.clock.dispatch(dev, now, batch.elapsed_s);
        self.batch.record_batch(members.len());
        let total_threads: u64 = members.iter().map(|m| m.spec.shape.threads()).sum();
        let mut finished = Vec::with_capacity(members.len());
        for (member, result) in members.into_iter().zip(batch.results) {
            // Each member's fair-share charge is its proportional slice
            // of the batch makespan (bigger jobs pay more of the fuse).
            let share = batch.elapsed_s * member.spec.shape.threads() as f64 / total_threads as f64;
            self.queues.charge(member.spec.tenant, share);
            finished.push(span.end_s);
            self.outcomes.push(JobOutcome {
                id: member.spec.id,
                tenant: member.spec.tenant,
                class: member.spec.class,
                arrival_s: member.spec.arrival_s,
                start_s: span.start_s,
                finish_s: span.end_s,
                service_s: share,
                batched: true,
                quanta: 1,
                migrations: 0,
                image: result.image,
                stats: result.stats,
            });
        }
        Ok(finished)
    }

    /// Run one preemption quantum of a non-fused job. A finished job
    /// completes; an unfinished one re-queues carrying its checkpoint.
    fn run_quantum(
        &mut self,
        cfg: &ServeConfig,
        mut job: QueuedJob,
        dev: usize,
        now: f64,
    ) -> Result<Vec<f64>> {
        let spec = job.spec.clone();
        let scan = spec.materialize();
        let job_cfg = spec.config();
        let mut source = InMemorySlabSource::new(
            scan.images,
            spec.shape.n_steps,
            spec.shape.n_rows,
            spec.shape.n_cols,
        )?;
        let mut progress = job.progress.take().unwrap_or_else(|| {
            SlabProgress::new(job_cfg.n_depth_bins, spec.shape.n_rows, spec.shape.n_cols)
        });
        let opts = if cfg.host_tables {
            GpuOptions {
                triangulation: Triangulation::HostTables,
                ..GpuOptions::default()
            }
        } else {
            GpuOptions::default()
        };
        let cache = cfg.host_tables.then(|| self.fleet.cache());
        let (out, complete) = reconstruct_checkpointed_bounded(
            self.fleet.device(dev),
            &mut source,
            &scan.geometry,
            &job_cfg,
            opts,
            PipelineDepth::default(),
            cache,
            &mut progress,
            None,
            cfg.quantum_rows,
        )?;

        let span = self.fleet.clock.dispatch(dev, now, out.elapsed_s);
        self.queues.charge(spec.tenant, out.elapsed_s);
        if job.first_start_s.is_none() {
            job.first_start_s = Some(span.start_s);
        }
        if job.devices.last().is_some_and(|&prev| prev != dev) {
            self.migrations += 1;
        }
        job.devices.push(dev);
        job.service_s += out.elapsed_s;
        job.quanta += 1;
        self.batch.singles += 1;

        if complete {
            let migrations = job.devices.windows(2).filter(|w| w[0] != w[1]).count() as u32;
            self.outcomes.push(JobOutcome {
                id: spec.id,
                tenant: spec.tenant,
                class: spec.class,
                arrival_s: spec.arrival_s,
                start_s: job.first_start_s.unwrap(),
                finish_s: span.end_s,
                service_s: job.service_s,
                batched: false,
                quanta: job.quanta,
                migrations,
                image: out.image,
                stats: out.stats,
            });
            Ok(vec![span.end_s])
        } else {
            self.preemptions += 1;
            job.progress = Some(progress);
            job.ready_s = span.end_s;
            self.queues.push(job);
            Ok(Vec::new())
        }
    }
}
