//! Admission control: bounded queues plus cost-model backlog prediction.
//!
//! A service that accepts everything converts overload into unbounded
//! queues and minutes-long p99s; one that bounds only queue *depth*
//! treats a queue of 30 quick-look jobs the same as a queue of 30
//! full-detector productions. This policy bounds both dimensions:
//!
//! * **Per-tenant queue depth** — a hard cap on outstanding jobs per
//!   tenant, the classic isolation knob (one tenant's burst cannot fill
//!   the service).
//! * **Predicted backlog seconds** — the sum over queued jobs of the
//!   cost-model-predicted service time, from the same
//!   [`laue_core::planner::plan_run`] enumeration the `--plan auto`
//!   pipeline uses. Predictions are memoized per [`JobShape`] (the
//!   planner's answer depends only on shape under a fixed device), so
//!   admission costs one planner call per *distinct* shape, not per job.
//!
//! A rejected job is turned away at arrival — the open-loop client is
//! told "try later" rather than being silently queued into a latency it
//! would never accept.

use std::collections::HashMap;

use cuda_sim::{DeviceProps, HostProps};
use laue_core::planner::{plan_run, TableWarmth};
use laue_core::InMemorySlabSource;

use crate::job::{JobShape, JobSpec, RejectReason};

/// Admission limits. `usize::MAX` / `f64::INFINITY` disable a bound.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet completed) jobs per tenant.
    pub max_tenant_depth: usize,
    /// Maximum predicted backlog across the whole service, in seconds of
    /// device work per device (i.e. the backlog the fleet can clear in
    /// this many seconds).
    pub max_backlog_s: f64,
}

impl AdmissionPolicy {
    /// No limits: every job is admitted (the saturation sweep's mode).
    pub fn unbounded() -> AdmissionPolicy {
        AdmissionPolicy {
            max_tenant_depth: usize::MAX,
            max_backlog_s: f64::INFINITY,
        }
    }

    /// Judge one arrival against the current queue state.
    pub fn admit(
        &self,
        tenant_depth: usize,
        predicted_backlog_s: f64,
        job_predicted_s: f64,
    ) -> Result<(), RejectReason> {
        if tenant_depth >= self.max_tenant_depth {
            return Err(RejectReason::QueueDepth);
        }
        if predicted_backlog_s + job_predicted_s > self.max_backlog_s {
            return Err(RejectReason::Backlog);
        }
        Ok(())
    }
}

/// What admission control did over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs admitted into the queues.
    pub accepted: u64,
    /// Jobs rejected on the per-tenant depth bound.
    pub rejected_depth: u64,
    /// Jobs rejected on the predicted-backlog bound.
    pub rejected_backlog: u64,
}

impl AdmissionStats {
    /// Total arrivals seen.
    pub fn offered(&self) -> u64 {
        self.accepted + self.rejected_depth + self.rejected_backlog
    }

    /// Record a decision.
    pub fn record(&mut self, decision: &Result<(), RejectReason>) {
        match decision {
            Ok(()) => self.accepted += 1,
            Err(RejectReason::QueueDepth) => self.rejected_depth += 1,
            Err(RejectReason::Backlog) => self.rejected_backlog += 1,
        }
    }
}

/// Memoized cost-model service-time predictor.
///
/// One planner enumeration per distinct job shape; every later job of the
/// same shape is answered from the memo. Predictions use a cold-cache
/// [`TableWarmth`] — pessimistic for warm tenants, which is the right
/// bias for an admission bound.
pub struct ServicePredictor {
    props: DeviceProps,
    host: HostProps,
    memo: HashMap<JobShape, f64>,
}

impl ServicePredictor {
    /// Predictor for a fleet of identical devices with the given props.
    pub fn new(props: DeviceProps, host: HostProps) -> ServicePredictor {
        ServicePredictor {
            props,
            host,
            memo: HashMap::new(),
        }
    }

    /// Predicted standalone service seconds for a job of this spec.
    pub fn predict(&mut self, spec: &JobSpec) -> f64 {
        if let Some(&s) = self.memo.get(&spec.shape) {
            return s;
        }
        // The planner's prediction depends on shape, not data: any scan
        // of the right dimensions prices the same. Use a canonical one.
        let probe = JobSpec {
            seed: 0,
            ..spec.clone()
        };
        let scan = probe.materialize();
        let mut source = InMemorySlabSource::new(
            scan.images,
            spec.shape.n_steps,
            spec.shape.n_rows,
            spec.shape.n_cols,
        )
        .expect("spec dimensions are consistent by construction");
        let predicted = plan_run(
            &self.props,
            &self.host,
            &mut source,
            &scan.geometry,
            &probe.config(),
            TableWarmth::default(),
        )
        .map(|plan| plan.predicted_s)
        .unwrap_or(0.0);
        self.memo.insert(spec.shape, predicted);
        predicted
    }

    /// Distinct shapes priced so far (memo size).
    pub fn shapes_priced(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobClass, JobShape};

    fn spec(shape: JobShape) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: 0,
            class: JobClass::Batch,
            arrival_s: 0.0,
            shape,
            seed: 11,
        }
    }

    #[test]
    fn policy_bounds_depth_then_backlog() {
        let policy = AdmissionPolicy {
            max_tenant_depth: 2,
            max_backlog_s: 1.0,
        };
        assert!(policy.admit(0, 0.0, 0.1).is_ok());
        assert_eq!(policy.admit(2, 0.0, 0.1), Err(RejectReason::QueueDepth));
        assert_eq!(policy.admit(1, 0.95, 0.1), Err(RejectReason::Backlog));
        let mut stats = AdmissionStats::default();
        stats.record(&policy.admit(0, 0.0, 0.1));
        stats.record(&policy.admit(2, 0.0, 0.1));
        stats.record(&policy.admit(1, 0.95, 0.1));
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected_depth, 1);
        assert_eq!(stats.rejected_backlog, 1);
        assert_eq!(stats.offered(), 3);
    }

    #[test]
    fn predictor_memoizes_per_shape_and_orders_sizes() {
        let mut p = ServicePredictor::new(DeviceProps::tesla_m2070(), HostProps::xeon_e5630());
        let small = p.predict(&spec(JobShape::small()));
        let small_again = p.predict(&spec(JobShape::small()));
        let large = p.predict(&spec(JobShape::large()));
        assert_eq!(small.to_bits(), small_again.to_bits(), "memo hit");
        assert_eq!(p.shapes_priced(), 2);
        assert!(small > 0.0);
        assert!(
            large > small,
            "large job must predict slower: {large:.2e} vs {small:.2e}"
        );
    }
}
