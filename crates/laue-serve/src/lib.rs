//! `laue-serve` — reconstruction-as-a-service over the simulated fleet.
//!
//! A beamline does not run one reconstruction; it runs a *service*:
//! multiple user groups (tenants) submitting streams of heterogeneous
//! jobs against a fixed pool of GPUs, caring about tail latency and
//! fairness as much as raw throughput. This crate turns the single-run
//! engines of `laue-core` into that service:
//!
//! * **Workloads** ([`workload`]) — reproducible open-loop (Poisson) and
//!   closed-loop (think-time) arrival processes over small/large job
//!   mixes and tenant populations.
//! * **Admission** ([`admission`]) — per-tenant depth bounds plus a
//!   predicted-backlog bound priced by the PR 7 cost-model planner,
//!   memoized per job shape.
//! * **Queues** ([`queue`]) — strict interactive-over-batch priority,
//!   weighted fair sharing across tenants inside a class.
//! * **Fused batching** ([`batcher`] policy, `laue_core::gpu::batch`
//!   mechanism) — ready small jobs ride one coalesced upload and one
//!   fused kernel launch, amortizing the fixed PCIe-latency and
//!   launch-overhead costs that dominate small jobs. Per-job outputs
//!   stay bit-identical to standalone runs.
//! * **Preemption & migration** ([`scheduler`]) — long jobs run in row
//!   quanta through the checkpointed engine; an unfinished job re-queues
//!   with its slab-granular [`SlabProgress`](laue_core::journal) and may
//!   resume on a different device (or chassis) bit-identically — the
//!   crash-recovery journal doubling as the scheduler's context switch.
//! * **The fleet** ([`fleet`]) — devices grouped into chassis (shared
//!   PCIe + host CPU per node), one cross-tenant depth-table cache, and
//!   a [`cuda_sim::FleetClock`] mapping measured per-run makespans onto
//!   one shared service timeline.
//!
//! Everything is deterministic in the (config, workload) pair: the same
//! inputs produce the same timeline, latencies, and images, bit for bit.
//!
//! # Example
//!
//! ```
//! use laue_serve::{serve, ServeConfig, WorkloadSpec};
//!
//! let spec = WorkloadSpec::small_heavy(12, 2000.0, 7);
//! let cfg = ServeConfig::for_tenants(spec.n_tenants);
//! let report = serve(&cfg, spec.generate()).unwrap();
//! assert_eq!(report.outcomes.len(), 12);
//! assert!(report.batch.fused_jobs > 0, "small-heavy mixes batch");
//! assert!(report.p99_s() >= report.p50_s());
//! ```

pub mod admission;
pub mod batcher;
pub mod fleet;
pub mod job;
pub mod queue;
pub mod scheduler;
pub mod workload;

pub use admission::{AdmissionPolicy, AdmissionStats, ServicePredictor};
pub use batcher::{BatchPolicy, BatchStats};
pub use fleet::GpuFleet;
pub use job::{JobClass, JobOutcome, JobShape, JobSpec, RejectReason};
pub use queue::{QueuedJob, TenantQueues};
pub use scheduler::{serve, ServeConfig, ServeReport};
pub use workload::{Arrival, ClosedLoop, Workload, WorkloadSpec};
