//! Workload generation: open-loop and closed-loop arrival processes.
//!
//! Two canonical arrival disciplines drive a service evaluation:
//!
//! * **Open loop** — jobs arrive on a Poisson process at a fixed rate,
//!   oblivious to how the service is doing. This is the discipline that
//!   exposes saturation: push the rate past capacity and queues (and tail
//!   latencies) grow without bound. The saturation sweep in
//!   `bench_serve` walks this rate across the knee.
//! * **Closed loop** — a fixed population of clients each keeps exactly
//!   one job in flight, submitting the next one a think-time after the
//!   previous completes. Offered load self-limits to the service rate,
//!   which is how interactive beamline users actually behave.
//!
//! Both are driven by the deterministic [`rand::rngs::StdRng`], so a
//! `(spec, seed)` pair always produces the same trace — the property the
//! bit-identity suite and the CI gates rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::job::{JobClass, JobShape, JobSpec};

/// Arrival discipline for a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals at `rate_hz` jobs per fleet second.
    Open {
        /// Mean arrival rate, jobs per virtual second.
        rate_hz: f64,
    },
    /// `clients` closed-loop clients, each re-submitting `think_s` after
    /// its previous job completes (exponentially distributed think time).
    Closed {
        /// Concurrent client population.
        clients: usize,
        /// Mean think time between a completion and the next submission.
        think_s: f64,
    },
}

/// A reproducible multi-tenant workload description.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// RNG seed: same spec + seed ⇒ same trace, always.
    pub seed: u64,
    /// Total jobs to submit across all tenants.
    pub n_jobs: usize,
    /// Tenants, assigned round-robin-with-jitter across jobs.
    pub n_tenants: usize,
    /// Fraction of jobs drawn with [`JobShape::small`] (the fused
    /// batcher's population); the rest are [`JobShape::large`].
    pub small_fraction: f64,
    /// Fraction of jobs submitted as [`JobClass::Interactive`].
    pub interactive_fraction: f64,
    /// Arrival discipline.
    pub arrival: Arrival,
}

impl WorkloadSpec {
    /// The small-job-heavy mix the batching CI gate runs: 90% small
    /// interactive-leaning jobs arriving open-loop at `rate_hz`.
    pub fn small_heavy(n_jobs: usize, rate_hz: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            n_jobs,
            n_tenants: 3,
            small_fraction: 0.9,
            interactive_fraction: 0.5,
            arrival: Arrival::Open { rate_hz },
        }
    }

    /// A mixed production workload: half small, half large, mostly batch
    /// class — the mix that exercises preemption and migration.
    pub fn mixed(n_jobs: usize, rate_hz: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            n_jobs,
            n_tenants: 4,
            small_fraction: 0.5,
            interactive_fraction: 0.25,
            arrival: Arrival::Open { rate_hz },
        }
    }

    /// Generate the workload. Open-loop specs return the full trace;
    /// closed-loop specs return each client's *first* job (arrivals
    /// staggered by one think draw) plus a [`ClosedLoop`] continuation
    /// the scheduler consults on every completion.
    pub fn generate(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.arrival {
            Arrival::Open { rate_hz } => {
                assert!(rate_hz > 0.0, "open-loop rate must be positive");
                let mut t = 0.0f64;
                let mut jobs = Vec::with_capacity(self.n_jobs);
                for id in 0..self.n_jobs as u64 {
                    t += exponential(&mut rng, 1.0 / rate_hz);
                    jobs.push(self.draw_job(id, t, &mut rng));
                }
                Workload {
                    initial: jobs,
                    closed: None,
                }
            }
            Arrival::Closed { clients, think_s } => {
                assert!(clients > 0, "closed loop needs at least one client");
                let clients = clients.min(self.n_jobs);
                let mut jobs = Vec::with_capacity(clients);
                for id in 0..clients as u64 {
                    let t = exponential(&mut rng, think_s);
                    jobs.push(self.draw_job(id, t, &mut rng));
                }
                jobs.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).unwrap());
                Workload {
                    initial: jobs,
                    closed: Some(ClosedLoop {
                        spec: self.clone(),
                        think_s,
                        remaining: self.n_jobs - clients,
                        next_id: clients as u64,
                        rng,
                    }),
                }
            }
        }
    }

    fn draw_job(&self, id: u64, arrival_s: f64, rng: &mut StdRng) -> JobSpec {
        let shape = if rng.gen::<f64>() < self.small_fraction {
            JobShape::small()
        } else {
            JobShape::large()
        };
        let class = if rng.gen::<f64>() < self.interactive_fraction {
            JobClass::Interactive
        } else {
            JobClass::Batch
        };
        JobSpec {
            id,
            tenant: rng.gen_range(0..self.n_tenants),
            class,
            arrival_s,
            shape,
            seed: self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id),
        }
    }
}

/// A generated workload: the upfront trace plus an optional closed-loop
/// continuation.
#[derive(Debug)]
pub struct Workload {
    /// Jobs known at t = 0, sorted by arrival time.
    pub initial: Vec<JobSpec>,
    /// Closed-loop state, `None` for open-loop workloads.
    pub closed: Option<ClosedLoop>,
}

/// Closed-loop continuation: asked on every completion whether the
/// finishing client submits again.
#[derive(Debug)]
pub struct ClosedLoop {
    spec: WorkloadSpec,
    think_s: f64,
    remaining: usize,
    next_id: u64,
    rng: StdRng,
}

impl ClosedLoop {
    /// The finishing client thinks, then (while the job budget lasts)
    /// submits its next job. Returns `None` once `n_jobs` are out.
    pub fn next_job(&mut self, finish_s: f64) -> Option<JobSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let arrival = finish_s + exponential(&mut self.rng, self.think_s);
        Some(self.spec.draw_job(id, arrival, &mut self.rng))
    }
}

/// Exponential draw with the given mean, via inverse CDF. `1 - u` keeps
/// the argument strictly positive (the shim's uniform is in `[0, 1)`).
fn exponential(rng: &mut StdRng, mean_s: f64) -> f64 {
    -mean_s * (1.0 - rng.gen::<f64>()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_traces_are_deterministic_and_sorted() {
        let spec = WorkloadSpec::small_heavy(50, 200.0, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.initial.len(), 50);
        assert!(a.closed.is_none());
        for (x, y) in a.initial.iter().zip(&b.initial) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
        }
        assert!(a
            .initial
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        let small = a
            .initial
            .iter()
            .filter(|j| j.shape == JobShape::small())
            .count();
        assert!(small >= 35, "90% small mix should dominate: {small}/50");
    }

    #[test]
    fn open_loop_rate_sets_mean_spacing() {
        let spec = WorkloadSpec::small_heavy(2000, 100.0, 3);
        let jobs = spec.generate().initial;
        let span = jobs.last().unwrap().arrival_s;
        let rate = jobs.len() as f64 / span;
        assert!(
            (rate - 100.0).abs() < 10.0,
            "empirical rate {rate:.1} should be ≈ 100"
        );
    }

    #[test]
    fn closed_loop_limits_outstanding_jobs() {
        let mut spec = WorkloadSpec::mixed(10, 1.0, 9);
        spec.arrival = Arrival::Closed {
            clients: 3,
            think_s: 0.01,
        };
        let mut w = spec.generate();
        assert_eq!(w.initial.len(), 3, "one upfront job per client");
        let closed = w.closed.as_mut().unwrap();
        let mut total = w.initial.len();
        let mut t = 1.0;
        while let Some(next) = closed.next_job(t) {
            assert!(next.arrival_s > t, "resubmission happens after finish");
            t = next.arrival_s;
            total += 1;
        }
        assert_eq!(total, 10, "budget is exactly n_jobs");
    }
}
