//! Tenant queues: priority classes over weighted fair sharing.
//!
//! Pick order is two-level. [`Interactive`](crate::job::JobClass::Interactive)
//! jobs are served strictly before any ready
//! [`Batch`](crate::job::JobClass::Batch) job — a quick-look must
//! never sit behind a production run it didn't ask for. *Within* a class,
//! tenants share capacity by weight: each tenant carries a **credit** —
//! device seconds it has been charged, normalized by its weight — and the
//! ready tenant with the lowest credit goes next (ties break on job id,
//! so the whole discipline is deterministic). Charging actual measured
//! service back into the credit makes this a start-time fair queue over
//! virtual time: a tenant that just burned a big quantum waits until the
//! others catch up, in proportion to the weights.
//!
//! A preempted job re-enters its tenant's queue with `ready_s` set to
//! the fleet time its last quantum ended — it cannot be re-picked before
//! its own checkpoint exists.

use laue_core::journal::SlabProgress;

use crate::job::JobSpec;

/// A job waiting (or waiting again, after preemption) for a device.
#[derive(Debug)]
pub struct QueuedJob {
    /// The submission.
    pub spec: JobSpec,
    /// Fleet time from which the job may next be dispatched (arrival, or
    /// the end of its last preempted quantum).
    pub ready_s: f64,
    /// Checkpointed progress carried across preemptions; `None` until
    /// the job has run its first quantum.
    pub progress: Option<SlabProgress>,
    /// Devices the job's quanta have run on, in order.
    pub devices: Vec<usize>,
    /// Device seconds consumed so far.
    pub service_s: f64,
    /// Fleet time of the job's first dispatch.
    pub first_start_s: Option<f64>,
    /// Cost-model predicted standalone service seconds (admission's
    /// backlog currency).
    pub predicted_s: f64,
    /// Quanta dispatched so far.
    pub quanta: u32,
}

impl QueuedJob {
    /// A freshly admitted job, ready at its arrival.
    pub fn new(spec: JobSpec, predicted_s: f64) -> QueuedJob {
        let ready_s = spec.arrival_s;
        QueuedJob {
            spec,
            ready_s,
            progress: None,
            devices: Vec::new(),
            service_s: 0.0,
            first_start_s: None,
            predicted_s,
            quanta: 0,
        }
    }
}

/// The service's queue state: one logical queue per tenant, fair-shared
/// by weight under strict class priority.
#[derive(Debug)]
pub struct TenantQueues {
    weights: Vec<f64>,
    credit: Vec<f64>,
    jobs: Vec<QueuedJob>,
}

impl TenantQueues {
    /// Queues for `weights.len()` tenants. Weights must be positive;
    /// a tenant with weight 2 receives twice the share of weight 1.
    pub fn new(weights: Vec<f64>) -> TenantQueues {
        assert!(!weights.is_empty(), "at least one tenant");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let credit = vec![0.0; weights.len()];
        TenantQueues {
            weights,
            credit,
            jobs: Vec::new(),
        }
    }

    /// Tenants configured.
    pub fn n_tenants(&self) -> usize {
        self.weights.len()
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// No jobs queued anywhere?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queued jobs belonging to `tenant` (admission's depth input).
    pub fn tenant_depth(&self, tenant: usize) -> usize {
        self.jobs.iter().filter(|j| j.spec.tenant == tenant).count()
    }

    /// Sum of predicted *remaining* service over queued jobs, scaled by
    /// each job's uncommitted fraction (a half-done production counts
    /// half) — admission's backlog input.
    pub fn predicted_backlog_s(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| {
                let done = j
                    .progress
                    .as_ref()
                    .map(|p| p.committed_rows() as f64 / j.spec.shape.n_rows as f64)
                    .unwrap_or(0.0);
                j.predicted_s * (1.0 - done).max(0.0)
            })
            .sum()
    }

    /// Enqueue a job (new, or preempted and re-queued).
    pub fn push(&mut self, job: QueuedJob) {
        self.jobs.push(job);
    }

    /// Earliest `ready_s` across queued jobs.
    pub fn earliest_ready(&self) -> Option<f64> {
        self.jobs
            .iter()
            .map(|j| j.ready_s)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Charge `service_s` of device time to `tenant`'s fair-share credit.
    pub fn charge(&mut self, tenant: usize, service_s: f64) {
        self.credit[tenant] += service_s / self.weights[tenant];
    }

    /// Pop the next job to serve at fleet time `now`: the ready job of
    /// the best class whose tenant holds the least normalized credit.
    pub fn pick(&mut self, now: f64) -> Option<QueuedJob> {
        let best = self.ready_order(now).into_iter().next()?;
        Some(self.jobs.swap_remove(best))
    }

    /// Pop up to `limit` ready jobs satisfying `eligible`, in serve
    /// order — the batch former's harvest. The first job is whatever
    /// [`pick`](Self::pick) would have chosen (callers only harvest when
    /// the head job is batchable), the rest fill the fused launch.
    pub fn pick_batch(
        &mut self,
        now: f64,
        limit: usize,
        mut eligible: impl FnMut(&QueuedJob) -> bool,
    ) -> Vec<QueuedJob> {
        let order = self.ready_order(now);
        let mut take: Vec<usize> = order
            .into_iter()
            .filter(|&i| eligible(&self.jobs[i]))
            .take(limit)
            .collect();
        // Remove from highest index down so indices stay valid.
        take.sort_unstable_by(|a, b| b.cmp(a));
        let mut out: Vec<QueuedJob> = take.into_iter().map(|i| self.jobs.swap_remove(i)).collect();
        // Restore serve order (swap_remove reversed it).
        out.sort_by_key(|j| j.spec.id);
        out
    }

    /// Indices of ready jobs in serve order: class, then tenant credit,
    /// then ready time, then id (total and deterministic).
    fn ready_order(&self, now: f64) -> Vec<usize> {
        let mut ready: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.ready_s <= now)
            .map(|(i, _)| i)
            .collect();
        ready.sort_by(|&a, &b| {
            let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
            ja.spec
                .class
                .cmp(&jb.spec.class)
                .then(
                    self.credit[ja.spec.tenant]
                        .partial_cmp(&self.credit[jb.spec.tenant])
                        .unwrap(),
                )
                .then(ja.ready_s.partial_cmp(&jb.ready_s).unwrap())
                .then(ja.spec.id.cmp(&jb.spec.id))
        });
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobClass, JobShape};

    fn job(id: u64, tenant: usize, class: JobClass, ready: f64) -> QueuedJob {
        QueuedJob::new(
            JobSpec {
                id,
                tenant,
                class,
                arrival_s: ready,
                shape: JobShape::small(),
                seed: id,
            },
            0.5,
        )
    }

    #[test]
    fn interactive_preempts_batch_in_pick_order() {
        let mut q = TenantQueues::new(vec![1.0, 1.0]);
        q.push(job(1, 0, JobClass::Batch, 0.0));
        q.push(job(2, 1, JobClass::Interactive, 0.0));
        assert_eq!(q.pick(1.0).unwrap().spec.id, 2);
        assert_eq!(q.pick(1.0).unwrap().spec.id, 1);
        assert!(q.pick(1.0).is_none());
    }

    #[test]
    fn weighted_credit_steers_the_share() {
        // Tenant 0 has twice the weight: after equal service, it holds
        // half the credit and goes first.
        let mut q = TenantQueues::new(vec![2.0, 1.0]);
        q.charge(0, 1.0);
        q.charge(1, 1.0);
        q.push(job(1, 0, JobClass::Batch, 0.0));
        q.push(job(2, 1, JobClass::Batch, 0.0));
        assert_eq!(q.pick(0.0).unwrap().spec.id, 1);
    }

    #[test]
    fn ready_time_gates_eligibility() {
        let mut q = TenantQueues::new(vec![1.0]);
        q.push(job(1, 0, JobClass::Batch, 5.0));
        assert!(q.pick(4.9).is_none());
        assert_eq!(q.earliest_ready(), Some(5.0));
        assert_eq!(q.pick(5.0).unwrap().spec.id, 1);
    }

    #[test]
    fn batch_harvest_respects_order_and_filter() {
        let mut q = TenantQueues::new(vec![1.0, 1.0]);
        q.push(job(3, 0, JobClass::Batch, 0.0));
        q.push(job(1, 1, JobClass::Interactive, 0.0));
        q.push(job(2, 0, JobClass::Interactive, 0.0));
        q.push(job(4, 1, JobClass::Batch, 2.0));
        let batch = q.pick_batch(1.0, 8, |_| true);
        // Job 4 is not ready; the other three come out id-sorted.
        assert_eq!(
            batch.iter().map(|j| j.spec.id).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenant_depth(1), 1);
        assert!(q.predicted_backlog_s() > 0.0);
    }
}
