//! The batch former: which queued jobs ride one fused launch.
//!
//! Policy, not mechanism — the mechanism (one coalesced upload, one
//! fused kernel, bit-identical per-job outputs) lives in
//! [`laue_core::gpu::batch`]. This module decides *membership*: a job
//! joins a fused batch only if it is small enough that fixed per-launch
//! costs dominate it (the `max_threads` knob), its config is
//! fused-compatible, and the batch's total resident footprint stays
//! inside the share of device memory the service sets aside for
//! batching. Everything oversized takes the ordinary per-job engines,
//! where slab chunking and preemption apply.

use laue_core::gpu::batch::fused_compatible;

use crate::job::JobSpec;
use crate::queue::QueuedJob;

/// Batch-forming policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Master switch: `false` degrades the service to per-job FIFO
    /// dispatch (the baseline the goodput CI gate compares against).
    pub enabled: bool,
    /// Most jobs one fused launch may carry.
    pub max_jobs: usize,
    /// Device bytes a batch's members may jointly hold resident.
    pub mem_budget: u64,
    /// A job is "small" (batchable) only below this many kernel threads
    /// — above it, per-launch overhead is already amortized and fusing
    /// would just serialize unrelated work behind one synchronize.
    pub max_threads: u64,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            enabled: true,
            max_jobs: 16,
            mem_budget: 64 * 1024 * 1024,
            max_threads: 2048,
        }
    }
}

impl BatchPolicy {
    /// The FIFO baseline: batching off, everything else default.
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy {
            enabled: false,
            ..BatchPolicy::default()
        }
    }

    /// May this job ever join a fused batch under this policy?
    pub fn eligible(&self, spec: &JobSpec) -> bool {
        self.enabled
            && spec.shape.threads() <= self.max_threads
            && spec.shape.fused_bytes() <= self.mem_budget
            && fused_compatible(&spec.config())
    }

    /// Membership test the queue harvest uses: eligibility plus a
    /// running memory budget (`used` bytes already claimed by accepted
    /// members). Returns the job's footprint on acceptance.
    pub fn admit_to_batch(&self, job: &QueuedJob, used: &mut u64) -> bool {
        if !self.eligible(&job.spec) {
            return false;
        }
        let bytes = job.spec.shape.fused_bytes();
        if *used + bytes > self.mem_budget {
            return false;
        }
        *used += bytes;
        true
    }
}

/// What the batch former did over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Fused launches issued.
    pub batches: u64,
    /// Jobs completed inside fused launches.
    pub fused_jobs: u64,
    /// Largest batch formed.
    pub max_batch: u64,
    /// Jobs dispatched alone (oversized, or batching disabled).
    pub singles: u64,
}

impl BatchStats {
    /// Record one fused launch of `n` jobs.
    pub fn record_batch(&mut self, n: usize) {
        self.batches += 1;
        self.fused_jobs += n as u64;
        self.max_batch = self.max_batch.max(n as u64);
    }

    /// Mean jobs per fused launch (0 when none ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.fused_jobs as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobClass, JobShape};
    use crate::queue::QueuedJob;

    fn queued(shape: JobShape) -> QueuedJob {
        QueuedJob::new(
            JobSpec {
                id: 0,
                tenant: 0,
                class: JobClass::Batch,
                arrival_s: 0.0,
                shape,
                seed: 1,
            },
            0.1,
        )
    }

    #[test]
    fn small_jobs_are_eligible_large_are_not() {
        let policy = BatchPolicy::default();
        assert!(policy.eligible(&queued(JobShape::small()).spec));
        assert!(!policy.eligible(&queued(JobShape::large()).spec));
        assert!(!BatchPolicy::unbatched().eligible(&queued(JobShape::small()).spec));
    }

    #[test]
    fn memory_budget_caps_membership() {
        let shape = JobShape::small();
        let policy = BatchPolicy {
            mem_budget: shape.fused_bytes() * 2,
            ..BatchPolicy::default()
        };
        let mut used = 0;
        assert!(policy.admit_to_batch(&queued(shape), &mut used));
        assert!(policy.admit_to_batch(&queued(shape), &mut used));
        assert!(
            !policy.admit_to_batch(&queued(shape), &mut used),
            "third doesn't fit"
        );
        assert_eq!(used, shape.fused_bytes() * 2);
    }

    #[test]
    fn stats_track_batches() {
        let mut s = BatchStats::default();
        s.record_batch(3);
        s.record_batch(5);
        s.singles += 1;
        assert_eq!(s.batches, 2);
        assert_eq!(s.fused_jobs, 8);
        assert_eq!(s.max_batch, 5);
        assert!((s.mean_batch() - 4.0).abs() < 1e-12);
    }
}
