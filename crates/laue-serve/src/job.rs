//! The job model: what a tenant submits and what the service hands back.
//!
//! A beamline reconstruction service sees two broad job populations. Small
//! jobs — alignment checks, ROI re-runs, quick-look previews — arrive in
//! bursts, want low latency, and are individually dominated by fixed
//! per-launch costs (the fused batcher's prey). Large jobs — full-detector
//! production reconstructions — arrive steadily, tolerate queueing, and
//! run long enough that they must be *preemptible* or every interactive
//! job behind them inherits their runtime as queueing delay.
//!
//! A [`JobSpec`] describes one submission entirely by value (tenant,
//! class, arrival time, scan shape, deterministic data seed), so the
//! service, the bench harness, and the bit-identity tests can all
//! materialize exactly the same scan from the same spec.

use laue_core::config::{CompactionMode, IntegrityMode};
use laue_core::{DepthImage, ReconStats, ReconstructionConfig};
use laue_wire::{SyntheticScan, SyntheticScanBuilder};

/// Scheduling class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobClass {
    /// Latency-sensitive: served strictly before any ready batch job.
    Interactive,
    /// Throughput work: fills whatever capacity interactive jobs leave.
    Batch,
}

/// Geometric shape of a job's scan and reconstruction grid. Everything
/// the cost model (and the fused-batch fit check) needs, by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobShape {
    /// Detector rows.
    pub n_rows: usize,
    /// Detector columns.
    pub n_cols: usize,
    /// Wire steps (images in the stack).
    pub n_steps: usize,
    /// Depth bins of the output grid.
    pub n_bins: usize,
    /// Forced slab rows for the checkpointed path (`None` = planner's
    /// choice). Small values give a long job many preemption points.
    pub rows_per_slab: Option<usize>,
}

impl JobShape {
    /// A quick-look ROI job: tiny detector patch, shallow depth grid.
    pub fn small() -> JobShape {
        JobShape {
            n_rows: 6,
            n_cols: 6,
            n_steps: 8,
            n_bins: 40,
            rows_per_slab: None,
        }
    }

    /// A production reconstruction: enough rows to span many slabs.
    pub fn large() -> JobShape {
        JobShape {
            n_rows: 24,
            n_cols: 12,
            n_steps: 10,
            n_bins: 80,
            rows_per_slab: Some(4),
        }
    }

    /// Kernel threads this shape launches (pairs × pixels).
    pub fn threads(&self) -> u64 {
        (self.n_rows * self.n_cols * (self.n_steps - 1)) as u64
    }

    /// Device bytes the fused path would hold resident for this shape.
    pub fn fused_bytes(&self) -> u64 {
        laue_core::gpu::batch::fused_job_bytes(self.n_steps, self.n_rows, self.n_cols, self.n_bins)
    }
}

/// One submitted reconstruction job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Service-wide job id (assigned by the workload generator).
    pub id: u64,
    /// Owning tenant (index into the scheduler's weight vector).
    pub tenant: usize,
    /// Scheduling class.
    pub class: JobClass,
    /// Fleet time the job arrives, seconds.
    pub arrival_s: f64,
    /// Scan and grid shape.
    pub shape: JobShape,
    /// Seed for the synthetic scan data (determinism anchor: the same
    /// spec always materializes the same bits).
    pub seed: u64,
}

impl JobSpec {
    /// The job's reconstruction config. Fused-compatible by construction
    /// (no compaction, no integrity) so the batcher only has to check
    /// size, and bit-identity to standalone runs holds for every path.
    pub fn config(&self) -> ReconstructionConfig {
        let mut cfg = ReconstructionConfig::new(-1500.0, 1500.0, self.shape.n_bins);
        cfg.rows_per_slab = self.shape.rows_per_slab;
        cfg.compaction = CompactionMode::Off;
        cfg.integrity = IntegrityMode::Off;
        cfg
    }

    /// Materialize the job's scan. Deterministic in the spec alone.
    pub fn materialize(&self) -> SyntheticScan {
        SyntheticScanBuilder::new(self.shape.n_rows, self.shape.n_cols, self.shape.n_steps)
            .scatterers(3)
            .background(15.0)
            .noise(1.0)
            .seed(self.seed)
            .build()
            .expect("job shapes are valid by construction")
    }
}

/// Why admission control turned a job away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's queue was at its depth limit.
    QueueDepth,
    /// Predicted backlog exceeded the service-level ceiling.
    Backlog,
}

/// What the service did with one accepted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job id from its [`JobSpec`].
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Scheduling class.
    pub class: JobClass,
    /// Fleet arrival time, seconds.
    pub arrival_s: f64,
    /// Fleet time the job first occupied a device.
    pub start_s: f64,
    /// Fleet completion time.
    pub finish_s: f64,
    /// Device seconds the job (or its share of a fused batch) consumed.
    pub service_s: f64,
    /// Did the job complete inside a fused batch?
    pub batched: bool,
    /// Device dispatches the job took (1 = ran to completion in one go).
    pub quanta: u32,
    /// Times the job resumed on a *different* device than its previous
    /// quantum ran on (checkpoint/migrate events).
    pub migrations: u32,
    /// The reconstructed depth image — bit-identical to a standalone
    /// single-job run of the same spec.
    pub image: DepthImage,
    /// Kernel outcome counters, ditto.
    pub stats: ReconStats,
}

impl JobOutcome {
    /// Submission-to-completion latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Seconds spent waiting (latency minus the span actually on device).
    pub fn queued_s(&self) -> f64 {
        (self.latency_s() - (self.finish_s - self.start_s)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_materialize_deterministically() {
        let spec = JobSpec {
            id: 1,
            tenant: 0,
            class: JobClass::Interactive,
            arrival_s: 0.0,
            shape: JobShape::small(),
            seed: 42,
        };
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(a.images, b.images);
        assert_eq!(spec.config().n_depth_bins, 40);
        assert!(laue_core::gpu::batch::fused_compatible(&spec.config()));
    }

    #[test]
    fn shapes_report_threads_and_bytes() {
        let s = JobShape::small();
        assert_eq!(s.threads(), 6 * 6 * 7);
        assert_eq!(
            s.fused_bytes(),
            laue_core::gpu::batch::fused_job_bytes(8, 6, 6, 40)
        );
        assert!(JobShape::large().threads() > s.threads());
    }

    #[test]
    fn interactive_orders_before_batch() {
        assert!(JobClass::Interactive < JobClass::Batch);
    }
}
