//! The device fleet: simulated GPUs, chassis grouping, shared caches.
//!
//! A service fleet is more than a `Vec<Device>`. Devices are grouped
//! into chassis — each [`cuda_sim::Host`] models one node's shared PCIe
//! bus and host CPU, so two devices in the same chassis contend for
//! upload bandwidth exactly as PR 4's multi-GPU runs do. Across the
//! whole fleet sits one [`DepthTableCache`]: depth tables are keyed by
//! geometry + config, not by tenant, so tenant B's production run hits
//! the table tenant A's run computed — the cross-tenant sharing the
//! service exists to exploit. The [`FleetClock`] maps each device's
//! per-run measured makespan onto the shared service timeline.

use std::sync::Arc;

use cuda_sim::{Device, DeviceProps, FleetClock, Host, HostProps};
use laue_core::cache::DepthTableCache;

/// A fleet of identical simulated devices on a shared service timeline.
pub struct GpuFleet {
    devices: Vec<Device>,
    chassis_of: Vec<usize>,
    /// Busy-until horizons on the shared fleet timeline.
    pub clock: FleetClock,
    cache: Arc<DepthTableCache>,
    host_props: HostProps,
}

impl GpuFleet {
    /// Build `n_devices` devices, packed `per_chassis` to a host, with a
    /// fleet-wide depth-table cache of `cache_bytes`.
    pub fn new(
        n_devices: usize,
        per_chassis: usize,
        props: DeviceProps,
        cache_bytes: u64,
    ) -> GpuFleet {
        assert!(n_devices > 0 && per_chassis > 0);
        let mut devices = Vec::with_capacity(n_devices);
        let mut chassis_of = Vec::with_capacity(n_devices);
        let mut chassis: Vec<Arc<Host>> = Vec::new();
        for i in 0..n_devices {
            let c = i / per_chassis;
            if c == chassis.len() {
                chassis.push(Host::new_default());
            }
            devices.push(Device::new_on_host(props.clone(), &chassis[c]));
            chassis_of.push(c);
        }
        GpuFleet {
            devices,
            chassis_of,
            clock: FleetClock::new(n_devices),
            cache: Arc::new(DepthTableCache::new(cache_bytes)),
            host_props: HostProps::xeon_e5630(),
        }
    }

    /// Devices in the fleet.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device `i`.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Chassis (host) index device `i` sits in.
    pub fn chassis(&self, i: usize) -> usize {
        self.chassis_of[i]
    }

    /// The fleet-wide depth-table cache, shared across tenants and
    /// devices (per-device residency tracked inside the cache).
    pub fn cache(&self) -> &DepthTableCache {
        &self.cache
    }

    /// Props of the (homogeneous) devices — the admission predictor's
    /// cost-model input.
    pub fn device_props(&self) -> &DeviceProps {
        self.devices[0].props()
    }

    /// Host CPU model for planner predictions.
    pub fn host_props(&self) -> &HostProps {
        &self.host_props
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_pack_into_chassis() {
        let fleet = GpuFleet::new(5, 2, DeviceProps::tiny(16 * 1024 * 1024), 1 << 20);
        assert_eq!(fleet.n_devices(), 5);
        assert_eq!(
            (0..5).map(|i| fleet.chassis(i)).collect::<Vec<_>>(),
            [0, 0, 1, 1, 2]
        );
        // Same chassis ⇒ same underlying host engine; distinct device ids.
        assert_ne!(fleet.device(0).id(), fleet.device(1).id());
        assert_eq!(fleet.clock.n_devices(), 5);
        assert_eq!(fleet.cache().budget(), 1 << 20);
    }
}
