//! Persistent depth-table cache.
//!
//! The per-(scan-step, pixel) edge-depth tables shipped by
//! [`Triangulation::HostTables`](crate::gpu::Triangulation) are pure
//! functions of the scan geometry — they never change across slabs, engines,
//! row bands, or repeated runs, yet the pre-cache engine recomputed and
//! re-uploaded them from scratch every time. This module keeps them:
//!
//! * **host side** — a content-addressed map from [`TableKey`] to
//!   `Arc<DepthTables>`, so the triangulation FLOPs are paid once per
//!   distinct geometry (a small LRU bounds the entry count);
//! * **device side** — per device, the full-detector table as a resident
//!   [`DeviceBuffer`] that survives across slabs and runs, LRU-bounded by a
//!   configurable byte budget (a slice of `DeviceProps::total_mem`). A warm
//!   run re-uses the resident buffer at virtual time 0 — the upload
//!   disappears from the timeline entirely.
//!
//! The key hashes the *bit patterns* of every f64 the table depends on
//! (beam, detector, wire scan, depth binning, wire edge, triangulation
//! mode), so equality is exact: two keys collide only for byte-identical
//! geometry, and a cached table is bit-identical to a fresh computation.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use cuda_sim::DeviceBuffer;
use laue_geometry::DepthMapper;

use crate::config::ReconstructionConfig;
use crate::geometry::ScanGeometry;

/// Host-side entries kept per cache (distinct geometries per process are
/// few; this only bounds pathological churn).
const HOST_ENTRIES: usize = 8;

/// Content-addressed identity of one depth table.
///
/// Built from the bit patterns of every input the table is a function of;
/// compared by full equality (no truncated hashing), so distinct geometries
/// can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableKey(Vec<u64>);

impl TableKey {
    /// Key for the table implied by `geom` + `cfg` (HostTables mode).
    pub fn new(geom: &ScanGeometry, cfg: &ReconstructionConfig) -> TableKey {
        fn v3(v: laue_geometry::Vec3, w: &mut Vec<u64>) {
            w.push(v.x.to_bits());
            w.push(v.y.to_bits());
            w.push(v.z.to_bits());
        }
        let mut w = Vec::with_capacity(40);
        // Beam.
        v3(geom.beam.origin, &mut w);
        v3(geom.beam.direction, &mut w);
        // Detector.
        let d = &geom.detector;
        w.push(d.n_rows as u64);
        w.push(d.n_cols as u64);
        w.push(d.pixel_pitch_row.to_bits());
        w.push(d.pixel_pitch_col.to_bits());
        for row in d.rotation.rows {
            v3(row, &mut w);
        }
        v3(d.translation, &mut w);
        // Wire scan.
        let wire = &geom.wire;
        v3(wire.axis, &mut w);
        w.push(wire.radius.to_bits());
        v3(wire.origin, &mut w);
        v3(wire.step, &mut w);
        w.push(wire.n_steps as u64);
        // Depth binning + edge + mode tag (HostTables = 1).
        w.push(cfg.depth_start.to_bits());
        w.push(cfg.depth_end.to_bits());
        w.push(cfg.n_depth_bins as u64);
        w.push(match cfg.wire_edge {
            laue_geometry::WireEdge::Leading => 0,
            laue_geometry::WireEdge::Trailing => 1,
        });
        w.push(1);
        TableKey(w)
    }
}

/// The host-side depth table for a full detector: one precomputed edge
/// depth per `(scan step, row, col)`, `NaN` where no tangent exists.
#[derive(Debug, Clone)]
pub struct DepthTables {
    /// Scan steps (= images).
    pub n_images: usize,
    /// Detector rows covered (the full detector).
    pub n_rows: usize,
    /// Detector columns.
    pub n_cols: usize,
    /// Depths, indexed `(z · n_rows + r) · n_cols + c`.
    pub depths: Vec<f64>,
    /// Host FLOPs spent computing the table (charged once per miss).
    pub host_flops: u64,
}

impl DepthTables {
    /// Compute the full-detector table. Element order and per-element math
    /// match the per-slab path exactly, so a cached table is bit-identical
    /// to tables computed slab by slab.
    pub fn compute(
        geom: &ScanGeometry,
        mapper: &DepthMapper,
        cfg: &ReconstructionConfig,
    ) -> DepthTables {
        let (n_images, n_rows, n_cols) = (
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        );
        let mut depths = Vec::with_capacity(n_images * n_rows * n_cols);
        let mut host_flops = 0u64;
        for z in 0..n_images {
            let wire = geom.wire.center_unchecked(z as f64);
            for r in 0..n_rows {
                for c in 0..n_cols {
                    let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                    host_flops += crate::pair::FLOPS_PER_DEPTH;
                    depths.push(mapper.depth(p, wire, cfg.wire_edge).unwrap_or(f64::NAN));
                }
            }
        }
        DepthTables {
            n_images,
            n_rows,
            n_cols,
            depths,
            host_flops,
        }
    }

    /// Device bytes the table occupies when resident.
    pub fn bytes(&self) -> u64 {
        (self.depths.len() * 8) as u64
    }

    /// The rows `[row0, row0 + rows)` of every step, in per-slab layout
    /// `(z · rows + r') · n_cols + c` — what a slab upload ships.
    pub fn slice_rows(&self, row0: usize, rows: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_images * rows * self.n_cols);
        for z in 0..self.n_images {
            for r in row0..row0 + rows {
                let base = (z * self.n_rows + r) * self.n_cols;
                out.extend_from_slice(&self.depths[base..base + self.n_cols]);
            }
        }
        out
    }
}

/// Hit/miss/evict counters, both per-run (returned by the engines) and
/// lifetime (see [`DepthTableCache::totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCacheStats {
    /// Host table found already computed.
    pub host_hits: u64,
    /// Host table computed from scratch.
    pub host_misses: u64,
    /// Device-resident table re-used (no upload, ready at virtual time 0).
    pub device_hits: u64,
    /// Device-resident table uploaded (or residency skipped for budget).
    pub device_misses: u64,
    /// Resident tables dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes resident on the device after the run.
    pub resident_bytes: u64,
}

impl TableCacheStats {
    /// Total hits (host + device) — the headline counter for reports.
    pub fn hits(&self) -> u64 {
        self.host_hits + self.device_hits
    }

    /// Total misses (host + device).
    pub fn misses(&self) -> u64 {
        self.host_misses + self.device_misses
    }

    /// Fold a run's counters into an aggregate.
    pub fn merge(&mut self, other: &TableCacheStats) {
        self.host_hits += other.host_hits;
        self.host_misses += other.host_misses;
        self.device_hits += other.device_hits;
        self.device_misses += other.device_misses;
        self.evictions += other.evictions;
        self.resident_bytes = self.resident_bytes.max(other.resident_bytes);
    }
}

#[derive(Debug)]
struct DeviceEntry {
    device_id: u64,
    key: TableKey,
    buf: DeviceBuffer<f64>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Device-resident byte budget per device; 0 disables residency.
    budget: u64,
    /// Host entries, LRU order (front = coldest).
    host: VecDeque<(TableKey, Arc<DepthTables>)>,
    /// Device entries, LRU order (front = coldest), across all devices;
    /// the budget applies per device id.
    device: VecDeque<DeviceEntry>,
    totals: TableCacheStats,
}

/// The persistent cache. Cheap to share (`&` methods, internal lock);
/// typically held in an `Arc` by whatever outlives the runs — the pipeline,
/// a bench harness, or a test.
#[derive(Debug, Default)]
pub struct DepthTableCache {
    inner: Mutex<Inner>,
}

impl DepthTableCache {
    /// A cache whose device-resident side may hold up to `budget_bytes`
    /// per device. The host side is always active.
    pub fn new(budget_bytes: u64) -> DepthTableCache {
        let cache = DepthTableCache::default();
        cache.set_budget(budget_bytes);
        cache
    }

    /// Change the device-resident byte budget (evicting to fit happens on
    /// the next insertion). 0 disables residency; host caching stays on.
    pub fn set_budget(&self, budget_bytes: u64) {
        self.inner.lock().unwrap().budget = budget_bytes;
    }

    /// Current device-resident byte budget.
    pub fn budget(&self) -> u64 {
        self.inner.lock().unwrap().budget
    }

    /// Lifetime counters over every run that used this cache.
    pub fn totals(&self) -> TableCacheStats {
        self.inner.lock().unwrap().totals
    }

    /// Get (or compute and insert) the host-side table for `key`. The
    /// `compute` closure runs only on a miss; `run` receives the per-run
    /// hit/miss accounting.
    pub fn host_tables(
        &self,
        key: &TableKey,
        run: &mut TableCacheStats,
        compute: impl FnOnce() -> DepthTables,
    ) -> Arc<DepthTables> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(pos) = inner.host.iter().position(|(k, _)| k == key) {
                let entry = inner.host.remove(pos).unwrap();
                let tables = Arc::clone(&entry.1);
                inner.host.push_back(entry);
                run.host_hits += 1;
                inner.totals.host_hits += 1;
                return tables;
            }
        }
        // Compute outside the lock (it is the expensive part).
        let tables = Arc::new(compute());
        let mut inner = self.inner.lock().unwrap();
        run.host_misses += 1;
        inner.totals.host_misses += 1;
        inner.host.push_back((key.clone(), Arc::clone(&tables)));
        while inner.host.len() > HOST_ENTRIES {
            inner.host.pop_front();
        }
        tables
    }

    /// Look up the resident buffer for `(device_id, key)`, refreshing its
    /// LRU position. Counts a device hit in `run` when found. The returned
    /// handle aliases the cached allocation — dropping it does not evict.
    pub fn lookup_device(
        &self,
        device_id: u64,
        key: &TableKey,
        run: &mut TableCacheStats,
    ) -> Option<DeviceBuffer<f64>> {
        let mut inner = self.inner.lock().unwrap();
        let pos = inner
            .device
            .iter()
            .position(|e| e.device_id == device_id && e.key == *key)?;
        let entry = inner.device.remove(pos).unwrap();
        let buf = entry.buf.clone();
        inner.device.push_back(entry);
        run.device_hits += 1;
        inner.totals.device_hits += 1;
        Some(buf)
    }

    /// Whether the host-side table for `key` is cached, without refreshing
    /// its LRU position or counting a hit — the execution planner asks
    /// this to predict table costs without perturbing the cache it is
    /// predicting.
    pub fn peek_host(&self, key: &TableKey) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.host.iter().any(|(k, _)| k == key)
    }

    /// Whether `(device_id, key)` is device-resident, without LRU refresh
    /// or hit accounting (see [`DepthTableCache::peek_host`]).
    pub fn peek_device(&self, device_id: u64, key: &TableKey) -> bool {
        let inner = self.inner.lock().unwrap();
        inner
            .device
            .iter()
            .any(|e| e.device_id == device_id && e.key == *key)
    }

    /// Bytes currently resident on `device_id`.
    pub fn resident_bytes(&self, device_id: u64) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .device
            .iter()
            .filter(|e| e.device_id == device_id)
            .map(|e| e.buf.modeled_bytes())
            .sum()
    }

    /// Evict LRU entries of `device_id` until `incoming` more bytes would
    /// fit the budget. Returns false (without evicting anything useful)
    /// when `incoming` alone exceeds the budget — residency is pointless.
    pub fn evict_to_fit(&self, device_id: u64, incoming: u64, run: &mut TableCacheStats) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let budget = inner.budget;
        if incoming > budget {
            return false;
        }
        loop {
            let resident: u64 = inner
                .device
                .iter()
                .filter(|e| e.device_id == device_id)
                .map(|e| e.buf.modeled_bytes())
                .sum();
            if resident + incoming <= budget {
                return true;
            }
            let pos = inner
                .device
                .iter()
                .position(|e| e.device_id == device_id)
                .expect("resident > 0 implies an entry");
            inner.device.remove(pos);
            run.evictions += 1;
            inner.totals.evictions += 1;
        }
    }

    /// Drop every resident table of `device_id` (memory-pressure escape
    /// hatch: frees the allocations so the engine can retry).
    pub fn evict_device(&self, device_id: u64, run: &mut TableCacheStats) {
        let mut inner = self.inner.lock().unwrap();
        let before = inner.device.len();
        inner.device.retain(|e| e.device_id != device_id);
        let evicted = (before - inner.device.len()) as u64;
        run.evictions += evicted;
        inner.totals.evictions += evicted;
    }

    /// Insert a freshly uploaded resident table (counts the device miss
    /// that caused the upload).
    pub fn insert_device(
        &self,
        device_id: u64,
        key: TableKey,
        buf: DeviceBuffer<f64>,
        run: &mut TableCacheStats,
    ) {
        let mut inner = self.inner.lock().unwrap();
        run.device_misses += 1;
        inner.totals.device_misses += 1;
        inner.device.push_back(DeviceEntry {
            device_id,
            key,
            buf,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_sim::{Device, DeviceProps};

    fn demo() -> (ScanGeometry, ReconstructionConfig) {
        (
            ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap(),
            ReconstructionConfig::new(-400.0, 400.0, 40),
        )
    }

    #[test]
    fn key_is_stable_and_geometry_sensitive() {
        let (geom, cfg) = demo();
        assert_eq!(TableKey::new(&geom, &cfg), TableKey::new(&geom, &cfg));
        let mut other = geom.clone();
        other.wire.radius += 1e-12;
        assert_ne!(TableKey::new(&geom, &cfg), TableKey::new(&other, &cfg));
        let mut cfg2 = cfg.clone();
        cfg2.n_depth_bins += 1;
        assert_ne!(TableKey::new(&geom, &cfg), TableKey::new(&geom, &cfg2));
    }

    #[test]
    fn host_cache_computes_once_and_returns_identical_tables() {
        let (geom, cfg) = demo();
        let mapper = geom.mapper().unwrap();
        let cache = DepthTableCache::new(0);
        let key = TableKey::new(&geom, &cfg);
        let mut run = TableCacheStats::default();
        let first = cache.host_tables(&key, &mut run, || {
            DepthTables::compute(&geom, &mapper, &cfg)
        });
        let second = cache.host_tables(&key, &mut run, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(run.host_hits, 1);
        assert_eq!(run.host_misses, 1);
        let fresh = DepthTables::compute(&geom, &mapper, &cfg);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&second.depths), bits(&fresh.depths));
    }

    #[test]
    fn slice_rows_matches_per_slab_layout() {
        let (geom, cfg) = demo();
        let mapper = geom.mapper().unwrap();
        let full = DepthTables::compute(&geom, &mapper, &cfg);
        // Recompute rows 2..5 the way the per-slab path does.
        let (row0, rows) = (2usize, 3usize);
        let mut slab = Vec::new();
        for z in 0..full.n_images {
            let wire = geom.wire.center_unchecked(z as f64);
            for r in row0..row0 + rows {
                for c in 0..full.n_cols {
                    let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                    slab.push(mapper.depth(p, wire, cfg.wire_edge).unwrap_or(f64::NAN));
                }
            }
        }
        let sliced = full.slice_rows(row0, rows);
        assert_eq!(
            sliced.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slab.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn device_lru_respects_budget_and_counts_evictions() {
        let device = Device::new(DeviceProps::tiny(1 << 20));
        let cache = DepthTableCache::new(2048);
        let mut run = TableCacheStats::default();
        let (geom, cfg) = demo();
        let key = |i: usize| {
            let mut cfg = cfg.clone();
            cfg.n_depth_bins = 10 + i;
            TableKey::new(&geom, &cfg)
        };
        // Each entry is 1024 B; budget fits two.
        for i in 0..3 {
            let incoming = 1024;
            assert!(cache.evict_to_fit(device.id(), incoming, &mut run));
            let buf = device.alloc::<f64>(128).unwrap();
            cache.insert_device(device.id(), key(i), buf, &mut run);
        }
        assert_eq!(run.device_misses, 3);
        assert_eq!(run.evictions, 1, "third insert evicted the LRU entry");
        assert_eq!(cache.resident_bytes(device.id()), 2048);
        assert!(
            cache
                .lookup_device(device.id(), &key(0), &mut run)
                .is_none(),
            "oldest entry evicted"
        );
        assert!(cache
            .lookup_device(device.id(), &key(2), &mut run)
            .is_some());
        assert_eq!(run.device_hits, 1);
        // Oversized incoming refuses without evicting the survivors.
        assert!(!cache.evict_to_fit(device.id(), 4096, &mut run));
        assert_eq!(cache.resident_bytes(device.id()), 2048);
        // Budget is per device: a second device starts from zero.
        let other = Device::new(DeviceProps::tiny(1 << 20));
        assert_eq!(cache.resident_bytes(other.id()), 0);
        assert!(cache.evict_to_fit(other.id(), 2048, &mut run));
        // Full eviction frees everything.
        cache.evict_device(device.id(), &mut run);
        assert_eq!(cache.resident_bytes(device.id()), 0);
    }
}
