//! The paper's CUDA design, executed on the simulated device.
//!
//! This module reproduces the program structure of §III of the paper:
//!
//! * **Row-slab chunking** (Fig 2): the stack never fits device memory as a
//!   whole; the host streams `rows_per_slab` detector rows of *every* image
//!   to the device, reconstructs them, and copies the partial depth image
//!   back. [`fit_rows_per_slab`] picks the largest slab that fits the
//!   modeled memory, mirroring the M2070's 6 GB cap.
//! * **Thread mapping** (Fig 6): one kernel thread per
//!   `(row, col, image-pair)` element. The launch is 1-D with in-kernel
//!   index arithmetic — the "1D array" design the paper selects after its
//!   Fig 4 comparison — with the pair index fastest so that, under the
//!   deterministic executor, per-bin accumulation order matches the CPU
//!   baseline exactly.
//! * **`setTwo` kernel**: computes the differential intensity, triangulates
//!   both wire edges via the same [`plan_pair`] routine the CPU uses, and
//!   accumulates into the depth image with the CAS-loop
//!   `atomicAdd(double)` — multiple `z`-threads of one pixel race on the
//!   same output bins, exactly why the paper needed the atomic.
//! * **Layouts** (Fig 4): [`Layout::Flat1d`] ships one contiguous buffer
//!   per slab; [`Layout::Pointer3d`] reproduces the rejected design — one
//!   allocation per image (and per output bin) plus device pointer tables —
//!   paying per-transfer latency, pointer shipping, and an extra pointer
//!   dereference per access.
//! * **Copy/compute overlap** ([`reconstruct_overlapped`]): the
//!   double-buffered two-stream pipeline the paper's related work discusses
//!   but its implementation does not do; kept as an ablation.

use cuda_sim::{Device, DeviceBuffer, LaunchConfig, Meters, StreamId};
use laue_geometry::{DepthMapper, Vec3};

use crate::config::ReconstructionConfig;
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::input::SlabSource;
use crate::output::DepthImage;
use crate::pair::{plan_pair, PairPlan};
use crate::stats::ReconStats;
use crate::Result;

/// Device data layout for the image stack and output (the paper's Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One flat buffer per slab; kernels do 1-D↔3-D index arithmetic.
    Flat1d,
    /// One allocation per image / per output bin plus device pointer
    /// tables; more transfers, extra pointer chases.
    Pointer3d,
}

/// Where the edge-depth triangulation happens.
///
/// The paper's kernel signature ships precomputed `edge` / `firstedge` /
/// `gpuPointArray` tables, i.e. parts of the triangulation are done on the
/// host and traded against PCIe transfer. The two modes below bracket that
/// design space; both produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangulation {
    /// Each kernel thread triangulates its own pair (compute on device).
    InKernel,
    /// The host precomputes the per-(pixel, step) depth table and ships it
    /// with each slab (transfer instead of device compute; host pays the
    /// triangulation FLOPs once per slab).
    HostTables,
}

/// How kernel threads are mapped onto the `(row, col, pair)` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMapping {
    /// 1-D launch with in-kernel index arithmetic — the layout-independent
    /// mapping this reproduction defaults to (deposit order matches the CPU
    /// loop nest, enabling bitwise equivalence).
    Linear,
    /// The paper's Fig 6 mapping: 3-D blocks over `(rows, cols, pairs)`
    /// (its example launches a `(2, 9, 4)` block). Fermi forbids `grid.z
    /// > 1`, so pair-blocks beyond `block.z` fold into `grid.x`, exactly as
    /// > era CUDA code did.
    Grid3d,
}

/// Full GPU-engine options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuOptions {
    pub layout: Layout,
    pub triangulation: Triangulation,
    pub mapping: ThreadMapping,
}

impl Default for GpuOptions {
    fn default() -> Self {
        GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::InKernel,
            mapping: ThreadMapping::Linear,
        }
    }
}

/// Trace-slot assignments for the `set_two` kernel.
const TRACE_BELOW_CUTOFF: usize = 0;
const TRACE_INVALID: usize = 1;
const TRACE_OUT_OF_RANGE: usize = 2;
const TRACE_DEPOSITED: usize = 3;
const TRACE_DEPOSITS: usize = 4;

/// Threads per block for the 1-D launches (the paper's hardware caps at
/// 1024; 256 keeps plenty of blocks in flight).
const BLOCK_SIZE: u64 = 256;

/// How many times a transient transfer fault is retried before giving up.
const MAX_TRANSFER_RETRIES: u32 = 3;

/// First retry backoff (virtual seconds); doubles on every further attempt
/// of the same copy, so the worst case per copy is `base · (2^retries − 1)`.
const BACKOFF_BASE_S: f64 = 50e-6;

/// What the engine did to survive device trouble during one reconstruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Times the slab plan was halved and the slab re-run after device OOM.
    pub replans: u32,
    /// Transient transfer faults absorbed by retrying the copy.
    pub transfer_retries: u32,
}

/// Run a host↔device copy, absorbing transient faults with bounded,
/// exponentially growing backoff (idle time on `stream` in virtual time).
/// Non-transient errors — OOM, lost device — propagate immediately.
fn retry_transfer<T>(
    device: &Device,
    stream: StreamId,
    recovery: &mut RecoveryLog,
    mut copy: impl FnMut() -> cuda_sim::Result<T>,
) -> Result<T> {
    let mut backoff = BACKOFF_BASE_S;
    let mut attempts = 0u32;
    loop {
        match copy() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempts < MAX_TRANSFER_RETRIES => {
                attempts += 1;
                recovery.transfer_retries += 1;
                device.delay(stream, backoff);
                backoff *= 2.0;
            }
            Err(e) => return Err(CoreError::Device(e)),
        }
    }
}

/// Result of a GPU reconstruction.
#[derive(Debug, Clone)]
pub struct GpuReconstruction {
    /// The depth-resolved output.
    pub image: DepthImage,
    /// Outcome counters (from the kernel's trace instrumentation).
    pub stats: ReconStats,
    /// Transfer/compute meters for the whole run.
    pub meters: Meters,
    /// Rows shipped per slab.
    pub rows_per_slab: usize,
    /// Number of slabs processed.
    pub n_slabs: usize,
    /// Virtual makespan (equals `meters.serial_total_s()` for the
    /// single-stream pipeline; smaller when overlapped).
    pub elapsed_s: f64,
    /// Peak modeled device memory, bytes.
    pub peak_device_mem: u64,
    /// Host-side triangulation FLOPs spent building depth tables
    /// ([`Triangulation::HostTables`] only; model with `HostProps`).
    pub host_table_flops: u64,
    /// What the engine did to survive device trouble (re-plans, retries).
    pub recovery: RecoveryLog,
}

/// Modeled device bytes needed for a slab of `rows` detector rows.
fn slab_bytes(
    rows: usize,
    n_images: usize,
    n_cols: usize,
    n_bins: usize,
    opts: GpuOptions,
    double_buffered: bool,
) -> u64 {
    let layout = opts.layout;
    let row = (n_cols * 8) as u64;
    let mut intensity = n_images as u64 * rows as u64 * row;
    if opts.triangulation == Triangulation::HostTables {
        // The depth table has the same (steps × rows × cols) footprint.
        intensity *= 2;
    }
    let pixels = rows as u64 * n_cols as u64 * 3 * 8;
    let output = n_bins as u64 * rows as u64 * row;
    let tables = match layout {
        Layout::Flat1d => 0,
        Layout::Pointer3d => (n_images as u64 + n_bins as u64) * 8,
    };
    // Alignment padding: every allocation rounds up to 256 bytes; the
    // pointer layout makes one allocation per image/bin.
    let allocs: u64 = match layout {
        Layout::Flat1d => 4,
        Layout::Pointer3d => (n_images + n_bins) as u64 + 4,
    };
    let base = intensity + pixels + output + tables + allocs * 256;
    if double_buffered {
        2 * base
    } else {
        base
    }
}

/// Largest `rows_per_slab` whose working set fits in `budget` bytes.
pub fn fit_rows_per_slab(
    budget: u64,
    n_rows: usize,
    n_images: usize,
    n_cols: usize,
    n_bins: usize,
    opts: GpuOptions,
    double_buffered: bool,
) -> Result<usize> {
    // Leave headroom for the wire-centre table and fragmentation.
    let budget = budget - budget / 10;
    let mut best = 0usize;
    let mut lo = 1usize;
    let mut hi = n_rows;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        if slab_bytes(mid, n_images, n_cols, n_bins, opts, double_buffered) <= budget {
            best = mid;
            lo = mid + 1;
        } else {
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        }
    }
    if best == 0 {
        return Err(CoreError::DeviceCapacity {
            needed: slab_bytes(1, n_images, n_cols, n_bins, opts, double_buffered),
            budget,
        });
    }
    Ok(best)
}

/// Per-slab device-resident data, under either layout.
pub(crate) enum SlabBuffers {
    Flat {
        intensity: DeviceBuffer<f64>,
        output: DeviceBuffer<f64>,
    },
    Pointer {
        /// One buffer per image (slab rows × cols each).
        images: Vec<DeviceBuffer<f64>>,
        /// One buffer per output bin (slab rows × cols each).
        bins: Vec<DeviceBuffer<f64>>,
        /// Device copies of the pointer tables (transfer + storage cost;
        /// the table contents are the modeled addresses).
        _image_table: DeviceBuffer<u64>,
        _bin_table: DeviceBuffer<u64>,
    },
}

pub(crate) struct SlabUpload {
    buffers: SlabBuffers,
    pub(crate) mapping: ThreadMapping,
    pixels: DeviceBuffer<f64>,
    /// Precomputed per-(step, pixel) edge depths (HostTables mode).
    depth_table: Option<DeviceBuffer<f64>>,
    /// Host FLOPs spent building the depth table.
    host_flops: u64,
    rows: usize,
    row0: usize,
    /// Virtual time when the last H2D copy of this slab completes.
    ready_at: f64,
}

/// Upload one slab's data under the chosen layout.
#[allow(clippy::too_many_arguments)]
pub(crate) fn upload_slab(
    device: &Device,
    stream: StreamId,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    row0: usize,
    rows: usize,
    recovery: &mut RecoveryLog,
) -> Result<SlabUpload> {
    let layout = opts.layout;
    let n_images = source.n_images();
    let n_cols = source.n_cols();
    let slab = source.read_slab(row0, rows)?;
    debug_assert_eq!(slab.len(), n_images * rows * n_cols);

    // Pixel positions for the slab (the `pixel_xyz` table).
    let mut pix = Vec::with_capacity(rows * n_cols * 3);
    for r in row0..row0 + rows {
        for c in 0..n_cols {
            let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
            pix.extend_from_slice(&[p.x, p.y, p.z]);
        }
    }
    let pixels = device.alloc::<f64>(pix.len())?;
    let mut ready_at = retry_transfer(device, stream, recovery, || {
        device.memcpy_htod_on(stream, &pixels, &pix)
    })?
    .end_s;

    // Precomputed depth tables (the paper's `edge`/`gpuPointArray` design):
    // depths[(z · rows + r) · cols + c], NaN where no tangent exists.
    let mut host_flops = 0u64;
    let depth_table = if opts.triangulation == Triangulation::HostTables {
        let mut table = Vec::with_capacity(n_images * rows * n_cols);
        for z in 0..n_images {
            let wire = geom.wire.center_unchecked(z as f64);
            for r in row0..row0 + rows {
                for c in 0..n_cols {
                    let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                    host_flops += crate::pair::FLOPS_PER_DEPTH;
                    table.push(mapper.depth(p, wire, cfg.wire_edge).unwrap_or(f64::NAN));
                }
            }
        }
        let buf = device.alloc::<f64>(table.len())?;
        let span = retry_transfer(device, stream, recovery, || {
            device.memcpy_htod_on(stream, &buf, &table)
        })?;
        ready_at = ready_at.max(span.end_s);
        Some(buf)
    } else {
        None
    };

    let buffers = match layout {
        Layout::Flat1d => {
            let intensity = device.alloc::<f64>(slab.len())?;
            let span = retry_transfer(device, stream, recovery, || {
                device.memcpy_htod_on(stream, &intensity, &slab)
            })?;
            ready_at = ready_at.max(span.end_s);
            let output = device.alloc_zeroed::<f64>(cfg.n_depth_bins * rows * n_cols)?;
            SlabBuffers::Flat { intensity, output }
        }
        Layout::Pointer3d => {
            // One allocation + one memcpy per image: the "3D array" design.
            let per_image = rows * n_cols;
            let mut images = Vec::with_capacity(n_images);
            for z in 0..n_images {
                let buf = device.alloc::<f64>(per_image)?;
                let span = retry_transfer(device, stream, recovery, || {
                    device.memcpy_htod_on(stream, &buf, &slab[z * per_image..(z + 1) * per_image])
                })?;
                ready_at = ready_at.max(span.end_s);
                images.push(buf);
            }
            let mut bins = Vec::with_capacity(cfg.n_depth_bins);
            for _ in 0..cfg.n_depth_bins {
                bins.push(device.alloc_zeroed::<f64>(per_image)?);
            }
            // The pointer tables themselves must also be shipped.
            let image_ptrs: Vec<u64> = images.iter().map(|b| b.device_addr()).collect();
            let bin_ptrs: Vec<u64> = bins.iter().map(|b| b.device_addr()).collect();
            let image_table = device.alloc::<u64>(image_ptrs.len())?;
            let span = retry_transfer(device, stream, recovery, || {
                device.memcpy_htod_on(stream, &image_table, &image_ptrs)
            })?;
            ready_at = ready_at.max(span.end_s);
            let bin_table = device.alloc::<u64>(bin_ptrs.len())?;
            let span = retry_transfer(device, stream, recovery, || {
                device.memcpy_htod_on(stream, &bin_table, &bin_ptrs)
            })?;
            ready_at = ready_at.max(span.end_s);
            SlabBuffers::Pointer {
                images,
                bins,
                _image_table: image_table,
                _bin_table: bin_table,
            }
        }
    };
    Ok(SlabUpload {
        buffers,
        mapping: opts.mapping,
        pixels,
        depth_table,
        host_flops,
        rows,
        row0,
        ready_at,
    })
}

/// Launch the `set_two` kernel for one uploaded slab.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_set_two(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    wires: &DeviceBuffer<f64>,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    n_images: usize,
    n_cols: usize,
) -> Result<cuda_sim::LaunchRecord> {
    let rows = upload.rows;
    let n_pairs = n_images - 1;
    let total = (rows * n_cols * n_pairs) as u64;
    let mapping = upload.mapping;
    // Fig 6 mapping: 3-D blocks over (rows, cols, pairs); pair-blocks past
    // block.z fold into grid.x to satisfy Fermi's grid.z = 1.
    let block = cuda_sim::Dim3::new(4, 8, (n_pairs as u64).clamp(1, 8));
    let rows_blocks = (rows as u64).div_ceil(block.x);
    let pair_blocks = (n_pairs as u64).div_ceil(block.z);
    let grid3d = cuda_sim::Dim3::new(
        rows_blocks * pair_blocks,
        (n_cols as u64).div_ceil(block.y),
        1,
    );
    let launch_cfg = match mapping {
        ThreadMapping::Linear => LaunchConfig::linear(total, BLOCK_SIZE),
        ThreadMapping::Grid3d => LaunchConfig::new(grid3d, block),
    };
    let kernel = |ctx: &mut cuda_sim::ThreadCtx<'_>| {
        let (r, c, z) = match mapping {
            ThreadMapping::Linear => {
                let id = ctx.global_id().x as usize;
                if id as u64 >= total {
                    return;
                }
                // Pair index fastest: deposits into one pixel's bins happen
                // in step order, matching the CPU loop nest.
                let z = id % n_pairs;
                let pc = id / n_pairs;
                (pc / n_cols, pc % n_cols, z)
            }
            ThreadMapping::Grid3d => {
                // Unfold the pair-block component from grid.x.
                let bx = ctx.block_idx.x % rows_blocks;
                let pz = ctx.block_idx.x / rows_blocks;
                let r = (bx * ctx.block_dim.x + ctx.thread_idx.x) as usize;
                let c = ctx.global_id().y as usize;
                let z = (pz * ctx.block_dim.z + ctx.thread_idx.z) as usize;
                if r >= rows || c >= n_cols || z >= n_pairs {
                    return;
                }
                (r, c, z)
            }
        };
        // The 1-D↔3-D index conversions the paper trades against pointer
        // shipping (§III-B).
        ctx.charge_flops(6);

        let in_kernel = upload.depth_table.is_none();
        // In table mode the kernel never touches the pixel/wire arrays.
        let (pixel, w0, w1) = if in_kernel {
            let pi = (r * n_cols + c) * 3;
            (
                Vec3::new(
                    ctx.read(&upload.pixels, pi),
                    ctx.read(&upload.pixels, pi + 1),
                    ctx.read(&upload.pixels, pi + 2),
                ),
                Vec3::new(
                    ctx.read(wires, z * 3),
                    ctx.read(wires, z * 3 + 1),
                    ctx.read(wires, z * 3 + 2),
                ),
                Vec3::new(
                    ctx.read(wires, (z + 1) * 3),
                    ctx.read(wires, (z + 1) * 3 + 1),
                    ctx.read(wires, (z + 1) * 3 + 2),
                ),
            )
        } else {
            (Vec3::ZERO, Vec3::ZERO, Vec3::ZERO)
        };
        let pixel_in_slab = r * n_cols + c;
        let (i0, i1) = match &upload.buffers {
            SlabBuffers::Flat { intensity, .. } => (
                ctx.read(intensity, (z * rows + r) * n_cols + c),
                ctx.read(intensity, ((z + 1) * rows + r) * n_cols + c),
            ),
            SlabBuffers::Pointer { images, .. } => {
                // Pointer chase: fetch the row pointer, then the element.
                ctx.charge_mem_bytes(16);
                (
                    ctx.read(&images[z], pixel_in_slab),
                    ctx.read(&images[z + 1], pixel_in_slab),
                )
            }
        };

        let mut flops = 0u64;
        let plan = match &upload.depth_table {
            None => plan_pair(mapper, cfg, pixel, w0, w1, i0, i1, &mut flops),
            Some(table) => {
                // Table mode: the differential/cutoff logic is identical,
                // but the depths come from the precomputed array.
                let delta = crate::pair::differential(cfg, i0, i1);
                flops += crate::pair::FLOPS_PER_PAIR;
                if delta.abs() <= cfg.intensity_cutoff {
                    PairPlan::BelowCutoff
                } else {
                    let d0 = ctx.read(table, (z * rows + r) * n_cols + c);
                    let d1 = ctx.read(table, ((z + 1) * rows + r) * n_cols + c);
                    crate::pair::plan_from_band(cfg, delta, d0, d1, &mut flops)
                }
            }
        };
        match plan {
            PairPlan::BelowCutoff => ctx.trace(TRACE_BELOW_CUTOFF),
            PairPlan::InvalidGeometry => ctx.trace(TRACE_INVALID),
            PairPlan::OutOfRange => ctx.trace(TRACE_OUT_OF_RANGE),
            PairPlan::Deposit(plan) => {
                ctx.trace(TRACE_DEPOSITED);
                for bin in plan.first_bin..plan.last_bin {
                    let amount = plan.amount(bin, cfg);
                    if amount != 0.0 {
                        match &upload.buffers {
                            SlabBuffers::Flat { output, .. } => {
                                ctx.atomic_add_f64(output, (bin * rows + r) * n_cols + c, amount);
                            }
                            SlabBuffers::Pointer { bins, .. } => {
                                ctx.charge_mem_bytes(8); // bin-pointer fetch
                                ctx.atomic_add_f64(&bins[bin], pixel_in_slab, amount);
                            }
                        }
                        ctx.trace(TRACE_DEPOSITS);
                    }
                }
            }
        }
        ctx.charge_flops(flops);
    };
    device
        .launch_on(stream, "set_two", launch_cfg, kernel)
        .map_err(CoreError::from)
}

/// Download one slab's output and merge it into the full image.
pub(crate) fn download_slab(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    image: &mut DepthImage,
    cfg: &ReconstructionConfig,
    n_cols: usize,
    recovery: &mut RecoveryLog,
) -> Result<()> {
    let rows = upload.rows;
    match &upload.buffers {
        SlabBuffers::Flat { output, .. } => {
            let mut host = vec![0.0f64; cfg.n_depth_bins * rows * n_cols];
            retry_transfer(device, stream, recovery, || {
                device.memcpy_dtoh_on(stream, output, &mut host)
            })?;
            for bin in 0..cfg.n_depth_bins {
                for r in 0..rows {
                    for c in 0..n_cols {
                        *image.at_mut(bin, upload.row0 + r, c) =
                            host[(bin * rows + r) * n_cols + c];
                    }
                }
            }
        }
        SlabBuffers::Pointer { bins, .. } => {
            // One D2H per bin: the 3D layout pays latency both ways.
            let mut host = vec![0.0f64; rows * n_cols];
            for (bin, buf) in bins.iter().enumerate() {
                retry_transfer(device, stream, recovery, || {
                    device.memcpy_dtoh_on(stream, buf, &mut host)
                })?;
                for r in 0..rows {
                    for c in 0..n_cols {
                        *image.at_mut(bin, upload.row0 + r, c) = host[r * n_cols + c];
                    }
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn stats_from_records(device: &Device, pairs_total: u64) -> ReconStats {
    let mut stats = ReconStats::default();
    for rec in device.records() {
        if rec.name != "set_two" {
            continue;
        }
        stats.pairs_below_cutoff += rec.traces[TRACE_BELOW_CUTOFF];
        stats.pairs_invalid_geometry += rec.traces[TRACE_INVALID];
        stats.pairs_out_of_range += rec.traces[TRACE_OUT_OF_RANGE];
        stats.pairs_deposited += rec.traces[TRACE_DEPOSITED];
        stats.deposits += rec.traces[TRACE_DEPOSITS];
    }
    stats.pairs_total = pairs_total;
    stats
}

pub(crate) fn validate_inputs(
    source: &dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
) -> Result<()> {
    cfg.validate()?;
    if source.n_images() != geom.wire.n_steps {
        return Err(CoreError::ShapeMismatch(format!(
            "source has {} images but the wire scan has {} steps",
            source.n_images(),
            geom.wire.n_steps
        )));
    }
    if source.n_rows() != geom.detector.n_rows || source.n_cols() != geom.detector.n_cols {
        return Err(CoreError::ShapeMismatch(format!(
            "source is {}×{} pixels but the detector is {}×{}",
            source.n_rows(),
            source.n_cols(),
            geom.detector.n_rows,
            geom.detector.n_cols
        )));
    }
    if source.n_images() < 2 {
        return Err(CoreError::ShapeMismatch("need at least two images".into()));
    }
    Ok(())
}

/// Reconstruct with the paper's single-stream pipeline: for each row slab,
/// copy in → `set_two` kernel → copy out (no overlap, like the original).
pub fn reconstruct(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    layout: Layout,
) -> Result<GpuReconstruction> {
    reconstruct_with_options(
        device,
        source,
        geom,
        cfg,
        GpuOptions {
            layout,
            triangulation: Triangulation::InKernel,
            ..GpuOptions::default()
        },
    )
}

/// As [`reconstruct`], with the full option set (layout × triangulation).
pub fn reconstruct_with_options(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
) -> Result<GpuReconstruction> {
    validate_inputs(source, geom, cfg)?;
    let mapper = geom.mapper()?;
    let (n_images, n_rows, n_cols) = (source.n_images(), source.n_rows(), source.n_cols());

    device.reset_meters();
    let mut recovery = RecoveryLog::default();
    // Wire centres, shipped once (interleaved x, y, z).
    let mut wire_flat = Vec::with_capacity(geom.wire.n_steps * 3);
    for w in geom.wire.centers() {
        wire_flat.extend_from_slice(&[w.x, w.y, w.z]);
    }
    let wires = device.alloc::<f64>(wire_flat.len())?;
    retry_transfer(device, StreamId::DEFAULT, &mut recovery, || {
        device.memcpy_htod(&wires, &wire_flat)
    })?;

    let budget = device.mem_capacity() - device.mem_used();
    let mut rows_per_slab = match cfg.rows_per_slab {
        Some(r) => r.min(n_rows),
        None => fit_rows_per_slab(
            budget,
            n_rows,
            n_images,
            n_cols,
            cfg.n_depth_bins,
            opts,
            false,
        )?,
    };

    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows, n_cols);
    let mut n_slabs = 0usize;
    let mut host_table_flops = 0u64;
    let mut row0 = 0usize;
    while row0 < n_rows {
        let rows = rows_per_slab.min(n_rows - row0);
        // Run one slab end to end; on device OOM halve the plan and re-run
        // the same rows (correctness is chunking-invariant: the download is
        // an assignment over exactly the slab's rows, so a re-run at a
        // smaller size overwrites cleanly and nothing double-counts).
        let attempt = (|| -> Result<u64> {
            let upload = upload_slab(
                device,
                StreamId::DEFAULT,
                source,
                geom,
                &mapper,
                cfg,
                opts,
                row0,
                rows,
                &mut recovery,
            )?;
            launch_set_two(
                device,
                StreamId::DEFAULT,
                &upload,
                &wires,
                &mapper,
                cfg,
                n_images,
                n_cols,
            )?;
            download_slab(
                device,
                StreamId::DEFAULT,
                &upload,
                &mut image,
                cfg,
                n_cols,
                &mut recovery,
            )?;
            Ok(upload.host_flops)
            // Buffers drop here, freeing device memory for the next slab.
        })();
        match attempt {
            Ok(flops) => {
                host_table_flops += flops;
                n_slabs += 1;
                row0 += rows;
            }
            Err(CoreError::Device(cuda_sim::SimError::OutOfMemory { .. })) if rows_per_slab > 1 => {
                rows_per_slab /= 2;
                recovery.replans += 1;
            }
            Err(e) => return Err(e),
        }
    }

    let elapsed_s = device.synchronize();
    let pairs_total = (n_rows * n_cols * (n_images - 1)) as u64;
    Ok(GpuReconstruction {
        image,
        stats: stats_from_records(device, pairs_total),
        meters: device.meters(),
        rows_per_slab,
        n_slabs,
        elapsed_s,
        peak_device_mem: device.mem_peak(),
        host_table_flops,
        recovery,
    })
}

/// Double-buffered variant: slab `i+1` uploads on a copy stream while slab
/// `i` computes — the overlap optimisation the paper leaves as future work.
/// Only the [`Layout::Flat1d`] layout is supported (the pointer layout's
/// transfer storm makes overlap moot).
///
/// Transient transfer faults are retried like the serial pipeline's, but a
/// device OOM propagates instead of triggering a re-plan: with two slabs in
/// flight the failed allocation belongs to a pipeline stage whose partner
/// is still executing, so the caller should fall back to
/// [`reconstruct_with_options`] (which re-plans) or to the CPU engine.
pub fn reconstruct_overlapped(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
) -> Result<GpuReconstruction> {
    validate_inputs(source, geom, cfg)?;
    let mapper = geom.mapper()?;
    let (n_images, n_rows, n_cols) = (source.n_images(), source.n_rows(), source.n_cols());

    device.reset_meters();
    let mut recovery = RecoveryLog::default();
    let copy_stream = device.create_stream();
    let compute_stream = device.create_stream();

    let mut wire_flat = Vec::with_capacity(geom.wire.n_steps * 3);
    for w in geom.wire.centers() {
        wire_flat.extend_from_slice(&[w.x, w.y, w.z]);
    }
    let wires = device.alloc::<f64>(wire_flat.len())?;
    retry_transfer(device, copy_stream, &mut recovery, || {
        device.memcpy_htod_on(copy_stream, &wires, &wire_flat)
    })?;

    let budget = device.mem_capacity() - device.mem_used();
    let rows_per_slab = match cfg.rows_per_slab {
        Some(r) => r.min(n_rows),
        None => fit_rows_per_slab(
            budget,
            n_rows,
            n_images,
            n_cols,
            cfg.n_depth_bins,
            GpuOptions::default(),
            true,
        )?,
    };

    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows, n_cols);
    let mut slab_starts = Vec::new();
    let mut row0 = 0usize;
    while row0 < n_rows {
        let rows = rows_per_slab.min(n_rows - row0);
        slab_starts.push((row0, rows));
        row0 += rows;
    }

    // Pipeline: in-flight holds the previous slab until its kernel is done.
    let mut in_flight: Option<(SlabUpload, f64)> = None; // (upload, kernel end)
    let mut n_slabs = 0usize;
    for &(row0, rows) in &slab_starts {
        // Upload slab on the copy stream. Reusing freed memory is safe in
        // virtual time because the previous slab's buffers are only dropped
        // after its kernel's end time has been sequenced before this
        // upload's start via the wait below.
        let upload = upload_slab(
            device,
            copy_stream,
            source,
            geom,
            &mapper,
            cfg,
            GpuOptions::default(),
            row0,
            rows,
            &mut recovery,
        )?;
        if let Some((prev, prev_end)) = in_flight.take() {
            // Drain the previous slab: download after its kernel.
            device.wait_until(copy_stream, prev_end);
            download_slab(
                device,
                compute_stream,
                &prev,
                &mut image,
                cfg,
                n_cols,
                &mut recovery,
            )?;
        }
        // The kernel must wait for this slab's copies.
        device.wait_until(compute_stream, upload.ready_at);
        let rec = launch_set_two(
            device,
            compute_stream,
            &upload,
            &wires,
            &mapper,
            cfg,
            n_images,
            n_cols,
        )?;
        in_flight = Some((upload, rec.end_s));
        n_slabs += 1;
    }
    if let Some((prev, _)) = in_flight.take() {
        download_slab(
            device,
            compute_stream,
            &prev,
            &mut image,
            cfg,
            n_cols,
            &mut recovery,
        )?;
    }

    let elapsed_s = device.synchronize();
    let pairs_total = (n_rows * n_cols * (n_images - 1)) as u64;
    Ok(GpuReconstruction {
        image,
        stats: stats_from_records(device, pairs_total),
        meters: device.meters(),
        rows_per_slab,
        n_slabs,
        elapsed_s,
        peak_device_mem: device.mem_peak(),
        host_table_flops: 0,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;
    use crate::input::{InMemorySlabSource, ScanView};
    use cuda_sim::{DeviceProps, ExecMode};

    fn demo() -> (ScanGeometry, ReconstructionConfig, Vec<f64>) {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        let cfg = ReconstructionConfig::new(-400.0, 400.0, 40);
        let (p, m, n) = (10, 6, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                900.0 - 31.0 * z as f64 - (px % 5) as f64 * 17.0
            })
            .collect();
        (geom, cfg, data)
    }

    fn big_device() -> Device {
        Device::new(DeviceProps::tiny(64 * 1024 * 1024))
    }

    #[test]
    fn gpu_matches_cpu_bitwise_when_sequential() {
        let (geom, cfg, data) = demo();
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let gpu_out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(
            cpu_out.image.data, gpu_out.image.data,
            "sequential executor must reproduce the CPU bit-for-bit"
        );
        assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    #[test]
    fn pointer_layout_same_result_more_transfers() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let flat = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let ptr = reconstruct(&device, &mut source, &geom, &cfg, Layout::Pointer3d).unwrap();
        assert_eq!(
            flat.image.data, ptr.image.data,
            "layouts agree functionally"
        );
        assert!(
            ptr.meters.transfers > flat.meters.transfers,
            "pointer layout must pay more transfers: {} vs {}",
            ptr.meters.transfers,
            flat.meters.transfers
        );
        assert!(
            ptr.meters.comm_time_s > flat.meters.comm_time_s,
            "and more communication time"
        );
        assert!(
            ptr.elapsed_s > flat.elapsed_s,
            "Fig 4: 1D beats 3D end to end"
        );
    }

    #[test]
    fn chunking_is_invariant() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut reference = None;
        for rows in [1usize, 2, 3, 6] {
            let mut cfg = cfg.clone();
            cfg.rows_per_slab = Some(rows);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
            assert_eq!(out.n_slabs, 6usize.div_ceil(rows));
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "rows_per_slab = {rows}"),
            }
        }
    }

    #[test]
    fn memory_cap_forces_small_slabs() {
        let (geom, cfg, data) = demo();
        // Budget only fits ~2 rows: intensity 10 img × 6 cols × 8 B = 480 B
        // per row, output 40 bins × 48 B per row...
        let need_1 = slab_bytes(1, 10, 6, 40, GpuOptions::default(), false);
        let device = Device::new(DeviceProps::tiny(3 * need_1));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.rows_per_slab < 6,
            "cap must force chunking: {} rows/slab",
            out.rows_per_slab
        );
        assert!(out.n_slabs >= 2);
        assert!(out.peak_device_mem <= device.mem_capacity());
    }

    #[test]
    fn device_too_small_is_a_clean_error() {
        let (geom, cfg, data) = demo();
        let device = Device::new(DeviceProps::tiny(2048));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(e @ CoreError::DeviceCapacity { needed, budget }) => {
                assert!(needed > budget, "{needed} must exceed {budget}");
                assert!(e.to_string().contains("detector row"));
            }
            other => panic!("expected clean OOM-at-fit error, got {other:?}"),
        }
    }

    #[test]
    fn injected_oom_replans_to_identical_output() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(
            clean.recovery,
            RecoveryLog::default(),
            "no faults, no recovery"
        );
        assert_eq!(clean.n_slabs, 1, "everything fits in one slab");

        // Fail an allocation mid-run: the engine halves the slab plan and
        // re-runs the same rows, converging to the identical image.
        let device = big_device();
        device.set_fault_plan(cuda_sim::FaultPlan::new(1).fail_nth_alloc(3));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.replans >= 1, "OOM must trigger a re-plan");
        assert!(out.rows_per_slab < clean.rows_per_slab);
        assert!(out.n_slabs > clean.n_slabs);
        assert_eq!(
            out.image.data, clean.image.data,
            "re-planned run is bitwise identical"
        );
        assert_eq!(out.stats, clean.stats);
    }

    #[test]
    fn transient_transfer_faults_are_retried_to_identical_output() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(99)
                .fail_nth_h2d(2)
                .fail_nth_d2h(1)
                .h2d_fault_rate(0.3)
                .d2h_fault_rate(0.3),
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.recovery.transfer_retries > 0,
            "p = 0.3 over many copies must fire"
        );
        assert_eq!(out.recovery.replans, 0);
        assert_eq!(
            out.image.data, clean.image.data,
            "retries leave the data intact"
        );
        assert_eq!(out.stats, clean.stats);
        assert!(
            out.elapsed_s > clean.elapsed_s,
            "failed copies and backoff cost virtual time"
        );
    }

    #[test]
    fn first_allocation_failure_replans_and_completes() {
        // The acceptance scenario: "fail the first device allocation" must
        // still complete via re-planning when more than one row is planned.
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        // Allocation #1 is the wire table — before any slab exists; that
        // failure is not recoverable by slab re-planning, so script #2 (the
        // first slab allocation) as "the first allocation" of slab data.
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_nth_alloc(2));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.replans >= 1);
        assert_eq!(out.image.data, clean.image.data);
    }

    #[test]
    fn unrecoverable_oom_still_errors_at_one_row() {
        // When the plan is already a single row, a persistent OOM cannot be
        // re-planned away and must surface.
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1);
        let device = big_device();
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(0).report_mem_bytes(2048), // nothing fits
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(CoreError::Device(cuda_sim::SimError::OutOfMemory { .. })) => {}
            other => panic!("expected OOM passthrough, got {other:?}"),
        }
    }

    #[test]
    fn lost_device_error_propagates() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after(4));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(e @ CoreError::Device(cuda_sim::SimError::DeviceLost)) => {
                assert!(e.is_gpu_failure());
            }
            other => panic!("expected DeviceLost, got {other:?}"),
        }
    }

    #[test]
    fn capacity_lie_shrinks_the_plan_but_not_the_answer() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        let need_2 = slab_bytes(2, 10, 6, 40, GpuOptions::default(), false);
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).report_mem_bytes(2 * need_2));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.rows_per_slab < clean.rows_per_slab,
            "planner saw the smaller card"
        );
        assert!(out.n_slabs > clean.n_slabs);
        assert_eq!(out.image.data, clean.image.data);
        assert_eq!(
            out.recovery.replans, 0,
            "planned small up front, no retrofit needed"
        );
    }

    #[test]
    fn overlapped_pipeline_retries_transfers() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(2);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct_overlapped(&device, &mut source, &geom, &cfg).unwrap();

        let device = big_device();
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(7)
                .fail_nth_h2d(3)
                .h2d_fault_rate(0.25),
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct_overlapped(&device, &mut source, &geom, &cfg).unwrap();
        assert!(out.recovery.transfer_retries > 0);
        assert_eq!(out.image.data, clean.image.data);
    }

    #[test]
    fn threaded_executor_matches_within_tolerance() {
        let (geom, cfg, data) = demo();
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = big_device();
        device.set_exec_mode(ExecMode::Threaded(4));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let gpu_out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let diff = cpu_out.image.max_abs_diff(&gpu_out.image);
        let scale = cpu_out
            .image
            .data
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(diff <= 1e-9 * (1.0 + scale), "diff {diff} vs scale {scale}");
        assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    #[test]
    fn overlap_beats_serial_pipeline() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1); // many slabs → pipelining matters
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let serial = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let overlapped = reconstruct_overlapped(&device, &mut source, &geom, &cfg).unwrap();
        assert_eq!(serial.image.data, overlapped.image.data);
        assert!(
            overlapped.elapsed_s < serial.elapsed_s,
            "double buffering must shorten the makespan: {} vs {}",
            overlapped.elapsed_s,
            serial.elapsed_s
        );
    }

    #[test]
    fn grid3d_mapping_matches_linear() {
        // The paper's Fig 6 thread mapping must reach the same answer as
        // the linear launch. Deposit order per output slot differs, so the
        // comparison is within FP-reassociation tolerance; the statistics
        // must be identical.
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let linear = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let grid = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                mapping: ThreadMapping::Grid3d,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        let scale = linear
            .image
            .data
            .iter()
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        assert!(
            linear.image.max_abs_diff(&grid.image) <= 1e-9 * scale,
            "diff {}",
            linear.image.max_abs_diff(&grid.image)
        );
        assert_eq!(linear.stats, grid.stats);
        // The folded launch is legal on the real M2070 limits (grid.z = 1).
        let records = device.records();
        let rec = records.iter().rev().find(|r| r.name == "set_two").unwrap();
        assert!(
            rec.threads >= 6 * 6 * 9,
            "covers the domain: {}",
            rec.threads
        );
    }

    #[test]
    fn grid3d_is_valid_on_fermi_limits() {
        // Launch on the faithful M2070 preset: grid.z must be 1, block.z
        // ≤ 64 — the folding construction must satisfy both even for scans
        // with many more pairs than block.z.
        let geom = ScanGeometry::demo(6, 6, 40, -80.0, 3.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 40);
        let (p, m, n) = (40, 6, 6);
        let data: Vec<f64> = (0..p * m * n).map(|i| (i % 97) as f64).collect();
        let device = Device::new(cuda_sim::DeviceProps::tesla_m2070());
        let mut source = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let grid = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                mapping: ThreadMapping::Grid3d,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        let view = crate::ScanView::new(&data, p, m, n).unwrap();
        let cpu_out = crate::cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let scale = cpu_out
            .image
            .data
            .iter()
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        assert!(cpu_out.image.max_abs_diff(&grid.image) <= 1e-9 * scale);
        assert_eq!(cpu_out.stats, grid.stats);
    }

    #[test]
    fn host_tables_match_in_kernel_bitwise() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let in_kernel = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let tables = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                layout: Layout::Flat1d,
                triangulation: Triangulation::HostTables,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        assert_eq!(in_kernel.image.data, tables.image.data);
        assert_eq!(in_kernel.stats, tables.stats);
        // Tables trade device FLOPs for transfer + host FLOPs.
        assert_eq!(in_kernel.host_table_flops, 0);
        assert!(tables.host_table_flops > 0);
        assert!(tables.meters.h2d_bytes > in_kernel.meters.h2d_bytes);
        assert!(
            tables.meters.kernel_cost.flops < in_kernel.meters.kernel_cost.flops,
            "table kernel must skip the triangulation FLOPs"
        );
    }

    #[test]
    fn host_tables_chunking_invariance() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut reference = None;
        for rows in [1usize, 3, 6] {
            let mut cfg = cfg.clone();
            cfg.rows_per_slab = Some(rows);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct_with_options(
                &device,
                &mut source,
                &geom,
                &cfg,
                GpuOptions {
                    layout: Layout::Flat1d,
                    triangulation: Triangulation::HostTables,
                    ..GpuOptions::default()
                },
            )
            .unwrap();
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "rows_per_slab = {rows}"),
            }
        }
    }

    #[test]
    fn stats_come_from_kernel_traces() {
        let (geom, mut cfg, data) = demo();
        cfg.intensity_cutoff = 1e12; // everything below cutoff
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(out.stats.pairs_below_cutoff, out.stats.pairs_total);
        assert_eq!(out.stats.deposits, 0);
        assert!(out.stats.is_consistent());
        assert_eq!(out.image.total_intensity(), 0.0);
    }

    #[test]
    fn fit_rows_per_slab_is_maximal() {
        let budget = 10 * 1024 * 1024;
        let rows =
            fit_rows_per_slab(budget, 512, 32, 128, 64, GpuOptions::default(), false).unwrap();
        assert!(rows >= 1);
        let used = slab_bytes(rows, 32, 128, 64, GpuOptions::default(), false);
        let next = slab_bytes(rows + 1, 32, 128, 64, GpuOptions::default(), false);
        let headroom = budget - budget / 10;
        assert!(
            used <= headroom && next > headroom,
            "{used} {next} {headroom}"
        );
        // Double buffering halves the slab.
        let rows_db =
            fit_rows_per_slab(budget, 512, 32, 128, 64, GpuOptions::default(), true).unwrap();
        assert!(rows_db <= rows / 2 + 1);
        // The depth table enlarges the working set, shrinking the slab.
        let opts_tables = GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let rows_tbl = fit_rows_per_slab(budget, 512, 32, 128, 64, opts_tables, false).unwrap();
        assert!(rows_tbl <= rows);
    }
}
