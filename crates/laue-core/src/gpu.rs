//! The paper's CUDA design, executed on the simulated device.
//!
//! This module reproduces the program structure of §III of the paper:
//!
//! * **Row-slab chunking** (Fig 2): the stack never fits device memory as a
//!   whole; the host streams `rows_per_slab` detector rows of *every* image
//!   to the device, reconstructs them, and copies the partial depth image
//!   back. [`fit_rows_per_slab`] picks the largest slab that fits the
//!   modeled memory, mirroring the M2070's 6 GB cap.
//! * **Thread mapping** (Fig 6): one kernel thread per
//!   `(row, col, image-pair)` element. The launch is 1-D with in-kernel
//!   index arithmetic — the "1D array" design the paper selects after its
//!   Fig 4 comparison — with the pair index fastest so that, under the
//!   deterministic executor, per-bin accumulation order matches the CPU
//!   baseline exactly.
//! * **`setTwo` kernel**: computes the differential intensity, triangulates
//!   both wire edges via the same [`plan_pair`] routine the CPU uses, and
//!   accumulates into the depth image with the CAS-loop
//!   `atomicAdd(double)` — multiple `z`-threads of one pixel race on the
//!   same output bins, exactly why the paper needed the atomic.
//! * **Layouts** (Fig 4): [`Layout::Flat1d`] ships one contiguous buffer
//!   per slab; [`Layout::Pointer3d`] reproduces the rejected design — one
//!   allocation per image (and per output bin) plus device pointer tables —
//!   paying per-transfer latency, pointer shipping, and an extra pointer
//!   dereference per access.
//! * **Copy/compute overlap** ([`reconstruct_pipelined`]): a k-deep ring of
//!   slab slots on three streams (upload / compute / download), the
//!   generalisation of the double-buffered two-stream pipeline the paper's
//!   related work discusses but its implementation does not do. `k = 1`
//!   degenerates to the paper's serial copy-in → kernel → copy-out loop and
//!   is what [`reconstruct_with_options`] runs.
//! * **Depth-table caching** ([`crate::cache`]): in
//!   [`Triangulation::HostTables`] mode the per-(step, pixel) tables are
//!   pure functions of the geometry; a [`DepthTableCache`] keeps them on
//!   the host across runs and, budget permitting, resident on the device,
//!   so warm runs skip both the triangulation FLOPs and the table upload.
//! * **Coalesced slab uploads**: each slab's host→device pieces (pixel
//!   table, depth table, intensities) ship as one batched bus transaction
//!   (`memcpy_htod_batched`), paying the PCIe latency once per slab.

pub mod batch;

use std::collections::VecDeque;
use std::ops::Range;

use cuda_sim::{Device, DeviceBuffer, ExecMode, LaunchConfig, Meters, StreamId};
use laue_geometry::{DepthMapper, Vec3};

use crate::cache::{DepthTableCache, DepthTables, TableCacheStats, TableKey};
use crate::config::{AccumulationMode, CompactionMode, ReconstructionConfig};
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::input::SlabSource;
use crate::integrity::{self, IntegrityReport};
use crate::journal::{RunJournal, SlabProgress};
use crate::output::DepthImage;
use crate::pair::{plan_pair, PairPlan, PRESCAN_BYTES_PER_READ, PRESCAN_FLOPS_PER_PAIR};
use crate::planning::ShadowCull;
use crate::stats::ReconStats;
use crate::Result;

/// Device data layout for the image stack and output (the paper's Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One flat buffer per slab; kernels do 1-D↔3-D index arithmetic.
    Flat1d,
    /// One allocation per image / per output bin plus device pointer
    /// tables; more transfers, extra pointer chases.
    Pointer3d,
}

/// Where the edge-depth triangulation happens.
///
/// The paper's kernel signature ships precomputed `edge` / `firstedge` /
/// `gpuPointArray` tables, i.e. parts of the triangulation are done on the
/// host and traded against PCIe transfer. The two modes below bracket that
/// design space; both produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangulation {
    /// Each kernel thread triangulates its own pair (compute on device).
    InKernel,
    /// The host precomputes the per-(pixel, step) depth table and ships it
    /// with each slab (transfer instead of device compute; host pays the
    /// triangulation FLOPs once per slab).
    HostTables,
}

/// How kernel threads are mapped onto the `(row, col, pair)` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMapping {
    /// 1-D launch with in-kernel index arithmetic — the layout-independent
    /// mapping this reproduction defaults to (deposit order matches the CPU
    /// loop nest, enabling bitwise equivalence).
    Linear,
    /// The paper's Fig 6 mapping: 3-D blocks over `(rows, cols, pairs)`
    /// (its example launches a `(2, 9, 4)` block). Fermi forbids `grid.z
    /// > 1`, so pair-blocks beyond `block.z` fold into `grid.x`, exactly as
    /// > era CUDA code did.
    Grid3d,
}

/// Full GPU-engine options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuOptions {
    pub layout: Layout,
    pub triangulation: Triangulation,
    pub mapping: ThreadMapping,
}

impl Default for GpuOptions {
    fn default() -> Self {
        GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::InKernel,
            mapping: ThreadMapping::Linear,
        }
    }
}

/// Ring depth `k` of the transfer/compute pipeline: how many slab slots may
/// be in flight at once across the upload / compute / download streams.
///
/// `k = 1` is the paper's serial pipeline (each slab fully drains before
/// the next uploads); `k = 2` is classic double buffering; deeper rings
/// keep the upload stream busy across longer download tails. Device memory
/// must hold `k` slabs, so the slab planner divides the budget by `k` —
/// past the point where the bus is saturated, deeper rings only shrink
/// slabs and add latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineDepth(pub usize);

impl PipelineDepth {
    /// Serial pipeline (no overlap).
    pub const SERIAL: PipelineDepth = PipelineDepth(1);

    /// Default overlap depth: upload, compute, and download each own a
    /// slot, matching the three streams.
    pub const DEFAULT: PipelineDepth = PipelineDepth(3);
}

impl Default for PipelineDepth {
    fn default() -> Self {
        PipelineDepth::DEFAULT
    }
}

/// Trace-slot assignments for the `set_two` kernel.
const TRACE_BELOW_CUTOFF: usize = 0;
const TRACE_INVALID: usize = 1;
const TRACE_OUT_OF_RANGE: usize = 2;
const TRACE_DEPOSITED: usize = 3;
const TRACE_DEPOSITS: usize = 4;

/// Threads per block for the 1-D launches (the paper's hardware caps at
/// 1024; 256 keeps plenty of blocks in flight).
pub(crate) const BLOCK_SIZE: u64 = 256;

/// The accumulation strategy one slab's `set_two` launch actually runs,
/// resolved from the device's shared-memory budget (see
/// [`AccumulationMode`] and [`plan_accumulation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccumPlan {
    /// Per-deposit global CAS atomics — the paper's §III-C scheme.
    /// `fallback` marks a slab the run *asked* to privatize but whose bin
    /// tile did not fit the device's shared memory.
    Atomic { fallback: bool },
    /// Shared-memory privatized tile: `pixels_per_block` bin rows of
    /// `n_depth_bins` doubles each, committed once per touched cell.
    Privatized { pixels_per_block: usize },
}

/// Pick the accumulation strategy for a slab: tile shape from
/// `n_depth_bins × block pixels` against the device's shared memory.
///
/// The planner prefers full occupancy — as many pixel rows per block as
/// keep ≥ 4 blocks resident per SM (the saturation point of
/// [`cuda_sim::DeviceProps::occupancy`]) — and accepts the occupancy
/// penalty only when a single bin row eats more than a quarter of shared
/// memory. When even one row does not fit, both `auto` and forced
/// privatization fall back to atomics, flagged so the stats can surface
/// the decision.
pub(crate) fn plan_accumulation(
    props: &cuda_sim::DeviceProps,
    n_bins: usize,
    mode: AccumulationMode,
) -> AccumPlan {
    if !mode.wants_privatized() {
        return AccumPlan::Atomic { fallback: false };
    }
    let row_bytes = n_bins as u64 * 8;
    let shared = props.shared_mem_per_block;
    if row_bytes > shared {
        return AccumPlan::Atomic { fallback: true };
    }
    let occ_cap = (shared / 4) / row_bytes;
    let fit = shared / row_bytes; // ≥ 1 — row_bytes ≤ shared above
    let per_block = if occ_cap >= 1 { occ_cap } else { fit };
    let pixels_per_block = per_block
        .min(BLOCK_SIZE)
        .min(props.max_threads_per_block)
        .max(1) as usize;
    AccumPlan::Privatized { pixels_per_block }
}

/// How many times a transient transfer fault is retried before giving up.
const MAX_TRANSFER_RETRIES: u32 = 3;

/// First retry backoff (virtual seconds); doubles on every further attempt
/// of the same copy, so the worst case per copy is `base · (2^retries − 1)`.
const BACKOFF_BASE_S: f64 = 50e-6;

/// What the engine did to survive device trouble during one reconstruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Times the slab plan was halved and the slab re-run after device OOM.
    pub replans: u32,
    /// Transient transfer faults absorbed by retrying the copy.
    pub transfer_retries: u32,
}

/// Run a host↔device copy, absorbing transient faults with bounded,
/// exponentially growing backoff (idle time on `stream` in virtual time).
/// Non-transient errors — OOM, lost device — propagate immediately.
///
/// With `integrity` attached the copy is a CRC-checked one: the CRC's host
/// FLOPs (charged inside the checked variants) are billed to
/// `verify_host_cpu_s`, every [`cuda_sim::SimError::CorruptTransfer`]
/// counts as a detected corruption — corrected when a retry eventually
/// lands the payload cleanly — and the backoff idle time those CRC
/// retries insert on the stream is billed to `exposed_overhead_s` (it
/// extends the makespan; plain transient-fault backoffs do not count,
/// they are recovery the run pays with or without integrity).
fn retry_transfer<T>(
    device: &Device,
    stream: StreamId,
    recovery: &mut RecoveryLog,
    integrity: Option<&mut IntegrityReport>,
    mut copy: impl FnMut() -> cuda_sim::Result<T>,
) -> Result<T> {
    let mut backoff = BACKOFF_BASE_S;
    let mut attempts = 0u32;
    let mut crc_hits = 0u64;
    let mut crc_backoff_s = 0.0f64;
    let host_t0 = device.host_flops_time_s();
    let result = loop {
        match copy() {
            Ok(v) => break Ok(v),
            Err(e) if e.is_transient() && attempts < MAX_TRANSFER_RETRIES => {
                if matches!(e, cuda_sim::SimError::CorruptTransfer { .. }) {
                    crc_hits += 1;
                    crc_backoff_s += backoff;
                }
                attempts += 1;
                recovery.transfer_retries += 1;
                device.delay(stream, backoff);
                backoff *= 2.0;
            }
            Err(e) => {
                if matches!(e, cuda_sim::SimError::CorruptTransfer { .. }) {
                    crc_hits += 1;
                }
                break Err(CoreError::Device(e));
            }
        }
    };
    if let Some(report) = integrity {
        report.checks_run += 1;
        report.verify_host_cpu_s += device.host_flops_time_s() - host_t0;
        report.exposed_overhead_s += crc_backoff_s;
        report.transfer_crc_failures += crc_hits;
        report.corruptions_detected += crc_hits;
        if result.is_ok() {
            report.corruptions_corrected += crc_hits;
        }
    }
    result
}

/// Result of a GPU reconstruction.
#[derive(Debug, Clone)]
pub struct GpuReconstruction {
    /// The depth-resolved output.
    pub image: DepthImage,
    /// Outcome counters (from the kernel's trace instrumentation).
    pub stats: ReconStats,
    /// Transfer/compute meters for the whole run.
    pub meters: Meters,
    /// Rows shipped per slab.
    pub rows_per_slab: usize,
    /// Number of slabs processed.
    pub n_slabs: usize,
    /// Virtual makespan (equals `meters.serial_total_s()` for the
    /// single-stream pipeline; smaller when overlapped).
    pub elapsed_s: f64,
    /// Peak modeled device memory, bytes.
    pub peak_device_mem: u64,
    /// Host-side triangulation FLOPs spent building depth tables
    /// ([`Triangulation::HostTables`] only; model with `HostProps`).
    pub host_table_flops: u64,
    /// Host-CPU busy seconds those FLOPs occupy on the device's host (the
    /// engine's host-thread resource; accounted in parallel with device
    /// time, never stalling a stream).
    pub host_table_time_s: f64,
    /// What the engine did to survive device trouble (re-plans, retries).
    pub recovery: RecoveryLog,
    /// Ring depth the run finished with (memory pressure may have shrunk
    /// it below the requested depth).
    pub pipeline_depth: usize,
    /// Depth-table cache accounting for this run (all zeros when no cache
    /// was attached).
    pub table_cache: TableCacheStats,
    /// Achieved active-pair density per slab, in slab order (empty when
    /// compaction is off).
    pub slab_densities: Vec<f64>,
    /// Per slab, whether its main launch ran the shared-memory privatized
    /// accumulator (`false` = atomic fallback or an empty launch domain).
    /// Empty under `--accumulation atomic`.
    pub slab_privatized: Vec<bool>,
    /// What the integrity layer detected and repaired (all zeros under
    /// [`crate::config::IntegrityMode::Off`]).
    pub integrity: IntegrityReport,
}

/// Modeled device bytes needed for `slots` concurrently resident slabs of
/// `rows` detector rows each (`slots` = ring depth). With compaction
/// enabled each slab also reserves the worst-case work-list (one u64 per
/// pair) plus the prescan's count cell.
fn slab_bytes(
    rows: usize,
    n_images: usize,
    n_cols: usize,
    n_bins: usize,
    opts: GpuOptions,
    slots: usize,
    compaction: CompactionMode,
) -> u64 {
    let layout = opts.layout;
    let row = (n_cols * 8) as u64;
    let mut intensity = n_images as u64 * rows as u64 * row;
    if opts.triangulation == Triangulation::HostTables {
        // The depth table has the same (steps × rows × cols) footprint.
        intensity *= 2;
    }
    let pixels = rows as u64 * n_cols as u64 * 3 * 8;
    let output = n_bins as u64 * rows as u64 * row;
    let tables = match layout {
        Layout::Flat1d => 0,
        Layout::Pointer3d => (n_images as u64 + n_bins as u64) * 8,
    };
    let worklist = if compaction.enabled() {
        (n_images as u64 - 1) * rows as u64 * row + 8
    } else {
        0
    };
    // Alignment padding: every allocation rounds up to 256 bytes; the
    // pointer layout makes one allocation per image/bin.
    let mut allocs: u64 = match layout {
        Layout::Flat1d => 4,
        Layout::Pointer3d => (n_images + n_bins) as u64 + 4,
    };
    if compaction.enabled() {
        allocs += 2; // work-list + prescan counter
    }
    let base = intensity + pixels + output + tables + worklist + allocs * 256;
    slots as u64 * base
}

/// Largest `rows_per_slab` such that `slots` slabs fit in `budget` bytes
/// together (the ring keeps `slots` slabs resident at once).
#[allow(clippy::too_many_arguments)]
pub fn fit_rows_per_slab(
    budget: u64,
    n_rows: usize,
    n_images: usize,
    n_cols: usize,
    n_bins: usize,
    opts: GpuOptions,
    slots: usize,
    compaction: CompactionMode,
) -> Result<usize> {
    // Leave headroom for the wire-centre table and fragmentation.
    let budget = budget - budget / 10;
    let mut best = 0usize;
    let mut lo = 1usize;
    let mut hi = n_rows;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        if slab_bytes(mid, n_images, n_cols, n_bins, opts, slots, compaction) <= budget {
            best = mid;
            lo = mid + 1;
        } else {
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        }
    }
    if best == 0 {
        return Err(CoreError::DeviceCapacity {
            needed: slab_bytes(1, n_images, n_cols, n_bins, opts, slots, compaction),
            budget,
        });
    }
    Ok(best)
}

/// Where the kernel's depth table comes from, resolved once per run.
pub(crate) enum TableSource {
    /// In-kernel triangulation — no table at all.
    None,
    /// Host computes each slab's table slice and ships it with the slab
    /// (the uncached [`Triangulation::HostTables`] path).
    PerSlab,
    /// Full-detector host table from the cache; each slab ships its row
    /// slice (sliced, not recomputed — no triangulation FLOPs).
    HostSlice(std::sync::Arc<DepthTables>),
    /// Full-detector table already resident on the device; slabs upload
    /// nothing and the kernel indexes by absolute detector row.
    Resident {
        buf: DeviceBuffer<f64>,
        /// Detector rows the resident table covers (its row stride).
        n_rows: usize,
    },
}

/// Per-slab device-resident data, under either layout.
pub(crate) enum SlabBuffers {
    Flat {
        intensity: DeviceBuffer<f64>,
        output: DeviceBuffer<f64>,
    },
    Pointer {
        /// One buffer per image (slab rows × cols each).
        images: Vec<DeviceBuffer<f64>>,
        /// One buffer per output bin (slab rows × cols each).
        bins: Vec<DeviceBuffer<f64>>,
        /// Device copies of the pointer tables (transfer + storage cost;
        /// the table contents are the modeled addresses).
        _image_table: DeviceBuffer<u64>,
        _bin_table: DeviceBuffer<u64>,
    },
}

/// The kernel's view of the depth table for one uploaded slab.
pub(crate) enum DepthTableRef {
    /// In-kernel triangulation.
    None,
    /// Slab-local table, indexed `(z · rows + r) · n_cols + c`.
    Slab(DeviceBuffer<f64>),
    /// Full-detector resident table (aliases the cache's allocation),
    /// indexed by absolute row: `(z · n_rows + row0 + r) · n_cols + c`.
    Resident {
        buf: DeviceBuffer<f64>,
        n_rows: usize,
    },
}

/// The two-level sparsity plan for one slab: which `(row, pair)` combos
/// survive wire-shadow culling, and — from the prescan — which `(pixel,
/// pair)` entries carry a differential above the cutoff.
///
/// Host-side this is the ground truth the metered `prescan` kernel writes
/// into the device work-list; the main kernel then reads the list back
/// through metered accesses, so the virtual-time model charges both sides
/// of the compaction hand-off.
pub(crate) struct SlabSparsity {
    /// Slab-local rows with at least one live pair (prescan launch domain).
    live_rows: Vec<u32>,
    /// Per slab row: live pair indices, ascending (empty for culled rows).
    live_pairs: Vec<Vec<u32>>,
    /// Per slab row: distinct images one pixel's prescan column scan reads
    /// (a run of `k` consecutive live pairs touches `k + 1` images).
    touched: Vec<u32>,
    /// Live `(slab_row, pair)` combos in `(r, z)` order — the banded launch
    /// domain used when culling bites but compaction is off for this slab.
    combos: Vec<(u32, u32)>,
    /// CSR offsets over slab pixels (`r · n_cols + c`), length
    /// `rows · n_cols + 1`, indexing into `entries`.
    offsets: Vec<u32>,
    /// Active entries packed `(r << 40) | (c << 20) | z`, `(r, c, z)` order
    /// — the same per-output-cell deposit order as the dense launch.
    entries: Vec<u64>,
    /// Per slab pixel: live pairs whose differential fell below the cutoff
    /// (traced by the prescan so the main kernel can skip them entirely).
    below_per_pixel: Vec<u32>,
    /// `(row, pair)` combos removed by wire-shadow culling.
    culled_combos: u64,
    /// Active fraction among live (un-culled) pairs; 0 when nothing is live.
    density: f64,
    /// Whether this slab launches over the compacted list.
    compact: bool,
}

/// Build one slab's sparsity plan from its host-side intensities.
fn plan_slab_sparsity(
    slab: &[f64],
    cull: &ShadowCull,
    cfg: &ReconstructionConfig,
    n_images: usize,
    row0: usize,
    rows: usize,
    n_cols: usize,
) -> SlabSparsity {
    let n_pairs = n_images - 1;
    let mut live_rows = Vec::new();
    let mut live_pairs: Vec<Vec<u32>> = Vec::with_capacity(rows);
    let mut touched = Vec::with_capacity(rows);
    let mut combos = Vec::new();
    let mut culled_combos = 0u64;
    for r in 0..rows {
        let live = cull.live_pairs(row0 + r);
        culled_combos += (n_pairs - live.len()) as u64;
        if !live.is_empty() {
            live_rows.push(r as u32);
            for &z in &live {
                combos.push((r as u32, z as u32));
            }
        }
        let mut t = 0u32;
        let mut prev: Option<usize> = None;
        for &z in &live {
            t += if prev == Some(z.wrapping_sub(1)) {
                1
            } else {
                2
            };
            prev = Some(z);
        }
        touched.push(t);
        live_pairs.push(live.into_iter().map(|z| z as u32).collect());
    }
    let mut offsets = Vec::with_capacity(rows * n_cols + 1);
    offsets.push(0u32);
    let mut entries = Vec::new();
    let mut below_per_pixel = vec![0u32; rows * n_cols];
    let mut live_total = 0u64;
    for r in 0..rows {
        for c in 0..n_cols {
            let pix = r * n_cols + c;
            for &z in &live_pairs[r] {
                let z = z as usize;
                live_total += 1;
                let i0 = slab[(z * rows + r) * n_cols + c];
                let i1 = slab[((z + 1) * rows + r) * n_cols + c];
                let delta = crate::pair::differential(cfg, i0, i1);
                if delta.abs() > cfg.intensity_cutoff {
                    entries.push(((r as u64) << 40) | ((c as u64) << 20) | z as u64);
                } else {
                    below_per_pixel[pix] += 1;
                }
            }
            offsets.push(entries.len() as u32);
        }
    }
    let density = if live_total == 0 {
        0.0
    } else {
        entries.len() as f64 / live_total as f64
    };
    let compact = match cfg.compaction {
        CompactionMode::Off => false,
        CompactionMode::On => true,
        // Placeholder: `upload_slab` overrides this with the planner's
        // cost-model decision before any buffer is allocated.
        CompactionMode::Auto => false,
    };
    SlabSparsity {
        live_rows,
        live_pairs,
        touched,
        combos,
        offsets,
        entries,
        below_per_pixel,
        culled_combos,
        density,
        compact,
    }
}

pub(crate) struct SlabUpload {
    buffers: SlabBuffers,
    pub(crate) mapping: ThreadMapping,
    pixels: DeviceBuffer<f64>,
    /// Precomputed per-(step, pixel) edge depths (HostTables mode).
    depth_table: DepthTableRef,
    /// Host FLOPs spent building the depth table.
    host_flops: u64,
    rows: usize,
    row0: usize,
    /// Virtual time when the last H2D copy of this slab completes.
    ready_at: f64,
    /// Sparsity plan, present whenever compaction is enabled for the run.
    sparsity: Option<SlabSparsity>,
    /// Device work-list the prescan emits (compact slabs only).
    list_buf: Option<DeviceBuffer<u64>>,
    /// Prescan's count cell (one u64; the count phase is always paid).
    counter_buf: Option<DeviceBuffer<u64>>,
    /// Accumulation strategy for this slab's main launch (per-slab under
    /// the planner's auto mode, uniform otherwise).
    pub(crate) accum: AccumPlan,
}

/// Upload one slab's data under the chosen layout.
///
/// All f64 pieces of the slab (pixel table, depth-table slice, intensity)
/// ship as one coalesced bus transaction; the pointer layout needs a second
/// transaction for its u64 pointer tables.
#[allow(clippy::too_many_arguments)]
pub(crate) fn upload_slab(
    device: &Device,
    stream: StreamId,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    table_source: &TableSource,
    row0: usize,
    rows: usize,
    recovery: &mut RecoveryLog,
    cull: Option<&ShadowCull>,
    integrity: &mut IntegrityReport,
) -> Result<SlabUpload> {
    let layout = opts.layout;
    let checked = cfg.integrity.enabled();
    let n_images = source.n_images();
    let n_cols = source.n_cols();
    let slab = source.read_slab(row0, rows)?;
    debug_assert_eq!(slab.len(), n_images * rows * n_cols);

    // Sparsity planning happens against the host copy of the slab; the
    // device-side cost of the scan is charged by the prescan kernel.
    let mut sparsity =
        cull.map(|cull| plan_slab_sparsity(&slab, cull, cfg, n_images, row0, rows, n_cols));

    // Per-slab planner decision: with either knob on Auto, the slab's
    // measured sparsity counts plus a sampled intensity probe feed the
    // device's cost model, which jointly picks the launch shape and the
    // accumulation strategy for this slab's kernels.
    let needs_planner = matches!(cfg.compaction, CompactionMode::Auto)
        || matches!(cfg.accumulation, AccumulationMode::Auto);
    let accum = if needs_planner {
        let probe = crate::planner::SlabProbe::sample(
            &slab,
            geom,
            mapper,
            cfg,
            n_images,
            row0,
            rows,
            n_cols,
            sparsity.as_ref().map(|sp| sp.live_pairs.as_slice()),
        );
        let rates = probe.rates();
        let model = match &sparsity {
            Some(sp) => crate::planner::SlabModel {
                rows,
                n_cols,
                n_bins: cfg.n_depth_bins,
                live_rows: sp.live_rows.len(),
                live_pairs_sum: sp.combos.len() as u64,
                live_evals: (sp.combos.len() * n_cols) as u64,
                entries: sp.entries.len() as u64,
                culled_combos: sp.culled_combos,
                touched_sum: sp
                    .live_rows
                    .iter()
                    .map(|&r| sp.touched[r as usize] as u64)
                    .sum(),
                rates,
            },
            None => crate::planner::SlabModel::dense(
                rows,
                n_cols,
                cfg.n_depth_bins,
                n_images - 1,
                rates,
            ),
        };
        let decision = crate::planner::plan_slab(
            device.props(),
            &model,
            layout,
            !matches!(table_source, TableSource::None),
            cfg.compaction,
            cfg.accumulation,
        );
        if matches!(cfg.compaction, CompactionMode::Auto) {
            if let Some(sp) = &mut sparsity {
                sp.compact = decision.compact;
            }
        }
        match cfg.accumulation {
            AccumulationMode::Auto => decision.accum,
            mode => plan_accumulation(device.props(), cfg.n_depth_bins, mode),
        }
    } else {
        plan_accumulation(device.props(), cfg.n_depth_bins, cfg.accumulation)
    };
    let counter_buf = match &sparsity {
        Some(_) => Some(device.alloc::<u64>(1)?),
        None => None,
    };
    let list_buf = match &sparsity {
        Some(sp) if sp.compact && !sp.entries.is_empty() => {
            Some(device.alloc::<u64>(sp.entries.len())?)
        }
        _ => None,
    };

    // Pixel positions for the slab (the `pixel_xyz` table).
    let mut pix = Vec::with_capacity(rows * n_cols * 3);
    for r in row0..row0 + rows {
        for c in 0..n_cols {
            let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
            pix.extend_from_slice(&[p.x, p.y, p.z]);
        }
    }
    let pixels = device.alloc::<f64>(pix.len())?;

    // Precomputed depth tables (the paper's `edge`/`gpuPointArray` design):
    // depths[(z · rows + r) · cols + c], NaN where no tangent exists. The
    // per-slab allocation happens only when the table is not resident.
    let mut host_flops = 0u64;
    let table_data: Option<Vec<f64>> = match table_source {
        TableSource::None | TableSource::Resident { .. } => None,
        TableSource::PerSlab => {
            let mut table = Vec::with_capacity(n_images * rows * n_cols);
            for z in 0..n_images {
                let wire = geom.wire.center_unchecked(z as f64);
                for r in row0..row0 + rows {
                    for c in 0..n_cols {
                        let p = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                        host_flops += crate::pair::FLOPS_PER_DEPTH;
                        table.push(mapper.depth(p, wire, cfg.wire_edge).unwrap_or(f64::NAN));
                    }
                }
            }
            Some(table)
        }
        TableSource::HostSlice(tables) => Some(tables.slice_rows(row0, rows)),
    };
    let table_buf = match &table_data {
        Some(t) => Some(device.alloc::<f64>(t.len())?),
        None => None,
    };

    let (buffers, ready_at) = match layout {
        Layout::Flat1d => {
            let intensity = device.alloc::<f64>(slab.len())?;
            let output = device.alloc_zeroed::<f64>(cfg.n_depth_bins * rows * n_cols)?;
            // One coalesced transaction for the whole slab.
            let mut batch: Vec<(&DeviceBuffer<f64>, &[f64])> = vec![(&pixels, &pix)];
            if let (Some(buf), Some(data)) = (&table_buf, &table_data) {
                batch.push((buf, data));
            }
            batch.push((&intensity, &slab));
            let report = if checked { Some(&mut *integrity) } else { None };
            let span = retry_transfer(device, stream, recovery, report, || {
                if checked {
                    device.memcpy_htod_batched_checked(stream, &batch)
                } else {
                    device.memcpy_htod_batched(stream, &batch)
                }
            })?;
            (SlabBuffers::Flat { intensity, output }, span.end_s)
        }
        Layout::Pointer3d => {
            // One allocation per image: the "3D array" design. The copies
            // still coalesce into one f64 transaction, but the layout pays
            // a second (u64) transaction for its pointer tables.
            let per_image = rows * n_cols;
            let mut images = Vec::with_capacity(n_images);
            for _ in 0..n_images {
                images.push(device.alloc::<f64>(per_image)?);
            }
            let mut bins = Vec::with_capacity(cfg.n_depth_bins);
            for _ in 0..cfg.n_depth_bins {
                bins.push(device.alloc_zeroed::<f64>(per_image)?);
            }
            let mut batch: Vec<(&DeviceBuffer<f64>, &[f64])> = vec![(&pixels, &pix)];
            if let (Some(buf), Some(data)) = (&table_buf, &table_data) {
                batch.push((buf, data));
            }
            for (z, buf) in images.iter().enumerate() {
                batch.push((buf, &slab[z * per_image..(z + 1) * per_image]));
            }
            let report = if checked { Some(&mut *integrity) } else { None };
            let span = retry_transfer(device, stream, recovery, report, || {
                if checked {
                    device.memcpy_htod_batched_checked(stream, &batch)
                } else {
                    device.memcpy_htod_batched(stream, &batch)
                }
            })?;
            let mut ready_at = span.end_s;
            // The pointer tables themselves must also be shipped.
            let image_ptrs: Vec<u64> = images.iter().map(|b| b.device_addr()).collect();
            let bin_ptrs: Vec<u64> = bins.iter().map(|b| b.device_addr()).collect();
            let image_table = device.alloc::<u64>(image_ptrs.len())?;
            let bin_table = device.alloc::<u64>(bin_ptrs.len())?;
            let ptr_batch: Vec<(&DeviceBuffer<u64>, &[u64])> =
                vec![(&image_table, &image_ptrs), (&bin_table, &bin_ptrs)];
            let report = if checked { Some(&mut *integrity) } else { None };
            let span = retry_transfer(device, stream, recovery, report, || {
                if checked {
                    device.memcpy_htod_batched_checked(stream, &ptr_batch)
                } else {
                    device.memcpy_htod_batched(stream, &ptr_batch)
                }
            })?;
            ready_at = ready_at.max(span.end_s);
            (
                SlabBuffers::Pointer {
                    images,
                    bins,
                    _image_table: image_table,
                    _bin_table: bin_table,
                },
                ready_at,
            )
        }
    };
    let depth_table = match table_source {
        TableSource::None => DepthTableRef::None,
        TableSource::Resident { buf, n_rows } => DepthTableRef::Resident {
            buf: buf.clone(),
            n_rows: *n_rows,
        },
        TableSource::PerSlab | TableSource::HostSlice(_) => {
            DepthTableRef::Slab(table_buf.expect("table data implies a buffer"))
        }
    };
    Ok(SlabUpload {
        buffers,
        mapping: opts.mapping,
        pixels,
        depth_table,
        host_flops,
        rows,
        row0,
        ready_at,
        sparsity,
        list_buf,
        counter_buf,
        accum,
    })
}

/// Launch the metered `prescan` kernel for one uploaded slab: one thread
/// per live pixel scans its live pairs' differentials, charging the column
/// reads and compare FLOPs, and — when the slab compacts — emits the
/// active-entry work-list and traces the below-cutoff pairs the main
/// kernel will never see. Returns `None` when every row was culled.
pub(crate) fn launch_prescan(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    n_cols: usize,
) -> Result<Option<cuda_sim::LaunchRecord>> {
    let Some(sp) = &upload.sparsity else {
        return Ok(None);
    };
    if sp.live_rows.is_empty() {
        return Ok(None);
    }
    let total = (sp.live_rows.len() * n_cols) as u64;
    let kernel = |ctx: &mut cuda_sim::ThreadCtx<'_>| {
        let id = ctx.global_id().x as usize;
        if id as u64 >= total {
            return;
        }
        let r = sp.live_rows[id / n_cols] as usize;
        let c = id % n_cols;
        // The column scan reads each touched image once per pixel and does
        // a subtract-and-compare per live pair.
        ctx.charge_mem_bytes(PRESCAN_BYTES_PER_READ * sp.touched[r] as u64);
        ctx.charge_flops(PRESCAN_FLOPS_PER_PAIR * sp.live_pairs[r].len() as u64);
        if sp.compact {
            let pix = r * n_cols + c;
            for _ in 0..sp.below_per_pixel[pix] {
                ctx.trace(TRACE_BELOW_CUTOFF);
            }
            if let Some(list) = &upload.list_buf {
                for k in sp.offsets[pix] as usize..sp.offsets[pix + 1] as usize {
                    ctx.write(list, k, sp.entries[k]);
                }
            }
        }
        // Block leaders aggregate the per-block counts (the count phase is
        // paid whether or not the slab ends up compacting).
        if ctx.thread_idx.x == 0 {
            if let Some(counter) = &upload.counter_buf {
                ctx.atomic_add_u64(counter, 0, 1);
            }
        }
    };
    device
        .launch_on(
            stream,
            "prescan",
            LaunchConfig::linear(total, BLOCK_SIZE),
            kernel,
        )
        .map(Some)
        .map_err(CoreError::from)
}

/// The `set_two` launch domain, picked per slab from its sparsity plan.
enum LaunchShape<'a> {
    /// Full dense `(row, col, pair)` grid (no sparsity, or nothing culled
    /// and the density heuristic chose dense).
    Dense,
    /// Live `(row, pair)` combos × columns — culling bit but the slab is
    /// too dense to compact.
    Banded { combos: &'a [(u32, u32)] },
    /// One thread per work-list entry, read back from the device list the
    /// prescan emitted.
    Compact { list: &'a DeviceBuffer<u64> },
}

/// Launch the `set_two` kernel for one uploaded slab. Returns `None` when
/// the slab's launch domain is empty (every pair culled, or the compacted
/// work-list has no entries).
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_set_two(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    wires: &DeviceBuffer<f64>,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    n_images: usize,
    n_cols: usize,
    accum: AccumPlan,
) -> Result<Option<cuda_sim::LaunchRecord>> {
    let rows = upload.rows;
    let n_pairs = n_images - 1;
    let mapping = upload.mapping;
    let shape = match &upload.sparsity {
        None => LaunchShape::Dense,
        Some(sp) if sp.compact => {
            if sp.entries.is_empty() {
                return Ok(None);
            }
            LaunchShape::Compact {
                list: upload.list_buf.as_ref().expect("compact slab has a list"),
            }
        }
        Some(sp) if sp.culled_combos > 0 => {
            if sp.combos.is_empty() {
                return Ok(None);
            }
            LaunchShape::Banded { combos: &sp.combos }
        }
        Some(_) => LaunchShape::Dense,
    };
    let total = match &shape {
        LaunchShape::Dense => (rows * n_cols * n_pairs) as u64,
        LaunchShape::Banded { combos } => (combos.len() * n_cols) as u64,
        LaunchShape::Compact { .. } => {
            upload.sparsity.as_ref().map_or(0, |sp| sp.entries.len()) as u64
        }
    };
    // Fig 6 mapping: 3-D blocks over (rows, cols, pairs); pair-blocks past
    // block.z fold into grid.x to satisfy Fermi's grid.z = 1.
    let block = cuda_sim::Dim3::new(4, 8, (n_pairs as u64).clamp(1, 8));
    let rows_blocks = (rows as u64).div_ceil(block.x);
    let pair_blocks = (n_pairs as u64).div_ceil(block.z);
    let grid3d = cuda_sim::Dim3::new(
        rows_blocks * pair_blocks,
        (n_cols as u64).div_ceil(block.y),
        1,
    );
    // Sparse shapes always launch 1-D: their domain is a list, not a grid.
    let launch_cfg = match (&shape, mapping) {
        (LaunchShape::Dense, ThreadMapping::Grid3d) => LaunchConfig::new(grid3d, block),
        _ => LaunchConfig::linear(total, BLOCK_SIZE),
    };
    // Everything up to the deposit itself is shared by both accumulation
    // strategies: charge the index arithmetic, fetch the inputs, and build
    // the pair's deposit plan.
    let eval_pair = |ctx: &mut cuda_sim::ThreadCtx<'_>, r: usize, c: usize, z: usize| -> PairPlan {
        eval_pair_body(ctx, upload, wires, mapper, cfg, rows, n_cols, r, c, z)
    };
    if let AccumPlan::Privatized { pixels_per_block } = accum {
        return launch_set_two_privatized(
            device,
            stream,
            upload,
            cfg,
            n_cols,
            n_pairs,
            &shape,
            pixels_per_block,
            &eval_pair,
        );
    }
    let kernel = |ctx: &mut cuda_sim::ThreadCtx<'_>| {
        let (r, c, z) = match &shape {
            LaunchShape::Dense => match mapping {
                ThreadMapping::Linear => {
                    let id = ctx.global_id().x as usize;
                    if id as u64 >= total {
                        return;
                    }
                    // Pair index fastest: deposits into one pixel's bins
                    // happen in step order, matching the CPU loop nest.
                    let z = id % n_pairs;
                    let pc = id / n_pairs;
                    (pc / n_cols, pc % n_cols, z)
                }
                ThreadMapping::Grid3d => {
                    // Unfold the pair-block component from grid.x.
                    let bx = ctx.block_idx.x % rows_blocks;
                    let pz = ctx.block_idx.x / rows_blocks;
                    let r = (bx * ctx.block_dim.x + ctx.thread_idx.x) as usize;
                    let c = ctx.global_id().y as usize;
                    let z = (pz * ctx.block_dim.z + ctx.thread_idx.z) as usize;
                    if r >= rows || c >= n_cols || z >= n_pairs {
                        return;
                    }
                    (r, c, z)
                }
            },
            LaunchShape::Banded { combos } => {
                let id = ctx.global_id().x as usize;
                if id as u64 >= total {
                    return;
                }
                // Combos are (r, z)-sorted with columns innermost, so each
                // output cell still sees its deposits in ascending z.
                let (br, bz) = combos[id / n_cols];
                ctx.charge_mem_bytes(8); // combo descriptor fetch
                (br as usize, id % n_cols, bz as usize)
            }
            LaunchShape::Compact { list } => {
                let id = ctx.global_id().x as usize;
                if id as u64 >= total {
                    return;
                }
                // Entries were emitted in (r, c, z) order, so per-cell
                // deposit order matches the dense pair-fastest mapping.
                let e = ctx.read(list, id);
                (
                    ((e >> 40) & 0xFFFFF) as usize,
                    ((e >> 20) & 0xFFFFF) as usize,
                    (e & 0xFFFFF) as usize,
                )
            }
        };
        match eval_pair(ctx, r, c, z) {
            PairPlan::BelowCutoff => ctx.trace(TRACE_BELOW_CUTOFF),
            PairPlan::InvalidGeometry => ctx.trace(TRACE_INVALID),
            PairPlan::OutOfRange => ctx.trace(TRACE_OUT_OF_RANGE),
            PairPlan::Deposit(plan) => {
                ctx.trace(TRACE_DEPOSITED);
                let pixel_in_slab = r * n_cols + c;
                for bin in plan.first_bin..plan.last_bin {
                    let amount = plan.amount(bin, cfg);
                    if amount != 0.0 {
                        match &upload.buffers {
                            SlabBuffers::Flat { output, .. } => {
                                ctx.atomic_add_f64(output, (bin * rows + r) * n_cols + c, amount);
                            }
                            SlabBuffers::Pointer { bins, .. } => {
                                ctx.charge_mem_bytes(8); // bin-pointer fetch
                                ctx.atomic_add_f64(&bins[bin], pixel_in_slab, amount);
                            }
                        }
                        ctx.trace(TRACE_DEPOSITS);
                    }
                }
            }
        }
    };
    device
        .launch_on(stream, "set_two", launch_cfg, kernel)
        .map(Some)
        .map_err(CoreError::from)
}

/// Shared per-`(row, col, pair)` evaluation: charge the index arithmetic,
/// fetch the pixel/wire/intensity (or depth-table) inputs, and build the
/// pair's deposit plan. Both accumulation strategies run exactly this —
/// they differ only in where the deposits land.
#[allow(clippy::too_many_arguments)]
fn eval_pair_body(
    ctx: &mut cuda_sim::ThreadCtx<'_>,
    upload: &SlabUpload,
    wires: &DeviceBuffer<f64>,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    rows: usize,
    n_cols: usize,
    r: usize,
    c: usize,
    z: usize,
) -> PairPlan {
    // The 1-D↔3-D index conversions the paper trades against pointer
    // shipping (§III-B).
    ctx.charge_flops(6);

    let in_kernel = matches!(upload.depth_table, DepthTableRef::None);
    // In table mode the kernel never touches the pixel/wire arrays.
    let (pixel, w0, w1) = if in_kernel {
        let pi = (r * n_cols + c) * 3;
        (
            Vec3::new(
                ctx.read(&upload.pixels, pi),
                ctx.read(&upload.pixels, pi + 1),
                ctx.read(&upload.pixels, pi + 2),
            ),
            Vec3::new(
                ctx.read(wires, z * 3),
                ctx.read(wires, z * 3 + 1),
                ctx.read(wires, z * 3 + 2),
            ),
            Vec3::new(
                ctx.read(wires, (z + 1) * 3),
                ctx.read(wires, (z + 1) * 3 + 1),
                ctx.read(wires, (z + 1) * 3 + 2),
            ),
        )
    } else {
        (Vec3::ZERO, Vec3::ZERO, Vec3::ZERO)
    };
    let pixel_in_slab = r * n_cols + c;
    let (i0, i1) = match &upload.buffers {
        SlabBuffers::Flat { intensity, .. } => (
            ctx.read(intensity, (z * rows + r) * n_cols + c),
            ctx.read(intensity, ((z + 1) * rows + r) * n_cols + c),
        ),
        SlabBuffers::Pointer { images, .. } => {
            // Pointer chase: fetch the row pointer, then the element.
            ctx.charge_mem_bytes(16);
            (
                ctx.read(&images[z], pixel_in_slab),
                ctx.read(&images[z + 1], pixel_in_slab),
            )
        }
    };

    let mut flops = 0u64;
    let plan = match &upload.depth_table {
        DepthTableRef::None => plan_pair(mapper, cfg, pixel, w0, w1, i0, i1, &mut flops),
        table_ref => {
            // Table mode: the differential/cutoff logic is identical,
            // but the depths come from the precomputed array.
            let delta = crate::pair::differential(cfg, i0, i1);
            flops += crate::pair::FLOPS_PER_PAIR;
            if delta.abs() <= cfg.intensity_cutoff {
                PairPlan::BelowCutoff
            } else {
                let (d0, d1) = match table_ref {
                    DepthTableRef::Slab(table) => (
                        ctx.read(table, (z * rows + r) * n_cols + c),
                        ctx.read(table, ((z + 1) * rows + r) * n_cols + c),
                    ),
                    DepthTableRef::Resident { buf, n_rows } => {
                        // Resident tables cover the full detector;
                        // index by absolute row.
                        let abs_r = upload.row0 + r;
                        (
                            ctx.read(buf, (z * n_rows + abs_r) * n_cols + c),
                            ctx.read(buf, ((z + 1) * n_rows + abs_r) * n_cols + c),
                        )
                    }
                    DepthTableRef::None => unreachable!(),
                };
                crate::pair::plan_from_band(cfg, delta, d0, d1, &mut flops)
            }
        }
    };
    ctx.charge_flops(flops);
    plan
}

/// The privatized `set_two` launch: one thread per slab pixel walks that
/// pixel's pairs in ascending `z` — the same per-cell deposit order as the
/// atomic launch — into its own row of the block's shared depth-bin tile;
/// once the block drains, the epilogue commits each nonzero cell with a
/// single global add. Every output cell receives at most one commit into a
/// zeroed buffer, so the image is bit-identical to the atomic path
/// (`0.0 + x == x` bitwise; nonzero summands cannot round to `-0.0`) and
/// deterministic even under the threaded executor (blocks commit to
/// disjoint pixels).
#[allow(clippy::too_many_arguments)]
fn launch_set_two_privatized<F>(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    cfg: &ReconstructionConfig,
    n_cols: usize,
    n_pairs: usize,
    shape: &LaunchShape<'_>,
    pixels_per_block: usize,
    eval_pair: &F,
) -> Result<Option<cuda_sim::LaunchRecord>>
where
    F: Fn(&mut cuda_sim::ThreadCtx<'_>, usize, usize, usize) -> PairPlan + Sync,
{
    let rows = upload.rows;
    let n_bins = cfg.n_depth_bins;
    let sp = upload.sparsity.as_ref();
    // Pixel domain per shape: banded slabs only visit live rows; compact
    // slabs visit every pixel but read only its CSR slice of the work-list.
    let n_pixels = match shape {
        LaunchShape::Banded { .. } => sp.map_or(0, |sp| sp.live_rows.len()) * n_cols,
        _ => rows * n_cols,
    } as u64;
    let pixel_rc = |pix: usize| -> (usize, usize) {
        match shape {
            LaunchShape::Banded { .. } => (
                sp.expect("banded shape has sparsity").live_rows[pix / n_cols] as usize,
                pix % n_cols,
            ),
            _ => (pix / n_cols, pix % n_cols),
        }
    };
    let deposit =
        |ctx: &mut cuda_sim::ThreadCtx<'_>, tile_row: &mut [f64], r: usize, c: usize, z: usize| {
            match eval_pair(ctx, r, c, z) {
                PairPlan::BelowCutoff => ctx.trace(TRACE_BELOW_CUTOFF),
                PairPlan::InvalidGeometry => ctx.trace(TRACE_INVALID),
                PairPlan::OutOfRange => ctx.trace(TRACE_OUT_OF_RANGE),
                PairPlan::Deposit(plan) => {
                    ctx.trace(TRACE_DEPOSITED);
                    let bins = plan.first_bin..plan.last_bin;
                    for (cell, bin) in tile_row[bins.clone()].iter_mut().zip(bins.start..) {
                        let amount = plan.amount(bin, cfg);
                        if amount != 0.0 {
                            // The thread owns its tile row, so this is a
                            // plain shared read-modify-write — no atomic.
                            ctx.charge_shared_bytes(16);
                            *cell += amount;
                            ctx.trace(TRACE_DEPOSITS);
                        }
                    }
                }
            }
        };
    let kernel = |ctx: &mut cuda_sim::ThreadCtx<'_>, shared: &mut [f64]| {
        let pix = ctx.global_id().x as usize;
        if pix as u64 >= n_pixels {
            return;
        }
        let slot = ctx.thread_idx.x as usize;
        let tile_row = &mut shared[slot * n_bins..(slot + 1) * n_bins];
        let (r, c) = pixel_rc(pix);
        match shape {
            LaunchShape::Dense => {
                for z in 0..n_pairs {
                    deposit(ctx, tile_row, r, c, z);
                }
            }
            LaunchShape::Banded { .. } => {
                let sp = sp.expect("banded shape has sparsity");
                for &z in &sp.live_pairs[r] {
                    ctx.charge_mem_bytes(8); // live-pair descriptor fetch
                    deposit(ctx, tile_row, r, c, z as usize);
                }
            }
            LaunchShape::Compact { list } => {
                let sp = sp.expect("compact shape has sparsity");
                ctx.charge_mem_bytes(8); // CSR offset fetch
                for k in sp.offsets[pix] as usize..sp.offsets[pix + 1] as usize {
                    // Entries are (r, c, z)-ordered, so this pixel's slice
                    // is already ascending in z.
                    let e = ctx.read(list, k);
                    deposit(ctx, tile_row, r, c, (e & 0xFFFFF) as usize);
                }
            }
        }
    };
    let epilogue = |ctx: &mut cuda_sim::ThreadCtx<'_>, shared: &mut [f64]| {
        let block0 = (ctx.block_idx.x * ctx.block_dim.x) as usize;
        for slot in 0..pixels_per_block {
            let pix = block0 + slot;
            if pix as u64 >= n_pixels {
                break;
            }
            let (r, c) = pixel_rc(pix);
            let pixel_in_slab = r * n_cols + c;
            for (bin, &v) in shared[slot * n_bins..(slot + 1) * n_bins]
                .iter()
                .enumerate()
            {
                // The reduction scans every tile cell once…
                ctx.charge_shared_bytes(8);
                ctx.charge_flops(1);
                if v != 0.0 {
                    // …and commits each touched (pixel, bin) exactly once.
                    match &upload.buffers {
                        SlabBuffers::Flat { output, .. } => {
                            ctx.atomic_add_f64(output, (bin * rows + r) * n_cols + c, v);
                        }
                        SlabBuffers::Pointer { bins, .. } => {
                            ctx.charge_mem_bytes(8); // bin-pointer fetch
                            ctx.atomic_add_f64(&bins[bin], pixel_in_slab, v);
                        }
                    }
                }
            }
        }
    };
    device
        .launch_shared_on(
            stream,
            "set_two",
            LaunchConfig::linear(n_pixels, pixels_per_block as u64),
            pixels_per_block * n_bins,
            kernel,
            epilogue,
        )
        .map(Some)
        .map_err(CoreError::from)
}

/// Download one slab's output and merge it into the full image. Returns
/// the virtual time when the last D2H copy completes (the ring uses it as
/// the slot-free edge for the next upload).
#[allow(clippy::too_many_arguments)]
pub(crate) fn download_slab(
    device: &Device,
    stream: StreamId,
    upload: &SlabUpload,
    image: &mut DepthImage,
    cfg: &ReconstructionConfig,
    n_cols: usize,
    recovery: &mut RecoveryLog,
    integrity: &mut IntegrityReport,
) -> Result<f64> {
    let rows = upload.rows;
    let checked = cfg.integrity.enabled();
    let mut done_at = 0.0f64;
    match &upload.buffers {
        SlabBuffers::Flat { output, .. } => {
            let mut host = vec![0.0f64; cfg.n_depth_bins * rows * n_cols];
            let report = if checked { Some(&mut *integrity) } else { None };
            let span = retry_transfer(device, stream, recovery, report, || {
                if checked {
                    device.memcpy_dtoh_checked_on(stream, output, &mut host)
                } else {
                    device.memcpy_dtoh_on(stream, output, &mut host)
                }
            })?;
            done_at = span.end_s;
            // The host buffer is already in slab layout; assign (don't
            // accumulate) this slab's rows.
            image.assign_rows(upload.row0, rows, &host)?;
        }
        SlabBuffers::Pointer { bins, .. } => {
            // One D2H per bin: the 3D layout pays latency both ways.
            let mut host = vec![0.0f64; rows * n_cols];
            for (bin, buf) in bins.iter().enumerate() {
                let report = if checked { Some(&mut *integrity) } else { None };
                let span = retry_transfer(device, stream, recovery, report, || {
                    if checked {
                        device.memcpy_dtoh_checked_on(stream, buf, &mut host)
                    } else {
                        device.memcpy_dtoh_on(stream, buf, &mut host)
                    }
                })?;
                done_at = done_at.max(span.end_s);
                for r in 0..rows {
                    for c in 0..n_cols {
                        *image.at_mut(bin, upload.row0 + r, c) = host[r * n_cols + c];
                    }
                }
            }
        }
    }
    Ok(done_at)
}

/// What the ring reports to its slab observer.
pub(crate) enum SlabEvent<'e> {
    /// A slab passed its checks (or ran unchecked) and its rows are final:
    /// `(row0, rows, per-slab stats, slab rows of the image)`.
    Commit {
        row0: usize,
        rows: usize,
        stats: &'e ReconStats,
        data: &'e [f64],
    },
    /// An integrity check condemned the slab; scrub recovery is about to
    /// re-execute it. The checkpoint layer journals a poison record so a
    /// crash mid-scrub can never resurrect condemned data.
    Poison { row0: usize, rows: usize },
}

/// A slab observer: called once per slab event, immediately after the
/// slab's D2H download lands (commits) or its verification fails
/// (poisons). This is the checkpoint layer's hook into the ring — the
/// journal appends the record before the ring moves on, so a slab is
/// either fully durable or not committed at all.
pub(crate) type SlabSink<'a> = Option<&'a mut dyn FnMut(SlabEvent<'_>) -> Result<()>>;

/// One slab's share of the pair counters, combining its (optional) prescan
/// and main launches. Culled combos never launch a thread: their pairs are
/// provably out of the depth window, so they count as `pairs_out_of_range`
/// and one `culled_rows` per combo. Below-cutoff pairs the prescan dropped
/// before the main launch count as both `pairs_below_cutoff` and
/// `compacted_pairs`.
fn slab_stats(
    prescan: Option<&cuda_sim::LaunchRecord>,
    main: Option<&cuda_sim::LaunchRecord>,
    pairs_total: u64,
    culled_combos: u64,
    n_cols: usize,
) -> ReconStats {
    let t = |rec: Option<&cuda_sim::LaunchRecord>, slot: usize| rec.map_or(0, |r| r.traces[slot]);
    let compacted = t(prescan, TRACE_BELOW_CUTOFF);
    ReconStats {
        pairs_total,
        pairs_below_cutoff: compacted + t(main, TRACE_BELOW_CUTOFF),
        pairs_invalid_geometry: t(main, TRACE_INVALID),
        pairs_out_of_range: t(main, TRACE_OUT_OF_RANGE) + culled_combos * n_cols as u64,
        pairs_deposited: t(main, TRACE_DEPOSITED),
        deposits: t(main, TRACE_DEPOSITS),
        culled_rows: culled_combos,
        compacted_pairs: compacted,
        // Attribution to an accumulation strategy is a slab-level fact the
        // ring fills in after it resolves the plan.
        privatized_pairs: 0,
        accum_fallback_pairs: 0,
    }
}

/// Everything about the ring's environment that slab commit/scrub needs
/// but never mutates. Bundled so the recovery path can re-execute a slab
/// without threading a dozen arguments through every call.
pub(crate) struct RingCtx<'a> {
    device: &'a Device,
    upload_stream: StreamId,
    compute_stream: StreamId,
    download_stream: StreamId,
    geom: &'a ScanGeometry,
    mapper: &'a DepthMapper,
    cfg: &'a ReconstructionConfig,
    opts: GpuOptions,
    n_images: usize,
    n_cols: usize,
    /// ABFT comparison tolerance: 0 (bit equality) under the sequential
    /// executor, reassociation-scaled under a threaded one.
    abft_tol: f64,
}

/// Check the launches of one slab against their watchdog deadline: a
/// launch whose modeled duration exceeds `watchdog_multiplier ×` the cost
/// model's prediction for its metered work is presumed hung (the injected
/// stuck-kernel fault stretches the duration while the metered cost stays
/// honest). Returns whether any launch tripped.
fn watchdog_check(
    ctx: &RingCtx<'_>,
    integrity: &mut IntegrityReport,
    launches: [Option<&cuda_sim::LaunchRecord>; 2],
) -> bool {
    if !ctx.cfg.integrity.enabled() {
        return false;
    }
    let mut tripped = false;
    for rec in launches.into_iter().flatten() {
        integrity.checks_run += 1;
        let predicted = ctx.device.props().kernel_time(&rec.cost);
        if rec.duration_s > ctx.cfg.watchdog_multiplier * predicted {
            integrity.watchdog_timeouts += 1;
            tripped = true;
        }
    }
    tripped
}

/// One executed slab: the unit of work scrub recovery re-executes.
struct SlabExec {
    /// The upload (holding the slab's device buffers).
    upload: SlabUpload,
    stats: ReconStats,
    /// When the slab's last kernel retires (upload-ready time if no
    /// kernel launched).
    kernel_end: f64,
    /// Did a launch blow its watchdog deadline?
    suspect: bool,
    /// Did the main kernel actually launch (non-empty domain)?
    main_ran: bool,
}

/// Upload, launch, and stat one slab.
#[allow(clippy::too_many_arguments)]
fn execute_slab(
    ctx: &RingCtx<'_>,
    source: &mut dyn SlabSource,
    table_source: &TableSource,
    wires: &DeviceBuffer<f64>,
    cull: Option<&ShadowCull>,
    row0: usize,
    rows: usize,
    recovery: &mut RecoveryLog,
    integrity: &mut IntegrityReport,
) -> Result<SlabExec> {
    let device = ctx.device;
    let upload = upload_slab(
        device,
        ctx.upload_stream,
        source,
        ctx.geom,
        ctx.mapper,
        ctx.cfg,
        ctx.opts,
        table_source,
        row0,
        rows,
        recovery,
        cull,
        integrity,
    )?;
    device.wait_until(ctx.compute_stream, upload.ready_at);
    let prescan = launch_prescan(device, ctx.compute_stream, &upload, ctx.n_cols)?;
    let main = launch_set_two(
        device,
        ctx.compute_stream,
        &upload,
        wires,
        ctx.mapper,
        ctx.cfg,
        ctx.n_images,
        ctx.n_cols,
        upload.accum,
    )?;
    let pairs = (rows * ctx.n_cols * (ctx.n_images - 1)) as u64;
    let culled = upload.sparsity.as_ref().map_or(0, |sp| sp.culled_combos);
    let mut stats = slab_stats(prescan.as_ref(), main.as_ref(), pairs, culled, ctx.n_cols);
    if main.is_some() {
        match upload.accum {
            AccumPlan::Privatized { .. } => stats.privatized_pairs = stats.pairs_total,
            AccumPlan::Atomic { fallback: true } => stats.accum_fallback_pairs = stats.pairs_total,
            AccumPlan::Atomic { fallback: false } => {}
        }
    }
    let suspect = watchdog_check(ctx, integrity, [prescan.as_ref(), main.as_ref()]);
    // An all-culled or empty-list slab never launches: its output rows
    // stay zero and the slot frees at upload time.
    let kernel_end = main
        .as_ref()
        .map(|r| r.end_s)
        .or_else(|| prescan.as_ref().map(|r| r.end_s))
        .unwrap_or(upload.ready_at);
    Ok(SlabExec {
        upload,
        stats,
        kernel_end,
        suspect,
        main_ran: main.is_some(),
    })
}

/// Drain one ring slot: download the slab, verify it when integrity is
/// on, recover per the integrity mode when verification fails, then —
/// with a sink attached — commit it (journal append + progress
/// bookkeeping). Returns the slot-free edge from [`download_slab`].
///
/// Verification is the ABFT check: the host redundantly recomputes the
/// slab with the dense CPU engine (re-reading the intensities from the
/// source — device-resident data is not trusted) and compares per-bin
/// sums. A slab whose launch tripped the watchdog is condemned even if
/// its sums match. In `verify` mode a condemned slab aborts the run; in
/// `scrub` mode it is quarantined (poison record), re-executed with
/// bounded exponential backoff — each retry re-rolls the fault dice, so
/// one-shot corruption heals — and, when the device corrupts
/// persistently, repaired from the host reference.
#[allow(clippy::too_many_arguments)]
fn commit_slab(
    ctx: &RingCtx<'_>,
    upload: SlabUpload,
    stats: ReconStats,
    suspect: bool,
    image: &mut DepthImage,
    source: &mut dyn SlabSource,
    table_source: &TableSource,
    wires: &DeviceBuffer<f64>,
    cull: Option<&ShadowCull>,
    recovery: &mut RecoveryLog,
    integrity: &mut IntegrityReport,
    band_stats: &mut ReconStats,
    sink: &mut SlabSink<'_>,
) -> Result<f64> {
    let device = ctx.device;
    let cfg = ctx.cfg;
    let (row0, rows) = (upload.row0, upload.rows);
    let mut freed_at = download_slab(
        device,
        ctx.download_stream,
        &upload,
        image,
        cfg,
        ctx.n_cols,
        recovery,
        integrity,
    )?;
    let commit = |image: &DepthImage, stats: &ReconStats, sink: &mut SlabSink<'_>| -> Result<()> {
        if let Some(sink) = sink.as_mut() {
            let data = image.extract_rows(row0, rows);
            sink(SlabEvent::Commit {
                row0,
                rows,
                stats,
                data: &data,
            })?;
        }
        Ok(())
    };
    if !cfg.integrity.enabled() {
        band_stats.merge(&stats);
        commit(image, &stats, sink)?;
        return Ok(freed_at);
    }

    // ABFT: redundant host recompute, charged to the overlapped host-CPU
    // resource so the planner's virtual-time model prices it.
    let reference = integrity::slab_reference(source, ctx.geom, ctx.mapper, cfg, row0, rows)?;
    let host_t0 = device.host_flops_time_s();
    device.charge_host_flops(reference.host_flops);
    integrity.verify_host_cpu_s += device.host_flops_time_s() - host_t0;
    integrity.checks_run += 1;

    let observed = integrity::bin_sums(&image.extract_rows(row0, rows), cfg.n_depth_bins);
    let sums_ok = integrity::sums_match(&observed, &reference.bin_sums, ctx.abft_tol);
    if !sums_ok {
        integrity.abft_mismatches += 1;
    }
    if sums_ok && !suspect {
        band_stats.merge(&stats);
        commit(image, &stats, sink)?;
        return Ok(freed_at);
    }

    // The slab is condemned: one corruption event, however many retries
    // the recovery below takes.
    integrity.corruptions_detected += 1;
    let what = if sums_ok {
        format!(
            "slab rows {row0}..{} blew its watchdog deadline (kernel presumed hung)",
            row0 + rows
        )
    } else {
        format!(
            "slab rows {row0}..{} failed ABFT depth-sum verification",
            row0 + rows
        )
    };
    if !cfg.integrity.repairs() {
        return Err(CoreError::IntegrityViolation(format!(
            "{what}; rerun with --integrity scrub to repair"
        )));
    }

    // Scrub: quarantine first (durable poison before any re-execution),
    // then re-execute with bounded exponential backoff. Drop the condemned
    // upload so its device buffers are free for the re-run.
    if let Some(sink) = sink.as_mut() {
        sink(SlabEvent::Poison { row0, rows })?;
    }
    drop(upload);
    // Everything past this point is pure makespan extension: the clean
    // slab would have freed its slot at `freed_at`, so whatever later
    // edge the retries push it to is integrity-exposed time.
    let clean_freed_at = freed_at;
    let mut committed_stats = stats;
    let mut backoff = integrity::SCRUB_BACKOFF_BASE_S;
    let mut repaired = false;
    for _ in 0..integrity::MAX_SCRUB_RETRIES {
        integrity.scrub_retries += 1;
        device.delay(ctx.compute_stream, backoff);
        backoff *= 2.0;
        let retry = execute_slab(
            ctx,
            source,
            table_source,
            wires,
            cull,
            row0,
            rows,
            recovery,
            integrity,
        )?;
        device.charge_host_flops(retry.upload.host_flops);
        device.wait_until(ctx.download_stream, retry.kernel_end);
        freed_at = download_slab(
            device,
            ctx.download_stream,
            &retry.upload,
            image,
            cfg,
            ctx.n_cols,
            recovery,
            integrity,
        )?;
        integrity.checks_run += 1;
        let observed = integrity::bin_sums(&image.extract_rows(row0, rows), cfg.n_depth_bins);
        if integrity::sums_match(&observed, &reference.bin_sums, ctx.abft_tol) && !retry.suspect {
            committed_stats = retry.stats;
            repaired = true;
            break;
        }
    }
    if !repaired {
        // Persistently corrupting device: repair the slab from the host
        // reference (the very data the check trusted) and carry on — the
        // stats are trace-derived counts a deposit-value flip cannot
        // touch, so the condemned launch's counters remain valid.
        image.assign_rows(row0, rows, &reference.data)?;
        integrity.cpu_fallback_slabs += 1;
    }
    integrity.exposed_overhead_s += (freed_at - clean_freed_at).max(0.0);
    integrity.corruptions_corrected += 1;
    band_stats.merge(&committed_stats);
    commit(image, &committed_stats, sink)?;
    Ok(freed_at)
}

pub(crate) fn stats_from_records(device: &Device, pairs_total: u64) -> ReconStats {
    let mut stats = ReconStats::default();
    for rec in device.records() {
        if rec.name == "prescan" {
            // Prescan traces only the below-cutoff pairs it dropped; the
            // compacted/culled attribution comes from the ring outcome.
            stats.pairs_below_cutoff += rec.traces[TRACE_BELOW_CUTOFF];
            continue;
        }
        if rec.name != "set_two" {
            continue;
        }
        stats.pairs_below_cutoff += rec.traces[TRACE_BELOW_CUTOFF];
        stats.pairs_invalid_geometry += rec.traces[TRACE_INVALID];
        stats.pairs_out_of_range += rec.traces[TRACE_OUT_OF_RANGE];
        stats.pairs_deposited += rec.traces[TRACE_DEPOSITED];
        stats.deposits += rec.traces[TRACE_DEPOSITS];
    }
    stats.pairs_total = pairs_total;
    stats
}

pub(crate) fn validate_inputs(
    source: &dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
) -> Result<()> {
    cfg.validate()?;
    if source.n_images() != geom.wire.n_steps {
        return Err(CoreError::ShapeMismatch(format!(
            "source has {} images but the wire scan has {} steps",
            source.n_images(),
            geom.wire.n_steps
        )));
    }
    if source.n_rows() != geom.detector.n_rows || source.n_cols() != geom.detector.n_cols {
        return Err(CoreError::ShapeMismatch(format!(
            "source is {}×{} pixels but the detector is {}×{}",
            source.n_rows(),
            source.n_cols(),
            geom.detector.n_rows,
            geom.detector.n_cols
        )));
    }
    if source.n_images() < 2 {
        return Err(CoreError::ShapeMismatch("need at least two images".into()));
    }
    Ok(())
}

/// Reconstruct with the paper's single-stream pipeline: for each row slab,
/// copy in → `set_two` kernel → copy out (no overlap, like the original).
pub fn reconstruct(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    layout: Layout,
) -> Result<GpuReconstruction> {
    reconstruct_with_options(
        device,
        source,
        geom,
        cfg,
        GpuOptions {
            layout,
            triangulation: Triangulation::InKernel,
            ..GpuOptions::default()
        },
    )
}

/// As [`reconstruct`], with the full option set (layout × triangulation).
/// Runs the ring at `k = 1` (serial pipeline) unless
/// [`ReconstructionConfig::pipeline_depth`] says otherwise, with no
/// depth-table cache attached.
pub fn reconstruct_with_options(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
) -> Result<GpuReconstruction> {
    reconstruct_pipelined(device, source, geom, cfg, opts, PipelineDepth::SERIAL, None)
}

/// Everything the ring learned while processing one row band.
pub(crate) struct RingOutcome {
    pub(crate) rows_per_slab: usize,
    pub(crate) n_slabs: usize,
    pub(crate) host_table_flops: u64,
    /// Ring depth actually used (memory pressure may shrink it).
    pub(crate) depth_used: usize,
    pub(crate) cache_stats: TableCacheStats,
    /// `(row, pair)` combos removed by wire-shadow culling.
    pub(crate) culled_rows: u64,
    /// Pairs the prescan dropped before the main launch (compact slabs).
    pub(crate) compacted_pairs: u64,
    /// Achieved active-pair density per slab (empty when compaction off).
    pub(crate) slab_densities: Vec<f64>,
    /// Per slab, whether its main launch ran privatized (empty when the
    /// run never asked for privatization).
    pub(crate) slab_privatized: Vec<bool>,
    /// Pairs attributed to slabs that ran the privatized accumulator.
    pub(crate) privatized_pairs: u64,
    /// Pairs that fell back to atomics although privatization was asked.
    pub(crate) accum_fallback_pairs: u64,
    /// Sum of the per-slab stats the ring actually committed. With
    /// integrity on this is authoritative: condemned launches that scrub
    /// re-executed appear in the device's launch records but not here.
    pub(crate) stats: ReconStats,
    /// What the integrity layer saw and did for this band.
    pub(crate) integrity: IntegrityReport,
}

/// Resolve where the kernel's depth tables come from. With a cache
/// attached in [`Triangulation::HostTables`] mode this is where warm runs
/// win: the host table is fetched (or computed once) from the cache, and —
/// budget permitting — installed as (or found already) device-resident.
/// Returns the source plus the host FLOPs actually spent this run.
#[allow(clippy::too_many_arguments)]
fn resolve_table_source(
    device: &Device,
    upload_stream: StreamId,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    cache: Option<&DepthTableCache>,
    recovery: &mut RecoveryLog,
    integrity: &mut IntegrityReport,
    run: &mut TableCacheStats,
) -> Result<(TableSource, u64)> {
    if opts.triangulation != Triangulation::HostTables {
        return Ok((TableSource::None, 0));
    }
    let Some(cache) = cache else {
        return Ok((TableSource::PerSlab, 0));
    };
    let key = TableKey::new(geom, cfg);
    let misses_before = run.host_misses;
    let tables = cache.host_tables(&key, run, || DepthTables::compute(geom, mapper, cfg));
    let host_flops = if run.host_misses > misses_before {
        tables.host_flops
    } else {
        0
    };
    let n_rows = tables.n_rows;
    if let Some(buf) = cache.lookup_device(device.id(), &key, run) {
        // Warm path: the table survived from an earlier run (device memory
        // persists across `reset_meters`), ready at virtual time 0.
        return Ok((TableSource::Resident { buf, n_rows }, host_flops));
    }
    if cache.evict_to_fit(device.id(), tables.bytes(), run) {
        let alloc = match device.alloc::<f64>(tables.depths.len()) {
            Ok(buf) => Some(buf),
            Err(cuda_sim::SimError::OutOfMemory { .. }) => {
                // The card is fuller than the cache budget assumed; drop
                // everything we hold there and retry once.
                cache.evict_device(device.id(), run);
                device.alloc::<f64>(tables.depths.len()).ok()
            }
            Err(e) => return Err(CoreError::Device(e)),
        };
        if let Some(buf) = alloc {
            let checked = cfg.integrity.enabled();
            let report = if checked { Some(&mut *integrity) } else { None };
            retry_transfer(device, upload_stream, recovery, report, || {
                let batch = [(&buf, &tables.depths[..])];
                if checked {
                    device.memcpy_htod_batched_checked(upload_stream, &batch)
                } else {
                    device.memcpy_htod_batched(upload_stream, &batch)
                }
            })?;
            cache.insert_device(device.id(), key, buf.clone(), run);
            return Ok((TableSource::Resident { buf, n_rows }, host_flops));
        }
    }
    // No residency (budget 0, table bigger than the budget, or the device
    // is simply full): host cache still saves the triangulation FLOPs.
    Ok((TableSource::HostSlice(tables), host_flops))
}

/// The k-deep ring: process the detector rows `band` on `device`, merging
/// results into `image`.
///
/// Three streams — upload, compute, download — carry up to `depth.0` slab
/// slots in flight. Each slab is chained by `wait_until` edges:
/// kernel-after-upload, download-after-kernel, and (once the ring is full)
/// next-upload-after-oldest-download, which is the slot-reuse edge that
/// bounds device memory at `depth.0` slabs. `k = 1` degenerates to the
/// serial copy-in → kernel → copy-out pipeline, bit-identically.
///
/// Recovery keeps PR 1's contract: transient transfer faults retry with
/// exponential backoff inside [`retry_transfer`]; a device OOM drains every
/// in-flight slot, then halves `rows_per_slab` (dropping the ring depth to
/// 1 when slabs are already single-row) and re-runs the same rows. The
/// error surfaces only at one row × depth 1.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ring(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    band: Range<usize>,
    image: &mut DepthImage,
    recovery: &mut RecoveryLog,
    mut sink: SlabSink<'_>,
) -> Result<RingOutcome> {
    if depth.0 == 0 {
        return Err(CoreError::InvalidConfig(
            "pipeline depth must be at least 1".into(),
        ));
    }
    let (n_images, n_cols) = (source.n_images(), source.n_cols());
    let upload_stream = device.create_stream();
    let compute_stream = device.create_stream();
    let download_stream = device.create_stream();
    let mut integrity = IntegrityReport::default();

    // Wire centres, shipped once (interleaved x, y, z).
    let mut wire_flat = Vec::with_capacity(geom.wire.n_steps * 3);
    for w in geom.wire.centers() {
        wire_flat.extend_from_slice(&[w.x, w.y, w.z]);
    }
    let wires = device.alloc::<f64>(wire_flat.len())?;
    {
        let checked = cfg.integrity.enabled();
        let report = if checked { Some(&mut integrity) } else { None };
        retry_transfer(device, upload_stream, recovery, report, || {
            if checked {
                device.memcpy_htod_checked_on(upload_stream, &wires, &wire_flat)
            } else {
                device.memcpy_htod_on(upload_stream, &wires, &wire_flat)
            }
        })?;
    }

    let mut cache_stats = TableCacheStats::default();
    let (table_source, mut host_table_flops) = resolve_table_source(
        device,
        upload_stream,
        geom,
        mapper,
        cfg,
        opts,
        cache,
        recovery,
        &mut integrity,
        &mut cache_stats,
    )?;
    // A resident table is not part of the per-slab working set: size slabs
    // as if triangulating in kernel (the budget below already excludes the
    // resident bytes via `mem_used`).
    let sizing_opts = match &table_source {
        TableSource::Resident { .. } => GpuOptions {
            triangulation: Triangulation::InKernel,
            ..opts
        },
        _ => opts,
    };

    // Level-1 sparsity: the wire-shadow cull table for this band, built
    // once on the host (the triangulation FLOPs are charged like the
    // host-table path's).
    let cull = if cfg.compaction.enabled() {
        let cull = ShadowCull::compute(geom, mapper, cfg, band.clone());
        host_table_flops += cull.host_flops;
        Some(cull)
    } else {
        None
    };

    let band_rows = band.end - band.start;
    let budget = device.mem_capacity() - device.mem_used();
    let mut slots = depth.0;
    let mut rows_per_slab = match cfg.rows_per_slab {
        Some(r) => r.min(band_rows),
        None => loop {
            // Plan-time fit: k slabs must be resident together. When even
            // one row per slab does not fit at this depth, shallow the ring
            // before giving up — overlap is an optimisation, capacity is
            // not.
            match fit_rows_per_slab(
                budget,
                band_rows,
                n_images,
                n_cols,
                cfg.n_depth_bins,
                sizing_opts,
                slots,
                cfg.compaction,
            ) {
                Ok(r) => break r,
                Err(CoreError::DeviceCapacity { .. }) if slots > 1 => slots = (slots / 2).max(1),
                Err(e) => return Err(e),
            }
        },
    };

    // Shared environment for slab execution and commit/scrub recovery.
    let abft_tol = match device.exec_mode() {
        ExecMode::Sequential => 0.0,
        ExecMode::Threaded(_) => integrity::THREADED_ABFT_REL_TOL,
    };
    let ctx = RingCtx {
        device,
        upload_stream,
        compute_stream,
        download_stream,
        geom,
        mapper,
        cfg,
        opts,
        n_images,
        n_cols,
        abft_tol,
    };
    let mut band_stats = ReconStats::default();

    // The ring proper: executed slabs (upload + kernel-end edge + stats +
    // watchdog verdict), oldest first.
    let mut ring: VecDeque<SlabExec> = VecDeque::with_capacity(slots);
    let mut n_slabs = 0usize;
    let mut culled_rows_total = 0u64;
    let mut compacted_total = 0u64;
    let mut slab_densities = Vec::new();
    let mut slab_privatized = Vec::new();
    let mut privatized_pairs_total = 0u64;
    let mut fallback_pairs_total = 0u64;
    // What one slab attempt reports back: (host table FLOPs, culled combos,
    // compacted pairs, realised density, privatized?, atomic fallback?).
    // The accumulation strategy itself is resolved per slab by
    // `upload_slab` (cost-model-driven under auto, forced otherwise).
    type SlabAttempt = (u64, u64, u64, Option<f64>, Option<bool>, bool);
    let mut row0 = band.start;
    while row0 < band.end {
        let rows = rows_per_slab.min(band.end - row0);
        let attempt = (|| -> Result<SlabAttempt> {
            if ring.len() == slots {
                // Free the oldest slot: download after its kernel, and gate
                // the upcoming upload on the download so the reused memory
                // is modeled as available only once the slot drains.
                let oldest = ring.pop_front().expect("ring is full");
                device.wait_until(download_stream, oldest.kernel_end);
                let freed_at = commit_slab(
                    &ctx,
                    oldest.upload,
                    oldest.stats,
                    oldest.suspect,
                    image,
                    source,
                    &table_source,
                    &wires,
                    cull.as_ref(),
                    recovery,
                    &mut integrity,
                    &mut band_stats,
                    &mut sink,
                )?;
                device.wait_until(upload_stream, freed_at);
            }
            let exec = execute_slab(
                &ctx,
                source,
                &table_source,
                &wires,
                cull.as_ref(),
                row0,
                rows,
                recovery,
                &mut integrity,
            )?;
            let flops = exec.upload.host_flops;
            let culled = exec
                .upload
                .sparsity
                .as_ref()
                .map_or(0, |sp| sp.culled_combos);
            let density = exec.upload.sparsity.as_ref().map(|sp| sp.density);
            let compacted = exec.stats.compacted_pairs;
            // Attribute the slab's pairs to the strategy its main launch
            // actually ran (an empty launch domain ran neither); under a
            // privatized-leaning mode an atomic slab counts against the
            // privatized attribution, under forced atomics there is
            // nothing to attribute.
            let fallback = matches!(exec.upload.accum, AccumPlan::Atomic { fallback: true });
            let privatized = match (exec.main_ran, exec.upload.accum) {
                (true, AccumPlan::Privatized { .. }) => Some(true),
                _ => cfg.accumulation.wants_privatized().then_some(false),
            };
            ring.push_back(exec);
            Ok((flops, culled, compacted, density, privatized, fallback))
        })();
        match attempt {
            Ok((flops, culled, compacted, density, privatized, fallback)) => {
                host_table_flops += flops;
                culled_rows_total += culled;
                compacted_total += compacted;
                if let Some(d) = density {
                    slab_densities.push(d);
                }
                if let Some(p) = privatized {
                    slab_privatized.push(p);
                    let pairs = (rows * n_cols * (n_images - 1)) as u64;
                    if p {
                        privatized_pairs_total += pairs;
                    } else if fallback {
                        fallback_pairs_total += pairs;
                    }
                }
                n_slabs += 1;
                row0 += rows;
            }
            Err(e @ CoreError::Device(cuda_sim::SimError::OutOfMemory { .. })) => {
                // Drain every in-flight slot (their kernels already ran and
                // their rows precede `row0`), freeing their memory, then
                // shrink the plan and re-run the same rows. Correctness is
                // chunking-invariant: downloads assign exactly their slab's
                // rows, so a smaller re-run overwrites cleanly.
                while let Some(oldest) = ring.pop_front() {
                    device.wait_until(download_stream, oldest.kernel_end);
                    commit_slab(
                        &ctx,
                        oldest.upload,
                        oldest.stats,
                        oldest.suspect,
                        image,
                        source,
                        &table_source,
                        &wires,
                        cull.as_ref(),
                        recovery,
                        &mut integrity,
                        &mut band_stats,
                        &mut sink,
                    )?;
                }
                if rows_per_slab > 1 {
                    rows_per_slab /= 2;
                } else if slots > 1 {
                    slots = 1;
                } else {
                    return Err(e);
                }
                recovery.replans += 1;
            }
            Err(e) => return Err(e),
        }
    }
    // Drain the tail of the ring.
    while let Some(oldest) = ring.pop_front() {
        device.wait_until(download_stream, oldest.kernel_end);
        commit_slab(
            &ctx,
            oldest.upload,
            oldest.stats,
            oldest.suspect,
            image,
            source,
            &table_source,
            &wires,
            cull.as_ref(),
            recovery,
            &mut integrity,
            &mut band_stats,
            &mut sink,
        )?;
    }

    if let Some(cache) = cache {
        cache_stats.resident_bytes = cache.resident_bytes(device.id());
    }
    // Charge the band's triangulation FLOPs to the host-CPU resource: the
    // work becomes visible (and contended, when several devices share a
    // host) on the host timeline without stalling any device stream.
    device.charge_host_flops(host_table_flops);
    Ok(RingOutcome {
        rows_per_slab,
        n_slabs,
        host_table_flops,
        depth_used: slots,
        cache_stats,
        culled_rows: culled_rows_total,
        compacted_pairs: compacted_total,
        slab_densities,
        slab_privatized,
        privatized_pairs: privatized_pairs_total,
        accum_fallback_pairs: fallback_pairs_total,
        stats: band_stats,
        integrity,
    })
}

/// Reconstruct with the k-deep transfer/compute ring and, optionally, a
/// persistent depth-table cache.
///
/// `depth` is the default ring depth; [`ReconstructionConfig::pipeline_depth`]
/// overrides it when set. The cache only participates in
/// [`Triangulation::HostTables`] mode.
pub fn reconstruct_pipelined(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
) -> Result<GpuReconstruction> {
    validate_inputs(source, geom, cfg)?;
    let mapper = geom.mapper()?;
    let (n_images, n_rows, n_cols) = (source.n_images(), source.n_rows(), source.n_cols());
    let depth = cfg.pipeline_depth.map(PipelineDepth).unwrap_or(depth);

    device.reset_meters();
    let mut recovery = RecoveryLog::default();
    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows, n_cols);
    let outcome = run_ring(
        device,
        source,
        geom,
        &mapper,
        cfg,
        opts,
        depth,
        cache,
        0..n_rows,
        &mut image,
        &mut recovery,
        None,
    )?;

    let elapsed_s = device.synchronize();
    let stats = if cfg.integrity.enabled() {
        // The committed per-slab sum is authoritative: launch records
        // include condemned launches that scrub re-executed.
        outcome.stats
    } else {
        let pairs_total = (n_rows * n_cols * (n_images - 1)) as u64;
        // Culled combos never launched a thread; attribute their pairs here.
        let mut stats = stats_from_records(device, pairs_total);
        stats.pairs_out_of_range += outcome.culled_rows * n_cols as u64;
        stats.culled_rows = outcome.culled_rows;
        stats.compacted_pairs = outcome.compacted_pairs;
        stats.privatized_pairs = outcome.privatized_pairs;
        stats.accum_fallback_pairs = outcome.accum_fallback_pairs;
        stats
    };
    Ok(GpuReconstruction {
        image,
        stats,
        meters: device.meters(),
        rows_per_slab: outcome.rows_per_slab,
        n_slabs: outcome.n_slabs,
        elapsed_s,
        peak_device_mem: device.mem_peak(),
        host_table_flops: outcome.host_table_flops,
        host_table_time_s: device.host_flops_time_s(),
        recovery,
        pipeline_depth: outcome.depth_used,
        table_cache: outcome.cache_stats,
        slab_densities: outcome.slab_densities,
        slab_privatized: outcome.slab_privatized,
        integrity: outcome.integrity,
    })
}

/// As [`reconstruct_pipelined`], but checkpoint-aware: the run starts from
/// `progress` (fresh, or replayed from a [`RunJournal`]) and processes only
/// the rows not yet committed. Each slab commit is appended to `journal`
/// (when given) *before* the ring moves on, so after any interruption —
/// process kill, injected [`cuda_sim::SimError::DeviceLost`] — the journal
/// plus `progress` hold every completed slab and the caller can resume or
/// salvage. On error, `progress` retains all committed state.
///
/// Because slab downloads assign rows exclusively and the engines are
/// chunking-invariant, a resumed run is bit-identical to an uninterrupted
/// one regardless of where the cut fell or what slab plan the resume uses.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_checkpointed(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    progress: &mut SlabProgress,
    journal: Option<&mut RunJournal>,
) -> Result<GpuReconstruction> {
    reconstruct_checkpointed_bounded(
        device,
        source,
        geom,
        cfg,
        opts,
        depth,
        cache,
        progress,
        journal,
        usize::MAX,
    )
    .map(|(out, _)| out)
}

/// As [`reconstruct_checkpointed`], but processes at most `max_rows`
/// fresh (uncommitted) rows before returning — the preemption quantum the
/// serve scheduler runs long jobs in. The second return value is `true`
/// when the whole detector is now committed; `false` means the job was
/// paused at a slab boundary and can be resumed — on this device or any
/// other — by calling again with the same `progress`/`journal` (chunking
/// invariance makes the eventual output bit-identical no matter where the
/// quantum cuts fell or which device ran which quantum).
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_checkpointed_bounded(
    device: &Device,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    progress: &mut SlabProgress,
    mut journal: Option<&mut RunJournal>,
    max_rows: usize,
) -> Result<(GpuReconstruction, bool)> {
    validate_inputs(source, geom, cfg)?;
    let mapper = geom.mapper()?;
    let n_rows = source.n_rows();
    let depth = cfg.pipeline_depth.map(PipelineDepth).unwrap_or(depth);

    device.reset_meters();
    let mut recovery = RecoveryLog::default();
    let mut rows_per_slab = 0usize;
    let mut host_table_flops = 0u64;
    let mut depth_used = depth.0;
    let mut cache_stats = TableCacheStats::default();
    let mut slab_densities = Vec::new();
    let mut slab_privatized = Vec::new();
    let mut integrity = IntegrityReport::default();
    let mut quantum = max_rows;
    for band in progress.uncovered(0..n_rows) {
        if quantum == 0 {
            break;
        }
        let band = band.start..band.end.min(band.start.saturating_add(quantum));
        quantum -= band.len();
        let (image, mut tracker) = progress.split_mut();
        let mut journal = journal.as_deref_mut();
        let mut sink = |event: SlabEvent<'_>| match event {
            SlabEvent::Commit {
                row0,
                rows,
                stats,
                data,
            } => {
                if let Some(j) = journal.as_mut() {
                    j.append(row0, rows, stats, data)?;
                }
                tracker.record(row0, rows, stats);
                Ok(())
            }
            // Durable quarantine before scrub re-executes: a crash between
            // the poison and the re-commit must never resurrect condemned
            // rows on replay.
            SlabEvent::Poison { row0, rows } => {
                if let Some(j) = journal.as_mut() {
                    j.append_poison(row0, rows)?;
                }
                Ok(())
            }
        };
        let outcome = run_ring(
            device,
            source,
            geom,
            &mapper,
            cfg,
            opts,
            depth,
            cache,
            band,
            image,
            &mut recovery,
            Some(&mut sink),
        )?;
        rows_per_slab = outcome.rows_per_slab;
        host_table_flops += outcome.host_table_flops;
        depth_used = outcome.depth_used;
        cache_stats.merge(&outcome.cache_stats);
        slab_densities.extend(outcome.slab_densities);
        slab_privatized.extend(outcome.slab_privatized);
        integrity.merge(&outcome.integrity);
    }
    // Counts every committed slab, replayed and fresh alike.
    let n_slabs = progress.committed_slabs();

    let elapsed_s = device.synchronize();
    let complete = progress.is_complete(0..n_rows);
    Ok((
        GpuReconstruction {
            image: progress.image.clone(),
            stats: progress.stats,
            meters: device.meters(),
            rows_per_slab,
            n_slabs,
            elapsed_s,
            peak_device_mem: device.mem_peak(),
            host_table_flops,
            host_table_time_s: device.host_flops_time_s(),
            recovery,
            pipeline_depth: depth_used,
            table_cache: cache_stats,
            slab_densities,
            slab_privatized,
            integrity,
        },
        complete,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;
    use crate::input::{InMemorySlabSource, ScanView};
    use cuda_sim::{DeviceProps, ExecMode};

    fn demo() -> (ScanGeometry, ReconstructionConfig, Vec<f64>) {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        let cfg = ReconstructionConfig::new(-400.0, 400.0, 40);
        let (p, m, n) = (10, 6, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                900.0 - 31.0 * z as f64 - (px % 5) as f64 * 17.0
            })
            .collect();
        (geom, cfg, data)
    }

    fn big_device() -> Device {
        Device::new(DeviceProps::tiny(64 * 1024 * 1024))
    }

    #[test]
    fn gpu_matches_cpu_bitwise_when_sequential() {
        let (geom, cfg, data) = demo();
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let gpu_out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(
            cpu_out.image.data, gpu_out.image.data,
            "sequential executor must reproduce the CPU bit-for-bit"
        );
        assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    #[test]
    fn pointer_layout_same_result_more_transfers() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let flat = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let ptr = reconstruct(&device, &mut source, &geom, &cfg, Layout::Pointer3d).unwrap();
        assert_eq!(
            flat.image.data, ptr.image.data,
            "layouts agree functionally"
        );
        assert!(
            ptr.meters.transfers > flat.meters.transfers,
            "pointer layout must pay more transfers: {} vs {}",
            ptr.meters.transfers,
            flat.meters.transfers
        );
        assert!(
            ptr.meters.comm_time_s > flat.meters.comm_time_s,
            "and more communication time"
        );
        assert!(
            ptr.elapsed_s > flat.elapsed_s,
            "Fig 4: 1D beats 3D end to end"
        );
    }

    #[test]
    fn chunking_is_invariant() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut reference = None;
        for rows in [1usize, 2, 3, 6] {
            let mut cfg = cfg.clone();
            cfg.rows_per_slab = Some(rows);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
            assert_eq!(out.n_slabs, 6usize.div_ceil(rows));
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "rows_per_slab = {rows}"),
            }
        }
    }

    #[test]
    fn memory_cap_forces_small_slabs() {
        let (geom, cfg, data) = demo();
        // Budget only fits ~2 rows: intensity 10 img × 6 cols × 8 B = 480 B
        // per row, output 40 bins × 48 B per row...
        let need_1 = slab_bytes(1, 10, 6, 40, GpuOptions::default(), 1, CompactionMode::Off);
        let device = Device::new(DeviceProps::tiny(3 * need_1));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.rows_per_slab < 6,
            "cap must force chunking: {} rows/slab",
            out.rows_per_slab
        );
        assert!(out.n_slabs >= 2);
        assert!(out.peak_device_mem <= device.mem_capacity());
    }

    #[test]
    fn device_too_small_is_a_clean_error() {
        let (geom, cfg, data) = demo();
        let device = Device::new(DeviceProps::tiny(2048));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(e @ CoreError::DeviceCapacity { needed, budget }) => {
                assert!(needed > budget, "{needed} must exceed {budget}");
                assert!(e.to_string().contains("detector row"));
            }
            other => panic!("expected clean OOM-at-fit error, got {other:?}"),
        }
    }

    #[test]
    fn injected_oom_replans_to_identical_output() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(
            clean.recovery,
            RecoveryLog::default(),
            "no faults, no recovery"
        );
        assert_eq!(clean.n_slabs, 1, "everything fits in one slab");

        // Fail an allocation mid-run: the engine halves the slab plan and
        // re-runs the same rows, converging to the identical image.
        let device = big_device();
        device.set_fault_plan(cuda_sim::FaultPlan::new(1).fail_nth_alloc(3));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.replans >= 1, "OOM must trigger a re-plan");
        assert!(out.rows_per_slab < clean.rows_per_slab);
        assert!(out.n_slabs > clean.n_slabs);
        assert_eq!(
            out.image.data, clean.image.data,
            "re-planned run is bitwise identical"
        );
        assert_eq!(out.stats, clean.stats);
    }

    #[test]
    fn transient_transfer_faults_are_retried_to_identical_output() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        // Seed chosen so the keyed dice never fail 4 consecutive ordinals
        // (which would exhaust the retry budget — by design).
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(14)
                .fail_nth_h2d(2)
                .fail_nth_d2h(1)
                .h2d_fault_rate(0.3)
                .d2h_fault_rate(0.3),
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.recovery.transfer_retries > 0,
            "p = 0.3 over many copies must fire"
        );
        assert_eq!(out.recovery.replans, 0);
        assert_eq!(
            out.image.data, clean.image.data,
            "retries leave the data intact"
        );
        assert_eq!(out.stats, clean.stats);
        assert!(
            out.elapsed_s > clean.elapsed_s,
            "failed copies and backoff cost virtual time"
        );
    }

    #[test]
    fn first_allocation_failure_replans_and_completes() {
        // The acceptance scenario: "fail the first device allocation" must
        // still complete via re-planning when more than one row is planned.
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        // Allocation #1 is the wire table — before any slab exists; that
        // failure is not recoverable by slab re-planning, so script #2 (the
        // first slab allocation) as "the first allocation" of slab data.
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_nth_alloc(2));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.replans >= 1);
        assert_eq!(out.image.data, clean.image.data);
    }

    #[test]
    fn unrecoverable_oom_still_errors_at_one_row() {
        // When the plan is already a single row, a persistent OOM cannot be
        // re-planned away and must surface.
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1);
        let device = big_device();
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(0).report_mem_bytes(2048), // nothing fits
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(CoreError::Device(cuda_sim::SimError::OutOfMemory { .. })) => {}
            other => panic!("expected OOM passthrough, got {other:?}"),
        }
    }

    #[test]
    fn lost_device_error_propagates() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after(4));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        match reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d) {
            Err(e @ CoreError::Device(cuda_sim::SimError::DeviceLost)) => {
                assert!(e.is_gpu_failure());
            }
            other => panic!("expected DeviceLost, got {other:?}"),
        }
    }

    #[test]
    fn capacity_lie_shrinks_the_plan_but_not_the_answer() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        let need_2 = slab_bytes(2, 10, 6, 40, GpuOptions::default(), 1, CompactionMode::Off);
        device.set_fault_plan(cuda_sim::FaultPlan::new(0).report_mem_bytes(2 * need_2));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.rows_per_slab < clean.rows_per_slab,
            "planner saw the smaller card"
        );
        assert!(out.n_slabs > clean.n_slabs);
        assert_eq!(out.image.data, clean.image.data);
        assert_eq!(
            out.recovery.replans, 0,
            "planned small up front, no retrofit needed"
        );
    }

    #[test]
    fn ring_pipeline_retries_transfers() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(2);
        cfg.pipeline_depth = Some(3);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(clean.pipeline_depth, 3);

        let device = big_device();
        // Seed chosen so the keyed dice never fail 4 consecutive ordinals.
        device.set_fault_plan(
            cuda_sim::FaultPlan::new(0)
                .fail_nth_h2d(3)
                .h2d_fault_rate(0.25),
        );
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.transfer_retries > 0);
        assert_eq!(out.image.data, clean.image.data);
    }

    #[test]
    fn threaded_executor_matches_within_tolerance() {
        let (geom, cfg, data) = demo();
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = big_device();
        device.set_exec_mode(ExecMode::Threaded(4));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let gpu_out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let diff = cpu_out.image.max_abs_diff(&gpu_out.image);
        let scale = cpu_out
            .image
            .data
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(diff <= 1e-9 * (1.0 + scale), "diff {diff} vs scale {scale}");
        assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    #[test]
    fn deeper_rings_shorten_the_makespan() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1); // many slabs → pipelining matters
        let device = big_device();
        let run_depth = |k: usize| {
            let mut cfg = cfg.clone();
            cfg.pipeline_depth = Some(k);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap()
        };
        let serial = run_depth(1);
        let double = run_depth(2);
        let triple = run_depth(3);
        assert_eq!(serial.image.data, double.image.data);
        assert_eq!(serial.image.data, triple.image.data);
        assert_eq!(serial.stats, double.stats);
        assert!(
            double.elapsed_s < serial.elapsed_s,
            "double buffering must shorten the makespan: {} vs {}",
            double.elapsed_s,
            serial.elapsed_s
        );
        assert!(
            triple.elapsed_s <= double.elapsed_s + 1e-12,
            "k = 3 must not be slower than k = 2: {} vs {}",
            triple.elapsed_s,
            double.elapsed_s
        );
        // The serial ring is exactly the unoverlapped pipeline.
        assert!(
            (serial.elapsed_s - serial.meters.serial_total_s()).abs() < 1e-12,
            "k = 1 has no overlap"
        );
    }

    #[test]
    fn ring_survives_injected_oom_mid_flight() {
        // OOM while slots are in flight: the ring must drain, halve the
        // plan, and still converge bit-identically.
        let (geom, mut cfg, data) = demo();
        cfg.pipeline_depth = Some(3);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let clean = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let device = big_device();
        device.set_fault_plan(cuda_sim::FaultPlan::new(1).fail_nth_alloc(3));
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(out.recovery.replans >= 1, "OOM must trigger a re-plan");
        assert_eq!(out.image.data, clean.image.data);
        assert_eq!(out.stats, clean.stats);
    }

    #[test]
    fn ring_depth_degrades_to_serial_when_memory_is_tight() {
        // A card that fits exactly one single-slot slab: requesting k = 4
        // must degrade the ring rather than error.
        let (geom, cfg, data) = demo();
        let need_1 = slab_bytes(1, 10, 6, 40, GpuOptions::default(), 1, CompactionMode::Off);
        // Headroom: the planner reserves 10 % + the wire table.
        let device = Device::new(DeviceProps::tiny(2 * need_1));
        let mut cfg = cfg.clone();
        cfg.pipeline_depth = Some(4);
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert!(
            out.pipeline_depth < 4,
            "requested depth cannot fit: {}",
            out.pipeline_depth
        );
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(out.image.data, cpu_out.image.data);
    }

    #[test]
    fn cached_tables_are_bit_identical_and_save_work() {
        let (geom, cfg, data) = demo();
        let opts = GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let fresh = reconstruct_with_options(&device, &mut source, &geom, &cfg, opts).unwrap();

        let cache = crate::cache::DepthTableCache::new(16 * 1024 * 1024);
        let device = big_device();
        let run = |device: &Device| {
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            reconstruct_pipelined(
                device,
                &mut source,
                &geom,
                &cfg,
                opts,
                PipelineDepth::SERIAL,
                Some(&cache),
            )
            .unwrap()
        };
        let cold = run(&device);
        assert_eq!(cold.image.data, fresh.image.data, "cache changes nothing");
        assert_eq!(cold.stats, fresh.stats);
        assert_eq!(cold.table_cache.host_misses, 1);
        assert_eq!(cold.table_cache.device_misses, 1);
        assert!(cold.host_table_flops > 0, "cold run pays the triangulation");

        let warm = run(&device);
        assert_eq!(warm.image.data, fresh.image.data, "warm run bit-identical");
        assert_eq!(warm.stats, fresh.stats);
        assert_eq!(warm.table_cache.host_hits, 1);
        assert_eq!(warm.table_cache.device_hits, 1);
        assert_eq!(warm.host_table_flops, 0, "warm run skips the host FLOPs");
        assert!(
            warm.meters.h2d_bytes < cold.meters.h2d_bytes,
            "resident table is not re-uploaded: {} vs {}",
            warm.meters.h2d_bytes,
            cold.meters.h2d_bytes
        );
        assert!(
            warm.elapsed_s < cold.elapsed_s,
            "warm run is faster in virtual time: {} vs {}",
            warm.elapsed_s,
            cold.elapsed_s
        );
    }

    #[test]
    fn cache_without_residency_budget_still_saves_host_flops() {
        let (geom, cfg, data) = demo();
        let opts = GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let cache = crate::cache::DepthTableCache::new(0); // no residency
        let device = big_device();
        let run = || {
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            reconstruct_pipelined(
                &device,
                &mut source,
                &geom,
                &cfg,
                opts,
                PipelineDepth::SERIAL,
                Some(&cache),
            )
            .unwrap()
        };
        let cold = run();
        let warm = run();
        assert_eq!(cold.image.data, warm.image.data);
        assert_eq!(
            warm.table_cache.device_hits, 0,
            "budget 0 disables residency"
        );
        assert_eq!(warm.table_cache.host_hits, 1);
        assert_eq!(warm.host_table_flops, 0);
        assert_eq!(
            warm.meters.h2d_bytes, cold.meters.h2d_bytes,
            "tables still ship per slab"
        );
    }

    #[test]
    fn grid3d_mapping_matches_linear() {
        // The paper's Fig 6 thread mapping must reach the same answer as
        // the linear launch. Deposit order per output slot differs, so the
        // comparison is within FP-reassociation tolerance; the statistics
        // must be identical.
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let linear = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let grid = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                mapping: ThreadMapping::Grid3d,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        let scale = linear
            .image
            .data
            .iter()
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        assert!(
            linear.image.max_abs_diff(&grid.image) <= 1e-9 * scale,
            "diff {}",
            linear.image.max_abs_diff(&grid.image)
        );
        assert_eq!(linear.stats, grid.stats);
        // The folded launch is legal on the real M2070 limits (grid.z = 1).
        let records = device.records();
        let rec = records.iter().rev().find(|r| r.name == "set_two").unwrap();
        assert!(
            rec.threads >= 6 * 6 * 9,
            "covers the domain: {}",
            rec.threads
        );
    }

    #[test]
    fn grid3d_is_valid_on_fermi_limits() {
        // Launch on the faithful M2070 preset: grid.z must be 1, block.z
        // ≤ 64 — the folding construction must satisfy both even for scans
        // with many more pairs than block.z.
        let geom = ScanGeometry::demo(6, 6, 40, -80.0, 3.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 40);
        let (p, m, n) = (40, 6, 6);
        let data: Vec<f64> = (0..p * m * n).map(|i| (i % 97) as f64).collect();
        let device = Device::new(cuda_sim::DeviceProps::tesla_m2070());
        let mut source = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let grid = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                mapping: ThreadMapping::Grid3d,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        let view = crate::ScanView::new(&data, p, m, n).unwrap();
        let cpu_out = crate::cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let scale = cpu_out
            .image
            .data
            .iter()
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        assert!(cpu_out.image.max_abs_diff(&grid.image) <= 1e-9 * scale);
        assert_eq!(cpu_out.stats, grid.stats);
    }

    #[test]
    fn host_tables_match_in_kernel_bitwise() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let in_kernel = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let tables = reconstruct_with_options(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions {
                layout: Layout::Flat1d,
                triangulation: Triangulation::HostTables,
                ..GpuOptions::default()
            },
        )
        .unwrap();
        assert_eq!(in_kernel.image.data, tables.image.data);
        assert_eq!(in_kernel.stats, tables.stats);
        // Tables trade device FLOPs for transfer + host FLOPs.
        assert_eq!(in_kernel.host_table_flops, 0);
        assert!(tables.host_table_flops > 0);
        assert!(tables.meters.h2d_bytes > in_kernel.meters.h2d_bytes);
        assert!(
            tables.meters.kernel_cost.flops < in_kernel.meters.kernel_cost.flops,
            "table kernel must skip the triangulation FLOPs"
        );
    }

    #[test]
    fn host_tables_chunking_invariance() {
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut reference = None;
        for rows in [1usize, 3, 6] {
            let mut cfg = cfg.clone();
            cfg.rows_per_slab = Some(rows);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct_with_options(
                &device,
                &mut source,
                &geom,
                &cfg,
                GpuOptions {
                    layout: Layout::Flat1d,
                    triangulation: Triangulation::HostTables,
                    ..GpuOptions::default()
                },
            )
            .unwrap();
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "rows_per_slab = {rows}"),
            }
        }
    }

    #[test]
    fn stats_come_from_kernel_traces() {
        let (geom, mut cfg, data) = demo();
        cfg.intensity_cutoff = 1e12; // everything below cutoff
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(out.stats.pairs_below_cutoff, out.stats.pairs_total);
        assert_eq!(out.stats.deposits, 0);
        assert!(out.stats.is_consistent());
        assert_eq!(out.image.total_intensity(), 0.0);
    }

    #[test]
    fn fit_rows_per_slab_is_maximal() {
        let budget = 10 * 1024 * 1024;
        let rows = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            GpuOptions::default(),
            1,
            CompactionMode::Off,
        )
        .unwrap();
        assert!(rows >= 1);
        let used = slab_bytes(
            rows,
            32,
            128,
            64,
            GpuOptions::default(),
            1,
            CompactionMode::Off,
        );
        let next = slab_bytes(
            rows + 1,
            32,
            128,
            64,
            GpuOptions::default(),
            1,
            CompactionMode::Off,
        );
        let headroom = budget - budget / 10;
        assert!(
            used <= headroom && next > headroom,
            "{used} {next} {headroom}"
        );
        // Each additional ring slot shrinks the slab further.
        let rows_2 = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            GpuOptions::default(),
            2,
            CompactionMode::Off,
        )
        .unwrap();
        assert!(rows_2 <= rows / 2 + 1);
        let rows_4 = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            GpuOptions::default(),
            4,
            CompactionMode::Off,
        )
        .unwrap();
        assert!(rows_4 <= rows_2);
        // The depth table enlarges the working set, shrinking the slab.
        let opts_tables = GpuOptions {
            layout: Layout::Flat1d,
            triangulation: Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let rows_tbl = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            opts_tables,
            1,
            CompactionMode::Off,
        )
        .unwrap();
        assert!(rows_tbl <= rows);
    }

    #[test]
    fn checkpointed_fresh_run_matches_pipelined_bitwise() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(2);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let baseline = reconstruct_pipelined(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
        )
        .unwrap();

        let mut progress = SlabProgress::new(cfg.n_depth_bins, 6, 6);
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct_checkpointed(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            &mut progress,
            None,
        )
        .unwrap();
        assert_eq!(out.image.data, baseline.image.data);
        assert_eq!(out.stats, baseline.stats);
        assert_eq!(out.n_slabs, baseline.n_slabs);
        assert_eq!(out.rows_per_slab, baseline.rows_per_slab);
    }

    #[test]
    fn device_loss_at_every_slab_boundary_resumes_bit_identically() {
        use crate::journal::{JournalKey, RunJournal};

        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(2); // 6 rows → 3 slabs
        let dims = (cfg.n_depth_bins, 6usize, 6usize);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let baseline = reconstruct_pipelined(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
        )
        .unwrap();

        let dir = std::env::temp_dir().join(format!("laue-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for lost_after in 0..3u64 {
            let key = JournalKey::new(format!("boundary-test-{lost_after}"));
            let dying = big_device();
            dying.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after_launches(lost_after));
            let (mut journal, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
            assert!(replayed.is_empty());
            let mut progress = SlabProgress::new(dims.0, dims.1, dims.2);
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let err = reconstruct_checkpointed(
                &dying,
                &mut source,
                &geom,
                &cfg,
                GpuOptions::default(),
                PipelineDepth::SERIAL,
                None,
                &mut progress,
                Some(&mut journal),
            )
            .unwrap_err();
            assert!(err.is_gpu_failure(), "{err}");
            assert_eq!(progress.committed_slabs(), lost_after as usize);
            drop(journal);

            // Restart from the journal on a healthy device.
            let clean = big_device();
            let (mut journal, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
            assert_eq!(replayed.len(), lost_after as usize, "replay commits");
            let mut progress = SlabProgress::replay(dims.0, dims.1, dims.2, &replayed).unwrap();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct_checkpointed(
                &clean,
                &mut source,
                &geom,
                &cfg,
                GpuOptions::default(),
                PipelineDepth::SERIAL,
                None,
                &mut progress,
                Some(&mut journal),
            )
            .unwrap();
            assert_eq!(
                out.image.data, baseline.image.data,
                "kill after slab {lost_after}: resume must be bit-identical"
            );
            assert_eq!(out.stats, baseline.stats);
            journal.remove().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn mixed_demo() -> (ScanGeometry, ReconstructionConfig, Vec<f64>) {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        // Wide enough that every depth band lies inside the window (no
        // culling): the prescan's compaction is isolated from level 1.
        let mut cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        cfg.intensity_cutoff = 18.0;
        let (p, m, n) = (10, 6, 6);
        // Differential is (px % 9) * 5 per pair: a mix of below-cutoff and
        // active pixels (density ~ 0.56 at cutoff 18).
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                900.0 - (px % 9) as f64 * 5.0 * z as f64 - (px % 3) as f64
            })
            .collect();
        (geom, cfg, data)
    }

    #[test]
    fn compaction_matches_dense_bitwise_across_layouts() {
        let (geom, cfg, data) = mixed_demo();
        let opt_set = [
            GpuOptions::default(),
            GpuOptions {
                layout: Layout::Pointer3d,
                ..GpuOptions::default()
            },
            GpuOptions {
                triangulation: Triangulation::HostTables,
                ..GpuOptions::default()
            },
        ];
        for opts in opt_set {
            let device = big_device();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let dense = reconstruct_with_options(&device, &mut source, &geom, &cfg, opts).unwrap();
            for mode in [CompactionMode::Auto, CompactionMode::On] {
                let mut cfg = cfg.clone();
                cfg.compaction = mode;
                let device = big_device();
                let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
                let sparse =
                    reconstruct_with_options(&device, &mut source, &geom, &cfg, opts).unwrap();
                assert_eq!(
                    dense.image.data, sparse.image.data,
                    "{opts:?} {mode:?} must be bit-identical to dense"
                );
                // The wide window culls nothing here, so every counter but
                // the new attribution must match the dense run exactly.
                assert_eq!(sparse.stats.culled_rows, 0);
                if mode == CompactionMode::On {
                    assert!(sparse.stats.compacted_pairs > 0, "{mode:?} must compact");
                    assert_eq!(
                        sparse.stats.compacted_pairs,
                        sparse.stats.pairs_below_cutoff
                    );
                }
                // Auto is a cost-model decision now: either launch shape is
                // legal, but the counters must reconcile with dense either
                // way (compaction only relabels below-cutoff pairs).
                let mut neutral = sparse.stats;
                neutral.compacted_pairs = 0;
                assert_eq!(neutral, dense.stats);
                assert!(sparse.stats.is_consistent());
                assert!(!sparse.slab_densities.is_empty());
                for d in &sparse.slab_densities {
                    assert!(*d > 0.4 && *d < 0.7, "density {d}");
                }
            }
        }
    }

    #[test]
    fn compaction_with_culling_matches_cpu_bitwise() {
        // Narrow depth window: wire-shadow culling removes whole (row, pair)
        // combos, the prescan drops below-cutoff pairs, and the GPU engine
        // must still agree with the CPU engine bit-for-bit, stats included.
        let (geom, _, data) = mixed_demo();
        let mut cfg = ReconstructionConfig::new(-350.0, 150.0, 25);
        cfg.intensity_cutoff = 18.0;
        cfg.compaction = CompactionMode::On;
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert!(cpu_out.stats.culled_rows > 0, "window must actually cull");
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let gpu_out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(cpu_out.image.data, gpu_out.image.data);
        assert_eq!(cpu_out.stats, gpu_out.stats);

        let mut dense_cfg = cfg.clone();
        dense_cfg.compaction = CompactionMode::Off;
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let dense = reconstruct(&device, &mut source, &geom, &dense_cfg, Layout::Flat1d).unwrap();
        assert_eq!(dense.image.data, gpu_out.image.data);
    }

    #[test]
    fn compaction_is_chunking_invariant() {
        let (geom, mut cfg, data) = mixed_demo();
        cfg.compaction = CompactionMode::On;
        let mut reference = None;
        for rows in [1usize, 2, 3, 6] {
            let mut cfg = cfg.clone();
            cfg.rows_per_slab = Some(rows);
            let device = big_device();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
            assert_eq!(out.slab_densities.len(), out.n_slabs);
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => assert_eq!(r, &out.image.data, "rows_per_slab = {rows}"),
            }
        }
    }

    #[test]
    fn compaction_cuts_modeled_kernel_time_on_sparse_stacks() {
        // One pixel in 36 carries signal: the compacted launch touches a
        // tiny fraction of the dense domain and the prescan's streaming
        // column scan is far cheaper than the dense kernel's per-thread
        // pixel/wire/intensity reads.
        // Large enough that kernel work, not launch overhead, dominates
        // the modeled time.
        let geom = ScanGeometry::demo(24, 24, 16, -60.0, 6.0).unwrap();
        let mut cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        cfg.intensity_cutoff = 1.0;
        let (p, m, n) = (16, 24, 24);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                if px == 7 {
                    900.0 - 40.0 * z as f64
                } else {
                    650.0
                }
            })
            .collect();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let dense = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        cfg.compaction = CompactionMode::Auto;
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, p, m, n).unwrap();
        let sparse = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(dense.image.data, sparse.image.data);
        assert!(sparse.slab_densities.iter().all(|d| *d < 0.05));
        assert!(
            sparse.meters.compute_time_s < dense.meters.compute_time_s / 2.0,
            "compact {} vs dense {}",
            sparse.meters.compute_time_s,
            dense.meters.compute_time_s
        );
    }

    #[test]
    fn auto_mode_launches_dense_at_full_density() {
        // Every pair of the plain demo stack is active, so Auto must fall
        // back to the dense launch: no compacted pairs, full-size set_two.
        let (geom, _, data) = demo();
        let mut cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let dense = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        cfg.compaction = CompactionMode::Auto;
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let auto = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(dense.image.data, auto.image.data);
        assert_eq!(auto.stats.compacted_pairs, 0);
        assert!(auto.slab_densities.iter().all(|d| *d == 1.0));
        let records = device.records();
        let main = records.iter().find(|r| r.name == "set_two").unwrap();
        assert!(
            main.threads >= 6 * 6 * 9,
            "dense fallback launches the full grid: {}",
            main.threads
        );
        assert!(
            records.iter().any(|r| r.name == "prescan"),
            "the density measurement itself must be paid for"
        );
    }

    #[test]
    fn fully_shadowed_window_skips_every_launch() {
        // A depth window beyond every wire shadow: culling removes all
        // combos, so nothing launches and the output is identically zero —
        // exactly what the dense path produces the long way round.
        let (geom, _, data) = demo();
        let cfg = ReconstructionConfig::new(2500.0, 3500.0, 10);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let dense = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut cfg = cfg.clone();
        cfg.compaction = CompactionMode::Auto;
        let device = big_device();
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let culled = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(dense.image.data, culled.image.data);
        assert_eq!(culled.stats.pairs_total, dense.stats.pairs_total);
        assert!(culled.stats.culled_rows > 0);
        assert!(culled.stats.is_consistent());
        if culled.stats.culled_rows == (6 * 9) as u64 {
            // Everything culled: the device never saw a kernel.
            assert!(device.records().is_empty(), "no launches at all");
        }
    }

    #[test]
    fn compaction_shrinks_the_slab_fit() {
        let budget = 8 * 1024 * 1024u64;
        let off = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            GpuOptions::default(),
            1,
            CompactionMode::Off,
        )
        .unwrap();
        let on = fit_rows_per_slab(
            budget,
            512,
            32,
            128,
            64,
            GpuOptions::default(),
            1,
            CompactionMode::On,
        )
        .unwrap();
        assert!(
            on < off,
            "work-list reservation must shrink the fit: {on} vs {off}"
        );
    }

    #[test]
    fn checkpointed_compaction_matches_dense() {
        let (geom, mut cfg, data) = mixed_demo();
        cfg.rows_per_slab = Some(2);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let dense = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        cfg.compaction = CompactionMode::On;
        let device = big_device();
        let mut progress = SlabProgress::new(cfg.n_depth_bins, 6, 6);
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct_checkpointed(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            &mut progress,
            None,
        )
        .unwrap();
        assert_eq!(dense.image.data, out.image.data);
        assert_eq!(out.slab_densities.len(), out.n_slabs);
        let mut neutral = out.stats;
        neutral.compacted_pairs = 0;
        assert_eq!(neutral, dense.stats);
    }

    #[test]
    fn accumulation_planner_prefers_occupancy() {
        let props = DeviceProps::tesla_m2070(); // 48 KiB shared
        let atomic = plan_accumulation(&props, 200, AccumulationMode::Atomic);
        assert_eq!(atomic, AccumPlan::Atomic { fallback: false });
        // 200 bins = 1600 B per row: 7 rows keep 4 blocks resident.
        match plan_accumulation(&props, 200, AccumulationMode::Auto) {
            AccumPlan::Privatized { pixels_per_block } => {
                assert_eq!(pixels_per_block, 7);
                assert_eq!(props.occupancy(7 * 200 * 8), 1.0);
            }
            other => panic!("expected privatized, got {other:?}"),
        }
        // 2000 bins = 16 000 B per row: over a quarter of shared memory, so
        // the planner accepts the occupancy hit and packs what fits.
        match plan_accumulation(&props, 2000, AccumulationMode::Privatized) {
            AccumPlan::Privatized { pixels_per_block } => {
                assert_eq!(pixels_per_block, 3);
                assert!(props.occupancy(3 * 2000 * 8) < 1.0);
            }
            other => panic!("expected privatized, got {other:?}"),
        }
        // 7000 bins = 56 000 B per row: one row alone does not fit — both
        // `auto` and forced privatization fall back, flagged.
        for mode in [AccumulationMode::Auto, AccumulationMode::Privatized] {
            assert_eq!(
                plan_accumulation(&props, 7000, mode),
                AccumPlan::Atomic { fallback: true }
            );
        }
    }

    #[test]
    fn privatized_matches_atomic_bitwise_across_modes() {
        // The tentpole bit-identity contract: privatized accumulation must
        // reproduce the atomic image bit-for-bit across layouts,
        // triangulation, thread mapping, and every compaction shape
        // (dense, banded, compact).
        let (geom, wide_cfg, data) = mixed_demo();
        let mut narrow_cfg = ReconstructionConfig::new(-350.0, 150.0, 25);
        narrow_cfg.intensity_cutoff = 18.0;
        let opt_set = [
            GpuOptions::default(),
            GpuOptions {
                layout: Layout::Pointer3d,
                ..GpuOptions::default()
            },
            GpuOptions {
                triangulation: Triangulation::HostTables,
                ..GpuOptions::default()
            },
            GpuOptions {
                mapping: ThreadMapping::Grid3d,
                ..GpuOptions::default()
            },
        ];
        for opts in opt_set {
            for base_cfg in [&wide_cfg, &narrow_cfg] {
                for compaction in [
                    CompactionMode::Off,
                    CompactionMode::Auto,
                    CompactionMode::On,
                ] {
                    let mut cfg = base_cfg.clone();
                    cfg.compaction = compaction;
                    let device = big_device();
                    let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
                    let atomic =
                        reconstruct_with_options(&device, &mut source, &geom, &cfg, opts).unwrap();
                    assert!(atomic.slab_privatized.is_empty());
                    for accum in [AccumulationMode::Privatized, AccumulationMode::Auto] {
                        let mut cfg = cfg.clone();
                        cfg.accumulation = accum;
                        let device = big_device();
                        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
                        let private =
                            reconstruct_with_options(&device, &mut source, &geom, &cfg, opts)
                                .unwrap();
                        assert_eq!(
                            atomic.image.data, private.image.data,
                            "{opts:?} {compaction:?} {accum:?} must be bit-identical"
                        );
                        // 120 (or 25) bins fit tiny's 8 KiB shared memory, so
                        // every launched slab privatizes.
                        assert_eq!(private.slab_privatized.len(), private.n_slabs);
                        assert!(private.slab_privatized.iter().all(|p| *p));
                        assert_eq!(private.stats.privatized_pairs, private.stats.pairs_total);
                        assert_eq!(private.stats.accum_fallback_pairs, 0);
                        let mut neutral = private.stats;
                        neutral.privatized_pairs = 0;
                        assert_eq!(neutral, atomic.stats, "{opts:?} {compaction:?} {accum:?}");
                        assert!(neutral.is_consistent());
                    }
                }
            }
        }
    }

    #[test]
    fn privatized_is_deterministic_under_threading() {
        // Blocks commit to disjoint pixels, so the threaded executor must
        // reproduce the sequential atomic image bit-for-bit — the property
        // the CAS-loop atomic path cannot offer.
        let (geom, mut cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let atomic_seq = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        cfg.accumulation = AccumulationMode::Privatized;
        for workers in [2usize, 4, 8] {
            let device = big_device();
            device.set_exec_mode(ExecMode::Threaded(workers));
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let threaded = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
            assert_eq!(
                atomic_seq.image.data, threaded.image.data,
                "threaded privatized ({workers} workers) must be bit-identical"
            );
        }
    }

    #[test]
    fn auto_accumulation_falls_back_when_bins_exceed_shared() {
        // A device whose shared memory cannot hold even one 40-bin row:
        // `auto` (and forced privatization) must run the atomic path,
        // bit-identically, and record the fallback.
        let (geom, cfg, data) = demo();
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let atomic = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let mut props = DeviceProps::tiny(64 * 1024 * 1024);
        props.shared_mem_per_block = 64; // 8 doubles < 40 bins
        for accum in [AccumulationMode::Auto, AccumulationMode::Privatized] {
            let mut cfg = cfg.clone();
            cfg.accumulation = accum;
            let device = Device::new(props.clone());
            let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
            let out = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
            assert_eq!(atomic.image.data, out.image.data);
            assert_eq!(out.slab_privatized.len(), out.n_slabs);
            assert!(out.slab_privatized.iter().all(|p| !*p), "{accum:?}");
            assert_eq!(out.stats.accum_fallback_pairs, out.stats.pairs_total);
            assert_eq!(out.stats.privatized_pairs, 0);
        }
    }

    #[test]
    fn privatized_cuts_modeled_kernel_time_when_deposits_pile_up() {
        // Many wire steps over few bins: each output cell collects deposits
        // from dozens of pairs, so the privatized path folds them in shared
        // memory and pays one global atomic per cell instead of one per
        // deposit.
        let geom = ScanGeometry::demo(6, 6, 40, -80.0, 3.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 10);
        let (p, m, n) = (40, 6, 6);
        let data: Vec<f64> = (0..p * m * n).map(|i| (i % 97) as f64).collect();
        let device = Device::new(DeviceProps::tesla_m2070());
        let mut source = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let atomic = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let mut cfg = cfg.clone();
        cfg.accumulation = AccumulationMode::Auto;
        let device = Device::new(DeviceProps::tesla_m2070());
        let mut source = InMemorySlabSource::new(data, p, m, n).unwrap();
        let private = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();
        assert_eq!(atomic.image.data, private.image.data);
        // Atomic pays one global atomic per deposit; privatized pays one per
        // touched cell — the wide bins collapse many deposits per cell.
        assert!(
            2 * private.meters.kernel_cost.atomic_ops <= atomic.meters.kernel_cost.atomic_ops,
            "commits {} must be far fewer than deposits {}",
            private.meters.kernel_cost.atomic_ops,
            atomic.meters.kernel_cost.atomic_ops
        );
        assert!(
            private.meters.compute_time_s < atomic.meters.compute_time_s,
            "privatized {} vs atomic {}",
            private.meters.compute_time_s,
            atomic.meters.compute_time_s
        );
    }

    #[test]
    fn checkpointed_privatized_matches_and_records_slabs() {
        let (geom, mut cfg, data) = mixed_demo();
        cfg.rows_per_slab = Some(2);
        let device = big_device();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let atomic = reconstruct(&device, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        cfg.compaction = CompactionMode::On;
        cfg.accumulation = AccumulationMode::Auto;
        let device = big_device();
        let mut progress = SlabProgress::new(cfg.n_depth_bins, 6, 6);
        let mut source = InMemorySlabSource::new(data, 10, 6, 6).unwrap();
        let out = reconstruct_checkpointed(
            &device,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            &mut progress,
            None,
        )
        .unwrap();
        assert_eq!(atomic.image.data, out.image.data);
        assert_eq!(out.slab_privatized.len(), out.n_slabs);
        assert!(out.slab_privatized.iter().all(|p| *p));
        assert_eq!(out.stats.privatized_pairs, out.stats.pairs_total);
        let mut neutral = out.stats;
        neutral.compacted_pairs = 0;
        neutral.privatized_pairs = 0;
        assert_eq!(neutral, atomic.stats);
    }
}
