//! Outcome counters for a reconstruction run.

/// What happened to one `(pixel, step-pair)` element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOutcome {
    /// `|ΔI|` at or below the cutoff — skipped (the paper's `d_cutoff`).
    BelowCutoff,
    /// Edge triangulation failed (pixel inside wire, ray ∥ beam, …).
    InvalidGeometry,
    /// The depth band missed the reconstruction window entirely.
    OutOfRange,
    /// ΔI deposited into `bins` depth bins.
    Deposited { bins: usize },
}

/// Aggregated counters over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconStats {
    /// Total `(pixel, pair)` elements examined.
    pub pairs_total: u64,
    /// Skipped: below the intensity cutoff.
    pub pairs_below_cutoff: u64,
    /// Skipped: no valid triangulation.
    pub pairs_invalid_geometry: u64,
    /// Skipped: band outside the depth window.
    pub pairs_out_of_range: u64,
    /// Deposited into at least one bin.
    pub pairs_deposited: u64,
    /// Total (bin, amount) deposits performed.
    pub deposits: u64,
    /// `(pair, detector-row)` combinations skipped whole by wire-shadow
    /// culling: the union of both steps' depth bands over the row missed
    /// the reconstruction window. Their pairs are counted under
    /// `pairs_out_of_range` (the geometric classification wins — a culled
    /// pair is never examined against the cutoff).
    pub culled_rows: u64,
    /// Pairs the prescan dropped from the compacted work-list because
    /// `|ΔI|` was at or below the cutoff. These are counted under
    /// `pairs_below_cutoff` (the prescan applies the identical test); this
    /// counter records how many never reached the main kernel. Zero on
    /// dense launches, even when the prescan ran (`auto` fallback).
    pub compacted_pairs: u64,
    /// Pairs processed by slabs that ran the shared-memory privatized
    /// accumulator (attribution over `pairs_total`; zero under
    /// `--accumulation atomic`).
    pub privatized_pairs: u64,
    /// Pairs that ran the atomic accumulator because the slab's depth-bin
    /// tile did not fit the device's shared memory although the run asked
    /// for privatization — the `auto`/forced fallback, made visible here.
    pub accum_fallback_pairs: u64,
}

impl ReconStats {
    /// Record one outcome.
    #[inline]
    pub fn record(&mut self, outcome: PairOutcome) {
        self.pairs_total += 1;
        match outcome {
            PairOutcome::BelowCutoff => self.pairs_below_cutoff += 1,
            PairOutcome::InvalidGeometry => self.pairs_invalid_geometry += 1,
            PairOutcome::OutOfRange => self.pairs_out_of_range += 1,
            PairOutcome::Deposited { bins } => {
                self.pairs_deposited += 1;
                self.deposits += bins as u64;
            }
        }
    }

    /// Record `pairs` elements skipped as one wire-shadow-culled
    /// `(pair, row)` combination (`pairs` = columns in the row).
    #[inline]
    pub fn record_culled_row(&mut self, pairs: u64) {
        self.pairs_total += pairs;
        self.pairs_out_of_range += pairs;
        self.culled_rows += 1;
    }

    /// Record one pair the prescan kept off the compacted work-list.
    #[inline]
    pub fn record_compacted(&mut self) {
        self.pairs_total += 1;
        self.pairs_below_cutoff += 1;
        self.compacted_pairs += 1;
    }

    /// Merge counters from another (partial) run.
    pub fn merge(&mut self, other: &ReconStats) {
        self.pairs_total += other.pairs_total;
        self.pairs_below_cutoff += other.pairs_below_cutoff;
        self.pairs_invalid_geometry += other.pairs_invalid_geometry;
        self.pairs_out_of_range += other.pairs_out_of_range;
        self.pairs_deposited += other.pairs_deposited;
        self.deposits += other.deposits;
        self.culled_rows += other.culled_rows;
        self.compacted_pairs += other.compacted_pairs;
        self.privatized_pairs += other.privatized_pairs;
        self.accum_fallback_pairs += other.accum_fallback_pairs;
    }

    /// Fraction of pairs that passed the cutoff — the paper's
    /// "pixel percentage" axis of Fig 9.
    pub fn active_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        1.0 - self.pairs_below_cutoff as f64 / self.pairs_total as f64
    }

    /// Internal consistency: category counts add up.
    pub fn is_consistent(&self) -> bool {
        self.pairs_below_cutoff
            + self.pairs_invalid_geometry
            + self.pairs_out_of_range
            + self.pairs_deposited
            == self.pairs_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_categorises() {
        let mut s = ReconStats::default();
        s.record(PairOutcome::BelowCutoff);
        s.record(PairOutcome::InvalidGeometry);
        s.record(PairOutcome::OutOfRange);
        s.record(PairOutcome::Deposited { bins: 3 });
        s.record(PairOutcome::Deposited { bins: 1 });
        assert_eq!(s.pairs_total, 5);
        assert_eq!(s.pairs_below_cutoff, 1);
        assert_eq!(s.pairs_deposited, 2);
        assert_eq!(s.deposits, 4);
        assert!(s.is_consistent());
        assert!((s.active_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ReconStats::default();
        a.record(PairOutcome::Deposited { bins: 2 });
        let mut b = ReconStats::default();
        b.record(PairOutcome::BelowCutoff);
        b.record(PairOutcome::Deposited { bins: 1 });
        a.merge(&b);
        assert_eq!(a.pairs_total, 3);
        assert_eq!(a.deposits, 3);
        assert!(a.is_consistent());
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        assert_eq!(ReconStats::default().active_fraction(), 0.0);
    }

    #[test]
    fn sparsity_counters_keep_categories_consistent() {
        let mut s = ReconStats::default();
        s.record_culled_row(6); // one culled (pair, row), 6 columns
        s.record_compacted();
        s.record_compacted();
        s.record(PairOutcome::Deposited { bins: 2 });
        assert_eq!(s.pairs_total, 9);
        assert_eq!(s.pairs_out_of_range, 6);
        assert_eq!(s.pairs_below_cutoff, 2);
        assert_eq!(s.culled_rows, 1);
        assert_eq!(s.compacted_pairs, 2);
        assert!(s.is_consistent());

        let mut merged = ReconStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.culled_rows, 2);
        assert_eq!(merged.compacted_pairs, 4);
        assert!(merged.is_consistent());
    }

    #[test]
    fn accumulation_attribution_rides_along_merge() {
        // privatized/fallback pairs attribute existing totals; they are not
        // a fifth outcome category, so consistency is untouched.
        let mut a = ReconStats::default();
        a.record(PairOutcome::Deposited { bins: 2 });
        a.record(PairOutcome::BelowCutoff);
        a.privatized_pairs = 2;
        let mut b = ReconStats::default();
        b.record(PairOutcome::Deposited { bins: 1 });
        b.accum_fallback_pairs = 1;
        a.merge(&b);
        assert_eq!(a.privatized_pairs, 2);
        assert_eq!(a.accum_fallback_pairs, 1);
        assert!(a.is_consistent());
    }
}
