//! End-to-end data-integrity layer: detection and accounting for silent
//! corruption.
//!
//! GPU nodes of the paper's era (Fermi-class, pre-ECC-everywhere clusters)
//! were notorious for silent data corruption: a transfer or kernel can
//! complete "successfully" with wrong bits. The simulator injects exactly
//! that class of fault ([`cuda_sim::FaultPlan`] silent bit-flips and stuck
//! kernels); this module supplies the three defences the engines wire in
//! when [`IntegrityMode`](crate::config::IntegrityMode) ≠ `Off`:
//!
//! 1. **Checksummed transfers** — every host↔device copy runs through the
//!    CRC64-checked variants ([`cuda_sim::Device::memcpy_htod_checked_on`]
//!    and friends), which detect every single-bit payload error. A CRC
//!    mismatch is retryable: re-sending the payload re-rolls the fault
//!    dice, so one-shot flips are *corrected* by the existing transfer
//!    retry loop.
//! 2. **ABFT depth-sum verification** — after each slab's download, the
//!    host redundantly recomputes the slab with the dense CPU engine
//!    (bit-identical to the device under the sequential executor) and
//!    compares per-depth-bin sums. The recompute FLOPs are charged to the
//!    overlapped host-CPU resource, so the planner's virtual-time model
//!    prices the verification without stalling device streams.
//! 3. **Watchdog deadlines** — each launch's modeled duration is compared
//!    against `watchdog_multiplier ×` the cost model's prediction for its
//!    metered work; a stuck kernel (injected stall) blows the deadline
//!    while its cost stays honest.
//!
//! Recovery is mode-dependent: `verify` aborts the run with
//! [`CoreError::IntegrityViolation`](crate::CoreError::IntegrityViolation)
//! on the first failed check (never failing over — that would re-export
//! condemned data); `scrub` quarantines the slab (a poison record in the
//! run journal), re-executes it with bounded exponential backoff, and — if
//! the device corrupts persistently — repairs the slab from the host
//! reference. A run that detected *and corrected* corruption completes
//! bit-identical to a fault-free run and is marked `INTEGRITY-DEGRADED`
//! in its report.

use laue_geometry::DepthMapper;

use crate::config::ReconstructionConfig;
use crate::cpu;
use crate::geometry::ScanGeometry;
use crate::input::{ScanView, SlabSource};
use crate::Result;

/// How many times a scrub re-executes a failed slab before repairing it
/// from the host reference.
pub(crate) const MAX_SCRUB_RETRIES: u32 = 3;

/// First scrub backoff (virtual seconds); doubles per further attempt on
/// the same slab, mirroring the transfer retry loop.
pub(crate) const SCRUB_BACKOFF_BASE_S: f64 = 100e-6;

/// Relative ABFT tolerance under a threaded (racy-atomic) executor, scaled
/// by `1 + max |reference|`. Matches the reassociation bound the threaded
/// equivalence tests use; the sequential executor uses exact bit equality
/// instead (tolerance 0).
pub(crate) const THREADED_ABFT_REL_TOL: f64 = 1e-9;

/// What the integrity layer did during one reconstruction. All zeros when
/// [`IntegrityMode::Off`](crate::config::IntegrityMode::Off) (no checks
/// run, nothing to report).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntegrityReport {
    /// Individual checks evaluated: checked transfers, ABFT slab
    /// verifications, and per-launch watchdog deadlines.
    pub checks_run: u64,
    /// Transfers whose CRC64 end-to-end check failed (each is detected
    /// corruption; a successful retry also corrects it).
    pub transfer_crc_failures: u64,
    /// Slab verifications where the ABFT depth-bin sums disagreed with the
    /// host reference.
    pub abft_mismatches: u64,
    /// Launches whose modeled duration blew the watchdog deadline.
    pub watchdog_timeouts: u64,
    /// Distinct corruption events detected (CRC failures plus condemned
    /// slabs — a slab counts once no matter how many retries it takes).
    pub corruptions_detected: u64,
    /// Detected corruptions that recovery made good (clean re-send,
    /// verified re-execution, or host-reference repair).
    pub corruptions_corrected: u64,
    /// Slab re-executions performed by scrub recovery.
    pub scrub_retries: u64,
    /// Slabs repaired from the host ABFT reference after the retry budget
    /// was exhausted (a persistently corrupting device).
    pub cpu_fallback_slabs: u64,
    /// Host-CPU seconds spent on verification work (CRC passes and ABFT
    /// recomputes), accounted on the overlapped host resource. This is a
    /// *resource* charge, not a makespan delta: the checks ride the host
    /// CPU in parallel with device streams, so on a healthy device this
    /// figure routinely exceeds the verify-vs-off total-time difference
    /// (it can even exceed the total run time outright).
    pub verify_host_cpu_s: f64,
    /// Virtual stream seconds integrity recovery *added to the makespan*:
    /// CRC-retry backoffs, scrub quarantine backoffs, and re-executed
    /// slabs (upload + kernels + download of every retry). Zero on a
    /// clean run — this is the field that matches the verify-vs-off
    /// total-time delta, unlike [`verify_host_cpu_s`](Self::verify_host_cpu_s).
    pub exposed_overhead_s: f64,
}

impl IntegrityReport {
    /// Fold another report (a band's, a device's) into this one.
    pub fn merge(&mut self, other: &IntegrityReport) {
        self.checks_run += other.checks_run;
        self.transfer_crc_failures += other.transfer_crc_failures;
        self.abft_mismatches += other.abft_mismatches;
        self.watchdog_timeouts += other.watchdog_timeouts;
        self.corruptions_detected += other.corruptions_detected;
        self.corruptions_corrected += other.corruptions_corrected;
        self.scrub_retries += other.scrub_retries;
        self.cpu_fallback_slabs += other.cpu_fallback_slabs;
        self.verify_host_cpu_s += other.verify_host_cpu_s;
        self.exposed_overhead_s += other.exposed_overhead_s;
    }

    /// Did this run see corruption at all? A completed run with
    /// `degraded() == true` produced correct output (every detection was
    /// corrected — otherwise it would have aborted) but ran on hardware
    /// that corrupted data; callers surface it as `INTEGRITY-DEGRADED`.
    pub fn degraded(&self) -> bool {
        self.corruptions_detected > 0
    }
}

/// The host-side redundant slab computation the ABFT check compares
/// against — and the repair donor when scrub exhausts its retries.
pub(crate) struct SlabReference {
    /// Slab rows of the image, `[(bin · rows + r) · n_cols + c]` (the
    /// layout of [`crate::output::DepthImage::extract_rows`]).
    pub(crate) data: Vec<f64>,
    /// Per-depth-bin sums of `data`, in index order.
    pub(crate) bin_sums: Vec<f64>,
    /// Host FLOPs the recompute (and its bin-sum pass) cost.
    pub(crate) host_flops: u64,
}

/// Redundantly recompute one slab on the host with the dense CPU engine.
///
/// The dense path deposits in exactly the order the sequential device
/// executor does (and all compaction/accumulation variants are bit-equal
/// to it), so the reference is bit-identical to an uncorrupted slab no
/// matter which plan the GPU ran. The slab's intensities are re-read from
/// the source — verification must not trust the device-resident copy.
pub(crate) fn slab_reference(
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    row0: usize,
    rows: usize,
) -> Result<SlabReference> {
    let slab = source.read_slab(row0, rows)?;
    let view = ScanView::new(&slab, source.n_images(), rows, source.n_cols())?;
    let (image, _stats, cost) = cpu::reconstruct_rows(&view, geom, mapper, cfg, 0..rows, row0);
    let bin_sums = bin_sums(&image.data, cfg.n_depth_bins);
    let host_flops = cost.flops + image.data.len() as u64;
    Ok(SlabReference {
        data: image.data,
        bin_sums,
        host_flops,
    })
}

/// Per-depth-bin sums of a slab's data, summed in index order so two
/// bit-identical slabs always produce bit-identical sums.
pub(crate) fn bin_sums(data: &[f64], n_bins: usize) -> Vec<f64> {
    debug_assert_eq!(data.len() % n_bins.max(1), 0);
    let per_bin = data.len() / n_bins;
    (0..n_bins)
        .map(|b| data[b * per_bin..(b + 1) * per_bin].iter().sum())
        .collect()
}

/// Compare ABFT sums. `tol_rel == 0` demands exact bit equality (the
/// sequential executor is bit-reproducible; NaNs from corruption can never
/// match a real-valued reference). A non-zero tolerance bounds
/// reassociation drift relative to the reference's magnitude.
pub(crate) fn sums_match(observed: &[f64], reference: &[f64], tol_rel: f64) -> bool {
    if observed.len() != reference.len() {
        return false;
    }
    if tol_rel == 0.0 {
        return observed
            .iter()
            .zip(reference)
            .all(|(o, r)| o.to_bits() == r.to_bits());
    }
    let scale = reference.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    observed
        .iter()
        .zip(reference)
        .all(|(o, r)| (o - r).abs() <= tol_rel * (1.0 + scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_merges_and_flags_degradation() {
        let mut a = IntegrityReport {
            checks_run: 3,
            verify_host_cpu_s: 0.5,
            ..IntegrityReport::default()
        };
        assert!(!a.degraded());
        let b = IntegrityReport {
            checks_run: 2,
            corruptions_detected: 1,
            corruptions_corrected: 1,
            scrub_retries: 2,
            verify_host_cpu_s: 0.25,
            exposed_overhead_s: 0.125,
            ..IntegrityReport::default()
        };
        a.merge(&b);
        assert_eq!(a.checks_run, 5);
        assert_eq!(a.scrub_retries, 2);
        assert!((a.verify_host_cpu_s - 0.75).abs() < 1e-12);
        assert!((a.exposed_overhead_s - 0.125).abs() < 1e-12);
        assert!(a.degraded());
    }

    #[test]
    fn bin_sums_are_per_bin_and_order_stable() {
        // 2 bins × 3 values each.
        let data = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        assert_eq!(bin_sums(&data, 2), vec![6.0, 60.0]);
    }

    #[test]
    fn exact_match_catches_any_bit_difference() {
        let reference = [1.0, -2.5, 0.0];
        let mut observed = reference;
        assert!(sums_match(&observed, &reference, 0.0));
        observed[1] = f64::from_bits(observed[1].to_bits() ^ (1 << 62));
        assert!(!sums_match(&observed, &reference, 0.0));
        // A corruption-made NaN can never match a real reference.
        let nan = [f64::NAN, -2.5, 0.0];
        assert!(!sums_match(&nan, &reference, 0.0));
    }

    #[test]
    fn relative_tolerance_admits_reassociation_but_not_flips() {
        let reference = [100.0, 200.0];
        let close = [100.0 + 1e-10, 200.0];
        assert!(sums_match(&close, &reference, THREADED_ABFT_REL_TOL));
        let flipped = [f64::from_bits(100.0f64.to_bits() ^ (1 << 62)), 200.0];
        assert!(!sums_match(&flipped, &reference, THREADED_ABFT_REL_TOL));
        assert!(!sums_match(&reference[..1], &reference, 0.0), "length");
    }
}
