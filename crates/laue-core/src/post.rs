//! Post-processing of depth-resolved images: the steps the beamline's
//! downstream analysis applies to the reconstruction output before physics
//! interpretation — smoothing, background subtraction, peak finding, and
//! per-pixel depth-map extraction.

use crate::config::ReconstructionConfig;
use crate::output::DepthImage;

/// A detected peak in a depth profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPeak {
    /// Bin index of the maximum.
    pub bin: usize,
    /// Depth of the bin centre, µm.
    pub depth: f64,
    /// Peak height (after any smoothing).
    pub height: f64,
    /// Integrated intensity across the peak's contiguous above-threshold
    /// support.
    pub area: f64,
}

/// Gaussian-smooth a 1-D profile with the given `sigma` in bins.
/// `sigma <= 0` returns the input unchanged.
pub fn smooth_profile(profile: &[f64], sigma: f64) -> Vec<f64> {
    if sigma <= 0.0 || profile.is_empty() {
        return profile.to_vec();
    }
    let reach = (3.0 * sigma).ceil() as isize;
    let weights: Vec<f64> = (-reach..=reach)
        .map(|k| (-(k as f64).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let wsum: f64 = weights.iter().sum();
    let n = profile.len() as isize;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            let mut norm = 0.0;
            for (j, w) in weights.iter().enumerate() {
                let k = i + (j as isize - reach);
                if k >= 0 && k < n {
                    acc += w * profile[k as usize];
                    norm += w;
                }
            }
            // Renormalise at the edges so constants stay constant.
            acc / if norm > 0.0 { norm } else { wsum }
        })
        .collect()
}

/// Subtract a constant background estimated as the median of the profile.
/// Returns the background level used.
pub fn subtract_median_background(profile: &mut [f64]) -> f64 {
    if profile.is_empty() {
        return 0.0;
    }
    let mut sorted = profile.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    for v in profile.iter_mut() {
        *v -= median;
    }
    median
}

/// Find local maxima above `threshold` (absolute) in a profile; peaks are
/// strict maxima against the left neighbour and non-strict against the
/// right (so plateaus report their first bin). Returns peaks sorted by
/// descending height.
///
/// ```
/// use laue_core::post::find_peaks;
/// use laue_core::ReconstructionConfig;
///
/// let cfg = ReconstructionConfig::new(0.0, 60.0, 6);
/// let profile = [0.0, 8.0, 1.0, 0.0, 5.0, 0.0];
/// let peaks = find_peaks(&profile, &cfg, 0.5);
/// assert_eq!(peaks.len(), 2);
/// assert_eq!(peaks[0].depth, 15.0); // bin 1 centre, tallest first
/// ```
pub fn find_peaks(profile: &[f64], cfg: &ReconstructionConfig, threshold: f64) -> Vec<DepthPeak> {
    let n = profile.len();
    let mut peaks = Vec::new();
    for i in 0..n {
        let v = profile[i];
        if v <= threshold {
            continue;
        }
        let left_ok = i == 0 || profile[i - 1] < v;
        let right_ok = i + 1 == n || profile[i + 1] <= v;
        if !(left_ok && right_ok) {
            continue;
        }
        // Integrate the contiguous above-threshold support.
        let mut lo = i;
        while lo > 0 && profile[lo - 1] > threshold {
            lo -= 1;
        }
        let mut hi = i;
        while hi + 1 < n && profile[hi + 1] > threshold {
            hi += 1;
        }
        let area: f64 = profile[lo..=hi].iter().sum();
        peaks.push(DepthPeak {
            bin: i,
            depth: cfg.bin_center(i),
            height: v,
            area,
        });
    }
    peaks.sort_by(|a, b| b.height.total_cmp(&a.height));
    peaks
}

/// Options for [`depth_map`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthMapOptions {
    /// Gaussian smoothing applied to each profile (bins).
    pub smoothing_sigma: f64,
    /// Minimum peak height (after smoothing) to accept a depth.
    pub min_height: f64,
}

impl Default for DepthMapOptions {
    fn default() -> Self {
        DepthMapOptions {
            smoothing_sigma: 1.0,
            min_height: 0.0,
        }
    }
}

/// Extract the dominant depth of every pixel: the beamline's "depth map"
/// product. Pixels with no acceptable peak yield `None`.
pub fn depth_map(
    image: &DepthImage,
    cfg: &ReconstructionConfig,
    opts: &DepthMapOptions,
) -> Vec<Option<f64>> {
    let mut out = Vec::with_capacity(image.n_rows * image.n_cols);
    for r in 0..image.n_rows {
        for c in 0..image.n_cols {
            let profile = smooth_profile(&image.depth_profile(r, c), opts.smoothing_sigma);
            let peaks = find_peaks(&profile, cfg, opts.min_height);
            out.push(peaks.first().map(|p| p.depth));
        }
    }
    out
}

/// Integrated depth histogram (per-bin totals) with optional smoothing —
/// the curve the microindent analysis plots.
pub fn integrated_histogram(image: &DepthImage, sigma: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..image.n_bins).map(|b| image.bin_total(b)).collect();
    smooth_profile(&raw, sigma)
}

/// Rebin a depth image onto a coarser (or finer) depth axis, conserving
/// intensity exactly: each old bin's content is split across the new bins
/// it overlaps, proportional to overlap. Returns the rebinned image and the
/// configuration describing its axis.
pub fn rebin(
    image: &DepthImage,
    cfg: &ReconstructionConfig,
    new_bins: usize,
) -> (DepthImage, ReconstructionConfig) {
    assert!(new_bins > 0, "need at least one output bin");
    let mut new_cfg = cfg.clone();
    new_cfg.n_depth_bins = new_bins;
    let mut out = DepthImage::zeroed(new_bins, image.n_rows, image.n_cols);
    let old_w = cfg.bin_width();
    let new_w = new_cfg.bin_width();
    for old in 0..image.n_bins {
        let lo = cfg.depth_start + old as f64 * old_w;
        let hi = lo + old_w;
        let first = (((lo - cfg.depth_start) / new_w) as usize).min(new_bins - 1);
        let last = ((((hi - cfg.depth_start) / new_w).ceil()) as usize).min(new_bins);
        for new in first..last.max(first + 1) {
            let b_lo = cfg.depth_start + new as f64 * new_w;
            let b_hi = b_lo + new_w;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            if overlap <= 0.0 {
                continue;
            }
            let frac = overlap / old_w;
            for r in 0..image.n_rows {
                for c in 0..image.n_cols {
                    let v = image.at(old, r, c);
                    if v != 0.0 {
                        *out.at_mut(new, r, c) += v * frac;
                    }
                }
            }
        }
    }
    (out, new_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bins: usize) -> ReconstructionConfig {
        ReconstructionConfig::new(0.0, bins as f64 * 10.0, bins)
    }

    #[test]
    fn smoothing_preserves_mass_and_constants() {
        let profile = vec![5.0; 64];
        let s = smooth_profile(&profile, 2.0);
        for v in &s {
            assert!((v - 5.0).abs() < 1e-9, "constants stay constant, got {v}");
        }
        // A spike spreads but keeps its integral (away from edges).
        let mut spike = vec![0.0; 64];
        spike[32] = 100.0;
        let s = smooth_profile(&spike, 1.5);
        let total: f64 = s.iter().sum();
        assert!((total - 100.0).abs() < 1e-6, "mass conserved, got {total}");
        assert!(s[32] < 100.0 && s[32] > s[30]);
        // sigma = 0 is the identity.
        assert_eq!(smooth_profile(&spike, 0.0), spike);
    }

    #[test]
    fn median_background_subtraction() {
        let mut profile = vec![10.0, 10.0, 10.0, 110.0, 10.0, 10.0, 12.0];
        let bg = subtract_median_background(&mut profile);
        assert_eq!(bg, 10.0);
        assert_eq!(profile[3], 100.0);
        assert_eq!(profile[0], 0.0);
        assert_eq!(subtract_median_background(&mut []), 0.0);
    }

    #[test]
    fn single_peak_found_with_area() {
        let c = cfg(10);
        let profile = vec![0.0, 1.0, 5.0, 9.0, 5.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let peaks = find_peaks(&profile, &c, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 3);
        assert_eq!(peaks[0].depth, 35.0);
        assert_eq!(peaks[0].height, 9.0);
        assert_eq!(peaks[0].area, 21.0, "1+5+9+5+1");
    }

    #[test]
    fn two_peaks_sorted_by_height() {
        let c = cfg(12);
        let profile = vec![0.0, 4.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 6.0, 0.0, 0.0, 0.0];
        let peaks = find_peaks(&profile, &c, 1.0);
        assert_eq!(peaks.len(), 3);
        assert_eq!(peaks[0].height, 9.0);
        assert_eq!(peaks[1].height, 6.0);
        assert_eq!(peaks[2].height, 4.0);
    }

    #[test]
    fn plateau_reports_once() {
        let c = cfg(8);
        let profile = vec![0.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0];
        let peaks = find_peaks(&profile, &c, 1.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 1, "first bin of the plateau");
    }

    #[test]
    fn boundary_peaks_detected() {
        let c = cfg(5);
        let profile = vec![9.0, 1.0, 0.0, 1.0, 8.0];
        let peaks = find_peaks(&profile, &c, 0.5);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].bin, 0);
        assert_eq!(peaks[1].bin, 4);
    }

    #[test]
    fn threshold_filters_peaks() {
        let c = cfg(8);
        let profile = vec![0.0, 2.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0];
        assert_eq!(find_peaks(&profile, &c, 5.0).len(), 1);
        assert_eq!(find_peaks(&profile, &c, 1.0).len(), 2);
        assert_eq!(find_peaks(&profile, &c, 10.0).len(), 0);
    }

    #[test]
    fn depth_map_extracts_dominant_depths() {
        let c = cfg(10);
        let mut img = DepthImage::zeroed(10, 2, 2);
        *img.at_mut(3, 0, 0) = 50.0;
        *img.at_mut(7, 0, 1) = 30.0;
        // pixel (1, 0) stays empty; pixel (1, 1) below min_height.
        *img.at_mut(5, 1, 1) = 0.5;
        let map = depth_map(
            &img,
            &c,
            &DepthMapOptions {
                smoothing_sigma: 0.0,
                min_height: 1.0,
            },
        );
        assert_eq!(map[0], Some(35.0));
        assert_eq!(map[1], Some(75.0));
        assert_eq!(map[2], None);
        assert_eq!(map[3], None);
    }

    #[test]
    fn rebin_conserves_intensity() {
        let cfg = ReconstructionConfig::new(0.0, 120.0, 12);
        let mut img = DepthImage::zeroed(12, 2, 2);
        *img.at_mut(3, 0, 0) = 7.0;
        *img.at_mut(4, 0, 0) = 5.0;
        *img.at_mut(11, 1, 1) = 2.0;
        for new_bins in [1usize, 3, 4, 6, 12, 24, 120] {
            let (out, new_cfg) = rebin(&img, &cfg, new_bins);
            assert_eq!(out.n_bins, new_bins);
            assert!(
                (out.total_intensity() - 14.0).abs() < 1e-9,
                "{new_bins} bins lost mass: {}",
                out.total_intensity()
            );
            assert_eq!(new_cfg.n_depth_bins, new_bins);
            // Per-pixel totals conserved too.
            let p: f64 = out.depth_profile(0, 0).iter().sum();
            assert!((p - 12.0).abs() < 1e-9);
        }
        // Integer-ratio coarsening maps old bins wholly into coarse bins:
        // old bin 3 = [30, 40) → coarse bin 1 = [20, 40); old bin 4 =
        // [40, 50) → coarse bin 2 = [40, 60).
        let (out, _) = rebin(&img, &cfg, 6);
        assert_eq!(out.at(1, 0, 0), 7.0);
        assert_eq!(out.at(2, 0, 0), 5.0);
        assert_eq!(out.at(5, 1, 1), 2.0);
    }

    #[test]
    fn rebin_to_finer_axis_splits_bins() {
        let cfg = ReconstructionConfig::new(0.0, 10.0, 1);
        let mut img = DepthImage::zeroed(1, 1, 1);
        *img.at_mut(0, 0, 0) = 8.0;
        let (out, new_cfg) = rebin(&img, &cfg, 4);
        assert_eq!(out.depth_profile(0, 0), vec![2.0, 2.0, 2.0, 2.0]);
        assert_eq!(new_cfg.bin_width(), 2.5);
    }

    #[test]
    fn integrated_histogram_matches_bin_totals() {
        let mut img = DepthImage::zeroed(4, 2, 2);
        *img.at_mut(1, 0, 0) = 3.0;
        *img.at_mut(1, 1, 1) = 5.0;
        *img.at_mut(2, 0, 1) = 2.0;
        let h = integrated_histogram(&img, 0.0);
        assert_eq!(h, vec![0.0, 8.0, 2.0, 0.0]);
        // Smoothing conserves mass when the signal sits away from the
        // profile edges (edge bins renormalise, so only interior mass is
        // exactly conserved).
        let mut wide = DepthImage::zeroed(16, 1, 1);
        *wide.at_mut(8, 0, 0) = 10.0;
        let hs = integrated_histogram(&wide, 1.0);
        assert!((hs.iter().sum::<f64>() - 10.0).abs() < 1e-6);
        assert!(hs[8] < 10.0 && hs[7] > 0.0);
    }
}
