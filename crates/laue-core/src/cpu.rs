//! CPU reconstruction engines: the paper's sequential baseline and a
//! row-parallel threaded variant.
//!
//! The sequential engine is a faithful restructuring of the "prior CPU
//! design" the paper benchmarks against: one pass over every
//! `(row, col, step-pair)` element in row-major order. The threaded variant
//! splits detector rows across OS threads — output rows are disjoint per
//! thread, so no synchronisation is needed (unlike the GPU kernel, whose
//! thread-per-pair mapping races on output bins and needs `atomicAdd`).

use cuda_sim::{Cost, HostProps};
use laue_geometry::DepthMapper;

use crate::config::{CompactionMode, ReconstructionConfig};
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::input::ScanView;
use crate::output::DepthImage;
use crate::pair::{
    differential, process_pair, COMPACT_ENTRY_BYTES, MEM_BYTES_PER_DEPOSIT, MEM_BYTES_PER_PAIR,
    PRESCAN_BYTES_PER_READ, PRESCAN_FLOPS_PER_PAIR,
};
use crate::planning::ShadowCull;
use crate::stats::ReconStats;
use crate::Result;

/// Result of a CPU reconstruction.
#[derive(Debug, Clone)]
pub struct CpuReconstruction {
    /// The depth-resolved output.
    pub image: DepthImage,
    /// Outcome counters.
    pub stats: ReconStats,
    /// Logical work performed, for the virtual-time model.
    pub cost: Cost,
    /// Measured active-pair density per processed unit (whole view for the
    /// in-memory engines, one entry per chunk when streaming). Empty when
    /// compaction is off.
    pub slab_densities: Vec<f64>,
}

impl CpuReconstruction {
    /// Modeled runtime on `host` using `cores` cores (the paper's baseline
    /// is `cores = 1`).
    pub fn modeled_time_s(&self, host: &HostProps, cores: u32) -> f64 {
        host.kernel_time(&self.cost, cores)
    }
}

/// Validate that the stack matches the geometry.
pub(crate) fn check_shapes(view: &ScanView<'_>, geom: &ScanGeometry) -> Result<()> {
    if view.n_images != geom.wire.n_steps {
        return Err(CoreError::ShapeMismatch(format!(
            "stack has {} images but the wire scan has {} steps",
            view.n_images, geom.wire.n_steps
        )));
    }
    if view.n_rows != geom.detector.n_rows || view.n_cols != geom.detector.n_cols {
        return Err(CoreError::ShapeMismatch(format!(
            "stack is {}×{} pixels but the detector is {}×{}",
            view.n_rows, view.n_cols, geom.detector.n_rows, geom.detector.n_cols
        )));
    }
    Ok(())
}

/// Reconstruct a row range into a slab-local image (rows are relative to
/// `rows.start`). `detector_row_offset` maps the view's row indices onto
/// detector rows (non-zero when `view` is a streamed slab). Shared by the
/// sequential, threaded and streaming engines, and by the integrity layer
/// as the redundant host reference against which GPU slab output is
/// checked (the dense order here matches the sequential device exactly).
pub(crate) fn reconstruct_rows(
    view: &ScanView<'_>,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    rows: std::ops::Range<usize>,
    detector_row_offset: usize,
) -> (DepthImage, ReconStats, Cost) {
    let n_rows_out = rows.len();
    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows_out, view.n_cols);
    let mut stats = ReconStats::default();
    let mut cost = Cost::default();
    let wire_centers = geom.wire.centers();
    let n_pairs = view.n_images - 1;
    let row0 = rows.start;
    for r in rows {
        for c in 0..view.n_cols {
            let pixel = geom
                .detector
                .pixel_to_xyz_unchecked((detector_row_offset + r) as f64, c as f64);
            for z in 0..n_pairs {
                cost.mem_bytes += MEM_BYTES_PER_PAIR;
                let outcome = process_pair(
                    mapper,
                    cfg,
                    pixel,
                    wire_centers[z],
                    wire_centers[z + 1],
                    view.at(z, r, c),
                    view.at(z + 1, r, c),
                    |bin, amount| {
                        cost.mem_bytes += MEM_BYTES_PER_DEPOSIT;
                        *image.at_mut(bin, r - row0, c) += amount;
                    },
                    &mut cost.flops,
                );
                stats.record(outcome);
            }
        }
    }
    (image, stats, cost)
}

/// Sparsity-aware variant of [`reconstruct_rows`]: the host-side equivalent
/// of the GPU prescan kernel. Pass 1 walks each pixel's step column once,
/// testing every non-culled pair against the cutoff (charged at prescan
/// rates); pass 2 then executes either the compacted work-list or — when
/// [`CompactionMode::Auto`] measures a high density — the dense loop over
/// the non-culled strips. Deposits happen per output cell in the same
/// step-ascending order as the dense path, so the image is bit-identical.
///
/// Returns the measured active density (active / non-culled pairs) along
/// with the usual triple. The cull's own build cost is *not* charged here —
/// callers charge `cull.host_flops` exactly once per run.
fn reconstruct_rows_sparse(
    view: &ScanView<'_>,
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    rows: std::ops::Range<usize>,
    detector_row_offset: usize,
    cull: &ShadowCull,
) -> (DepthImage, ReconStats, Cost, f64) {
    let n_rows_out = rows.len();
    let n_cols = view.n_cols;
    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows_out, n_cols);
    let mut stats = ReconStats::default();
    let mut cost = Cost::default();
    let wire_centers = geom.wire.centers();
    let n_pairs = view.n_images - 1;
    let row0 = rows.start;

    // Per row: the pairs that survive wire-shadow culling, plus how many
    // distinct images a column scan over them touches (a run of k
    // consecutive pairs shares loads and reads k + 1 images).
    let live_per_row: Vec<Vec<usize>> = rows
        .clone()
        .map(|r| cull.live_pairs(detector_row_offset + r))
        .collect();
    for live in &live_per_row {
        for z in 0..n_pairs {
            if !live.contains(&z) {
                stats.record_culled_row(n_cols as u64);
            }
        }
    }

    // Pass 1 — prescan: mark pairs with |ΔI| above the cutoff.
    let mut active = vec![false; n_rows_out * n_cols * n_pairs];
    let mut live_total = 0u64;
    let mut active_total = 0u64;
    for (i, live) in live_per_row.iter().enumerate() {
        if live.is_empty() {
            continue;
        }
        let mut touched = live.len() as u64 + 1;
        for w in live.windows(2) {
            if w[1] != w[0] + 1 {
                touched += 1;
            }
        }
        let r = row0 + i;
        for c in 0..n_cols {
            cost.mem_bytes += PRESCAN_BYTES_PER_READ * touched;
            cost.flops += PRESCAN_FLOPS_PER_PAIR * live.len() as u64;
            live_total += live.len() as u64;
            for &z in live {
                let delta = differential(cfg, view.at(z, r, c), view.at(z + 1, r, c));
                if delta.abs() > cfg.intensity_cutoff {
                    active[(i * n_cols + c) * n_pairs + z] = true;
                    active_total += 1;
                }
            }
        }
    }
    let density = if live_total == 0 {
        0.0
    } else {
        active_total as f64 / live_total as f64
    };
    let compact = match cfg.compaction {
        CompactionMode::On => true,
        CompactionMode::Auto => crate::planner::host_compaction_wins(live_total, active_total),
        CompactionMode::Off => unreachable!("sparse path requires compaction"),
    };

    // Pass 2 — execute. Compact: only active pairs, each paying the
    // work-list emit + read on top of the dense per-pair traffic;
    // sub-cutoff pairs were already settled by the prescan. Dense
    // fallback: every non-culled pair pays the full dense rate (the
    // prescan was measurement overhead, charged above).
    for (i, live) in live_per_row.iter().enumerate() {
        if live.is_empty() {
            continue;
        }
        let r = row0 + i;
        for c in 0..n_cols {
            let pixel = geom
                .detector
                .pixel_to_xyz_unchecked((detector_row_offset + r) as f64, c as f64);
            for &z in live {
                if compact && !active[(i * n_cols + c) * n_pairs + z] {
                    stats.record_compacted();
                    continue;
                }
                cost.mem_bytes += MEM_BYTES_PER_PAIR;
                if compact {
                    cost.mem_bytes += 2 * COMPACT_ENTRY_BYTES;
                }
                let outcome = process_pair(
                    mapper,
                    cfg,
                    pixel,
                    wire_centers[z],
                    wire_centers[z + 1],
                    view.at(z, r, c),
                    view.at(z + 1, r, c),
                    |bin, amount| {
                        cost.mem_bytes += MEM_BYTES_PER_DEPOSIT;
                        *image.at_mut(bin, i, c) += amount;
                    },
                    &mut cost.flops,
                );
                stats.record(outcome);
            }
        }
    }
    (image, stats, cost, density)
}

/// The paper's baseline: a single-threaded pass over the whole stack.
pub fn reconstruct_seq(
    view: &ScanView<'_>,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
) -> Result<CpuReconstruction> {
    cfg.validate()?;
    check_shapes(view, geom)?;
    let mapper = geom.mapper()?;
    if cfg.compaction.enabled() {
        let cull = ShadowCull::compute(geom, &mapper, cfg, 0..view.n_rows);
        let (image, stats, mut cost, density) =
            reconstruct_rows_sparse(view, geom, &mapper, cfg, 0..view.n_rows, 0, &cull);
        cost.flops += cull.host_flops;
        return Ok(CpuReconstruction {
            image,
            stats,
            cost,
            slab_densities: vec![density],
        });
    }
    let (image, stats, cost) = reconstruct_rows(view, geom, &mapper, cfg, 0..view.n_rows, 0);
    Ok(CpuReconstruction {
        image,
        stats,
        cost,
        slab_densities: Vec::new(),
    })
}

/// Streaming variant of the sequential engine: pulls `rows_per_chunk`
/// detector rows at a time from a [`SlabSource`], never materialising the
/// full stack — the same memory profile as the GPU pipeline, bit-identical
/// results.
pub fn reconstruct_streaming(
    source: &mut dyn crate::SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    rows_per_chunk: usize,
) -> Result<CpuReconstruction> {
    cfg.validate()?;
    if rows_per_chunk == 0 {
        return Err(CoreError::InvalidConfig(
            "rows_per_chunk must be ≥ 1".into(),
        ));
    }
    let (n_images, n_rows, n_cols) = (source.n_images(), source.n_rows(), source.n_cols());
    if n_images != geom.wire.n_steps
        || n_rows != geom.detector.n_rows
        || n_cols != geom.detector.n_cols
    {
        return Err(CoreError::ShapeMismatch(format!(
            "source {n_images}×{n_rows}×{n_cols} disagrees with geometry {}×{}×{}",
            geom.wire.n_steps, geom.detector.n_rows, geom.detector.n_cols
        )));
    }
    let mapper = geom.mapper()?;
    let cull = cfg
        .compaction
        .enabled()
        .then(|| ShadowCull::compute(geom, &mapper, cfg, 0..n_rows));
    let mut image = DepthImage::zeroed(cfg.n_depth_bins, n_rows, n_cols);
    let mut stats = ReconStats::default();
    let mut cost = Cost::default();
    let mut slab_densities = Vec::new();
    if let Some(cull) = &cull {
        cost.flops += cull.host_flops;
    }
    let mut row0 = 0usize;
    while row0 < n_rows {
        let rows = rows_per_chunk.min(n_rows - row0);
        let slab = source.read_slab(row0, rows)?;
        let view = ScanView::new(&slab, n_images, rows, n_cols)?;
        let (part, part_stats, part_cost) = match &cull {
            Some(cull) => {
                let (part, s, c, density) =
                    reconstruct_rows_sparse(&view, geom, &mapper, cfg, 0..rows, row0, cull);
                slab_densities.push(density);
                (part, s, c)
            }
            None => reconstruct_rows(&view, geom, &mapper, cfg, 0..rows, row0),
        };
        stats.merge(&part_stats);
        cost.merge(&part_cost);
        for bin in 0..cfg.n_depth_bins {
            for r in 0..rows {
                for c in 0..n_cols {
                    *image.at_mut(bin, row0 + r, c) = part.at(bin, r, c);
                }
            }
        }
        row0 += rows;
    }
    Ok(CpuReconstruction {
        image,
        stats,
        cost,
        slab_densities,
    })
}

/// Row-parallel reconstruction across `n_threads` OS threads.
///
/// Bitwise-identical to [`reconstruct_seq`]: each output element is the sum
/// of the same contributions in the same (step-ascending) order, and rows
/// never cross threads.
pub fn reconstruct_threaded(
    view: &ScanView<'_>,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    n_threads: usize,
) -> Result<CpuReconstruction> {
    cfg.validate()?;
    check_shapes(view, geom)?;
    if n_threads == 0 {
        return Err(CoreError::InvalidConfig("n_threads must be ≥ 1".into()));
    }
    let mapper = geom.mapper()?;
    let n_threads = n_threads.min(view.n_rows);
    // Split rows as evenly as possible.
    let base = view.n_rows / n_threads;
    let extra = view.n_rows % n_threads;
    let mut ranges = Vec::with_capacity(n_threads);
    let mut start = 0;
    for t in 0..n_threads {
        let len = base + usize::from(t < extra);
        ranges.push(start..start + len);
        start += len;
    }
    let cull = cfg
        .compaction
        .enabled()
        .then(|| ShadowCull::compute(geom, &mapper, cfg, 0..view.n_rows));
    let parts: Vec<(DepthImage, ReconStats, Cost, usize, Option<f64>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let mapper = &mapper;
                    let cull = cull.as_ref();
                    scope.spawn(move || {
                        let row0 = range.start;
                        match cull {
                            Some(cull) => {
                                let (img, stats, cost, density) = reconstruct_rows_sparse(
                                    view, geom, mapper, cfg, range, 0, cull,
                                );
                                (img, stats, cost, row0, Some(density))
                            }
                            None => {
                                let (img, stats, cost) =
                                    reconstruct_rows(view, geom, mapper, cfg, range, 0);
                                (img, stats, cost, row0, None)
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
    let mut image = DepthImage::zeroed(cfg.n_depth_bins, view.n_rows, view.n_cols);
    let mut stats = ReconStats::default();
    let mut cost = Cost::default();
    let mut slab_densities = Vec::new();
    if let Some(cull) = &cull {
        cost.flops += cull.host_flops;
    }
    for (part, part_stats, part_cost, row0, density) in parts {
        stats.merge(&part_stats);
        cost.merge(&part_cost);
        slab_densities.extend(density);
        for bin in 0..cfg.n_depth_bins {
            for r in 0..part.n_rows {
                for c in 0..part.n_cols {
                    *image.at_mut(bin, row0 + r, c) = part.at(bin, r, c);
                }
            }
        }
    }
    Ok(CpuReconstruction {
        image,
        stats,
        cost,
        slab_densities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InMemorySlabSource;

    /// A stack where image z+1 loses a constant amount at one pixel —
    /// everything else is static, so exactly one pair deposits.
    fn single_drop_stack(geom: &ScanGeometry, r: usize, c: usize, at_step: usize) -> Vec<f64> {
        let (p, m, n) = (
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        );
        let mut data = vec![100.0; p * m * n];
        for z in at_step + 1..p {
            data[(z * m + r) * n + c] = 40.0;
        }
        data
    }

    fn demo() -> (ScanGeometry, ReconstructionConfig) {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        // Wide enough that every pixel's depth band lies inside the window.
        let cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        (geom, cfg)
    }

    #[test]
    fn shape_validation() {
        let (geom, cfg) = demo();
        let bad = vec![0.0; 10];
        assert!(ScanView::new(&bad, 10, 6, 6).is_err());
        let wrong_rows = vec![0.0; 10 * 5 * 6];
        let view = ScanView::new(&wrong_rows, 10, 5, 6).unwrap();
        assert!(matches!(
            reconstruct_seq(&view, &geom, &cfg),
            Err(CoreError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn static_stack_reconstructs_to_zero() {
        let (geom, cfg) = demo();
        let data = vec![77.0; 10 * 6 * 6];
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let out = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(out.image.total_intensity(), 0.0);
        assert_eq!(out.stats.pairs_deposited, 0);
        assert_eq!(out.stats.pairs_total, (10 - 1) * 36);
        assert!(out.stats.is_consistent());
    }

    #[test]
    fn single_drop_deposits_at_the_right_depth() {
        let (geom, cfg) = demo();
        let (r, c, step) = (2, 3, 4);
        let data = single_drop_stack(&geom, r, c, step);
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let out = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(out.stats.pairs_deposited, 1);
        // All 60 units land on pixel (r, c).
        let profile_total: f64 = out.image.depth_profile(r, c).iter().sum();
        assert!((profile_total - 60.0).abs() < 1e-9, "got {profile_total}");
        // The peak sits inside the leading-edge band of the drop step.
        let mapper = geom.mapper().unwrap();
        let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
        let d0 = mapper
            .depth(pixel, geom.wire.center(step).unwrap(), cfg.wire_edge)
            .unwrap();
        let d1 = mapper
            .depth(pixel, geom.wire.center(step + 1).unwrap(), cfg.wire_edge)
            .unwrap();
        let peak = out.image.pixel_peak_depth(r, c, &cfg).unwrap();
        let (lo, hi) = (d0.min(d1), d0.max(d1));
        assert!(
            peak >= lo - cfg.bin_width() && peak <= hi + cfg.bin_width(),
            "peak {peak} outside band [{lo}, {hi}]"
        );
    }

    #[test]
    fn cutoff_suppresses_small_differentials() {
        let (geom, mut cfg) = demo();
        let data = single_drop_stack(&geom, 1, 1, 3);
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        cfg.intensity_cutoff = 100.0; // bigger than the 60-unit drop
        let out = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(out.stats.pairs_deposited, 0);
        assert_eq!(out.image.total_intensity(), 0.0);
        assert_eq!(out.stats.active_fraction(), 0.0);
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        let (geom, cfg) = demo();
        // A busier stack: every pixel ramps down over the scan.
        let (p, m, n) = (10, 6, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                1000.0 - 37.0 * z as f64 - (px % 7) as f64 * 11.0
            })
            .collect();
        let view = ScanView::new(&data, p, m, n).unwrap();
        let seq = reconstruct_seq(&view, &geom, &cfg).unwrap();
        for threads in [1, 2, 3, 5, 8] {
            let par = reconstruct_threaded(&view, &geom, &cfg, threads).unwrap();
            assert_eq!(
                seq.image.data, par.image.data,
                "threaded({threads}) must be bitwise identical"
            );
            assert_eq!(seq.stats, par.stats);
            assert_eq!(seq.cost.flops, par.cost.flops);
        }
        assert!(matches!(
            reconstruct_threaded(&view, &geom, &cfg, 0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn intensity_is_conserved_for_interior_bands() {
        // With a generous depth window, every deposited pair lands fully
        // inside the window, so total output = total of deposited ΔI.
        let (geom, cfg) = demo();
        let (p, m, n) = (10, 6, 6);
        // Monotone decreasing stacks → all ΔI ≥ 0.
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                500.0 - 13.0 * z as f64
            })
            .collect();
        let view = ScanView::new(&data, p, m, n).unwrap();
        let out = reconstruct_seq(&view, &geom, &cfg).unwrap();
        // Every pair drops 13 units; all 9×36 pairs deposit.
        let expected = 13.0 * 9.0 * 36.0;
        assert_eq!(
            out.stats.pairs_deposited + out.stats.pairs_out_of_range,
            9 * 36
        );
        let captured = out.image.total_intensity();
        assert!(
            (captured - expected).abs() / expected < 1e-6,
            "captured {captured} vs {expected}"
        );
    }

    #[test]
    fn modeled_time_uses_host_props() {
        let (geom, cfg) = demo();
        let data = single_drop_stack(&geom, 0, 0, 2);
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let out = reconstruct_seq(&view, &geom, &cfg).unwrap();
        let host = HostProps::xeon_e5630();
        let t1 = out.modeled_time_s(&host, 1);
        let t4 = out.modeled_time_s(&host, 4);
        assert!(t1 > 0.0 && t4 > 0.0 && t4 <= t1);
    }

    #[test]
    fn streaming_matches_sequential_bitwise() {
        let (geom, cfg) = demo();
        let (p, m, n) = (10, 6, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| 700.0 - 29.0 * (i / (m * n)) as f64 + (i % 11) as f64)
            .collect();
        let view = ScanView::new(&data, p, m, n).unwrap();
        let seq = reconstruct_seq(&view, &geom, &cfg).unwrap();
        for chunk in [1usize, 2, 3, 6, 100] {
            let mut src = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
            let streamed = reconstruct_streaming(&mut src, &geom, &cfg, chunk).unwrap();
            assert_eq!(seq.image.data, streamed.image.data, "chunk = {chunk}");
            assert_eq!(seq.stats, streamed.stats);
            assert_eq!(seq.cost.flops, streamed.cost.flops);
        }
        let mut src = InMemorySlabSource::new(data, p, m, n).unwrap();
        assert!(reconstruct_streaming(&mut src, &geom, &cfg, 0).is_err());
    }

    /// A stack with per-pixel ramps of varying size, so a mid percentile
    /// cutoff leaves a genuinely mixed active/inactive population.
    fn mixed_stack(p: usize, m: usize, n: usize) -> Vec<f64> {
        (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                900.0 - (px % 9) as f64 * 5.0 * z as f64 - (px % 3) as f64
            })
            .collect()
    }

    #[test]
    fn compaction_modes_match_dense_bitwise() {
        let (geom, mut cfg) = demo();
        let (p, m, n) = (10, 6, 6);
        let data = mixed_stack(p, m, n);
        let view = ScanView::new(&data, p, m, n).unwrap();
        // A cutoff that splits the pair population roughly in half.
        cfg.intensity_cutoff = 18.0;
        let dense = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert!(dense.slab_densities.is_empty());
        for mode in [CompactionMode::Auto, CompactionMode::On] {
            let mut cfg = cfg.clone();
            cfg.compaction = mode;
            let seq = reconstruct_seq(&view, &geom, &cfg).unwrap();
            assert_eq!(dense.image.data, seq.image.data, "{mode:?} seq");
            assert!(seq.stats.is_consistent());
            assert_eq!(seq.slab_densities.len(), 1);
            // The wide demo window culls nothing, so the classification is
            // identical to dense — only the new counters move.
            assert_eq!(seq.stats.culled_rows, 0);
            assert_eq!(seq.stats.pairs_total, dense.stats.pairs_total);
            assert_eq!(seq.stats.pairs_deposited, dense.stats.pairs_deposited);
            assert_eq!(seq.stats.pairs_below_cutoff, dense.stats.pairs_below_cutoff);
            for threads in [2, 5] {
                let par = reconstruct_threaded(&view, &geom, &cfg, threads).unwrap();
                assert_eq!(
                    dense.image.data, par.image.data,
                    "{mode:?} threads {threads}"
                );
            }
            for chunk in [1usize, 4, 100] {
                let mut src = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
                let streamed = reconstruct_streaming(&mut src, &geom, &cfg, chunk).unwrap();
                assert_eq!(
                    dense.image.data, streamed.image.data,
                    "{mode:?} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn compaction_on_is_deterministic_across_engines() {
        let (geom, mut cfg) = demo();
        let (p, m, n) = (10, 6, 6);
        let data = mixed_stack(p, m, n);
        let view = ScanView::new(&data, p, m, n).unwrap();
        cfg.intensity_cutoff = 18.0;
        cfg.compaction = CompactionMode::On;
        let seq = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert!(seq.stats.compacted_pairs > 0);
        assert_eq!(seq.stats.compacted_pairs, seq.stats.pairs_below_cutoff);
        for threads in [1, 3, 8] {
            let par = reconstruct_threaded(&view, &geom, &cfg, threads).unwrap();
            assert_eq!(seq.image.data, par.image.data);
            assert_eq!(seq.stats, par.stats);
            assert_eq!(seq.cost.flops, par.cost.flops);
        }
        let mut src = InMemorySlabSource::new(data, p, m, n).unwrap();
        let streamed = reconstruct_streaming(&mut src, &geom, &cfg, 2).unwrap();
        assert_eq!(seq.image.data, streamed.image.data);
        assert_eq!(seq.stats, streamed.stats);
        assert_eq!(seq.cost.flops, streamed.cost.flops);
    }

    #[test]
    fn compaction_cuts_modeled_traffic_on_sparse_stacks() {
        let (geom, mut cfg) = demo();
        // Static except one drop: almost everything is below-cutoff.
        let data = single_drop_stack(&geom, 2, 2, 4);
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        cfg.intensity_cutoff = 1.0;
        let dense = reconstruct_seq(&view, &geom, &cfg).unwrap();
        cfg.compaction = CompactionMode::On;
        let compact = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(dense.image.data, compact.image.data);
        assert!(
            compact.cost.mem_bytes < dense.cost.mem_bytes / 2,
            "compact {} vs dense {} bytes",
            compact.cost.mem_bytes,
            dense.cost.mem_bytes
        );
        assert!(compact.slab_densities[0] < 0.05);
    }

    #[test]
    fn wire_shadow_culling_preserves_bits_on_narrow_windows() {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        // A window covering only part of the swept range, so whole
        // (pair, row) strips drop out.
        let mut cfg = ReconstructionConfig::new(-350.0, 150.0, 50);
        let (p, m, n) = (10, 6, 6);
        let data = mixed_stack(p, m, n);
        let view = ScanView::new(&data, p, m, n).unwrap();
        let dense = reconstruct_seq(&view, &geom, &cfg).unwrap();
        for mode in [CompactionMode::Auto, CompactionMode::On] {
            cfg.compaction = mode;
            let culled = reconstruct_seq(&view, &geom, &cfg).unwrap();
            assert_eq!(dense.image.data, culled.image.data, "{mode:?}");
            assert!(culled.stats.is_consistent());
            assert!(culled.stats.culled_rows > 0, "window should cull strips");
            assert_eq!(culled.stats.pairs_total, dense.stats.pairs_total);
            assert_eq!(culled.stats.pairs_deposited, dense.stats.pairs_deposited);
            assert_eq!(culled.stats.deposits, dense.stats.deposits);
        }
    }

    #[test]
    fn auto_mode_falls_back_to_dense_at_high_density() {
        let (geom, cfg) = demo();
        let (p, m, n) = (10, 6, 6);
        // Every pair well above the zero cutoff → density 1.0.
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| 500.0 - 13.0 * (i / (m * n)) as f64)
            .collect();
        let view = ScanView::new(&data, p, m, n).unwrap();
        let dense = reconstruct_seq(&view, &geom, &cfg).unwrap();
        let mut auto_cfg = cfg.clone();
        auto_cfg.compaction = CompactionMode::Auto;
        let auto = reconstruct_seq(&view, &geom, &auto_cfg).unwrap();
        assert_eq!(dense.image.data, auto.image.data);
        assert_eq!(auto.slab_densities, vec![1.0]);
        // Dense fallback: nothing was compacted away.
        assert_eq!(auto.stats.compacted_pairs, 0);
        let mut on_cfg = cfg;
        on_cfg.compaction = CompactionMode::On;
        let on = reconstruct_seq(&view, &geom, &on_cfg).unwrap();
        assert_eq!(dense.image.data, on.image.data);
        assert_eq!(on.stats.compacted_pairs, 0); // nothing below cutoff
    }

    #[test]
    fn slab_source_view_round_trip() {
        let (geom, cfg) = demo();
        let data = single_drop_stack(&geom, 3, 3, 5);
        let src = InMemorySlabSource::new(data.clone(), 10, 6, 6).unwrap();
        let out_a = reconstruct_seq(&src.view(), &geom, &cfg).unwrap();
        let view = ScanView::new(&data, 10, 6, 6).unwrap();
        let out_b = reconstruct_seq(&view, &geom, &cfg).unwrap();
        assert_eq!(out_a.image.data, out_b.image.data);
    }
}
