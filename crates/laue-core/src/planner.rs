//! Self-tuning execution planner: cost-model-driven plan selection.
//!
//! The paper tunes one kernel for one GPU by hand. This repo's config
//! space — data layout × triangulation placement × ring depth × compaction
//! × accumulation × slab rows — has no single winner: the best plan shifts
//! with the device generation, the stack's sparsity, and the bin count.
//! Rather than asking the operator to sweep flags, the planner *predicts*
//! each candidate's virtual cost with the same calibrated roofline model
//! the simulator charges ([`cuda_sim::DeviceProps::kernel_time`], the
//! shared half-duplex PCIe bus, per-transfer latency) and picks the argmin.
//!
//! Two levels:
//!
//! * **Per slab** ([`plan_slab`]): given a slab's measured sparsity
//!   structure and a sampled probe of its intensity statistics, choose
//!   compacted vs dense execution and atomic vs privatized accumulation by
//!   comparing the modeled kernel times of each combination. This subsumes
//!   the former `AUTO_COMPACT_MAX_DENSITY` threshold (a density cutoff is
//!   just a special case of a cost comparison with a fixed crossover) and
//!   the accumulation auto mode.
//! * **Per run** ([`plan_run`]): enumerate layout × triangulation ×
//!   pipeline depth × slab rows, model every slab's upload, prescan,
//!   kernel, and download under the chosen per-slab plans, compose them
//!   into a predicted makespan (serial chain at ring depth 1; at depth ≥ 2
//!   the elapsed time is the max of the bus-bound path and the compute
//!   path, the shape PR 6's shared-bus model produces), and return the
//!   cheapest feasible candidate plus the full scored candidate list for
//!   the run report's explain block.
//!
//! The probe ([`SlabProbe`]) samples up to [`PROBE_MAX_PIXELS`] pixels of a
//! slab host-side — evenly strided, so the result is deterministic and
//! `--resume` re-derives the identical plan. Probe work is host planning
//! time, not charged to the virtual clock, the same convention as the
//! sparsity prescan planning and the shadow cull's host FLOPs.
//!
//! Host-CPU table time is modeled ([`RunPlan::host_s`]) but deliberately
//! excluded from the predicted makespan: [`cuda_sim`] charges host FLOPs to
//! a parallel host resource that never stalls a device stream, so measured
//! virtual elapsed time excludes it too — predictions are compared against
//! measurements like for like.

use cuda_sim::{ChainEstimator, Cost, DeviceProps, HostProps, InterconnectProps};
use laue_geometry::DepthMapper;

use crate::cluster::{
    node_bands, reduction_segment_bytes, route_hops, ClusterOptions, ReductionTopology,
};
use crate::config::{AccumulationMode, CompactionMode, ReconstructionConfig};
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::gpu::{
    fit_rows_per_slab, plan_accumulation, AccumPlan, GpuOptions, Layout, PipelineDepth,
    ThreadMapping, Triangulation, BLOCK_SIZE,
};
use crate::input::SlabSource;
use crate::pair::{
    differential, plan_from_band, plan_pair, PairPlan, COMPACT_ENTRY_BYTES, FLOPS_PER_DEPTH,
    FLOPS_PER_PAIR, MEM_BYTES_PER_PAIR,
};
use crate::planning::ShadowCull;
use crate::Result;

/// Pixels one probe samples per slab. 64 pixels × all pairs is enough to
/// estimate the per-active-pair deposit statistics within a few percent on
/// the synthetic stacks while staying negligible next to the sparsity
/// prescan planning the engine already does host-side.
pub const PROBE_MAX_PIXELS: usize = 64;

/// Device-memory allocation granularity mirrored from `cuda_sim::alloc`.
const ALLOC_ALIGN: u64 = 256;

/// Round a byte count up to the simulator's allocation granularity.
fn round_alloc(bytes: u64) -> u64 {
    bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN
}

/// Raw sampled sums from probing one slab's intensities: how the pairs
/// above the cutoff behave — deposits per pair, distinct cells touched,
/// worst per-cell multiplicity, and the exact FLOP counts of both
/// triangulation placements.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlabProbe {
    /// Pixels sampled.
    pub sampled_pixels: u64,
    /// `(pixel, pair)` elements evaluated.
    pub evals: u64,
    /// Elements whose `|ΔI|` exceeded the cutoff.
    pub active: u64,
    /// Nonzero bin deposits across the sampled elements.
    pub deposits: u64,
    /// Distinct `(pixel, bin)` cells touched (one committed add each under
    /// privatized accumulation).
    pub commits: u64,
    /// Max deposits landing in one `(pixel, bin)` cell — the same-address
    /// atomic chain a single output cell serializes.
    pub max_mult: u64,
    /// FLOPs `plan_pair` charged (in-kernel triangulation mode).
    pub flops_inkernel: u64,
    /// FLOPs the table-mode kernel charges for the same elements
    /// (`FLOPS_PER_PAIR` per eval plus `plan_from_band` above the cutoff).
    pub flops_table: u64,
}

impl SlabProbe {
    /// Sample up to [`PROBE_MAX_PIXELS`] evenly strided pixels of a host
    /// slab, evaluating every (non-culled) pair of each exactly as the
    /// kernel would. `live_pairs`, when present, is the per-slab-row live
    /// list from the sparsity plan; `None` means every pair is live.
    #[allow(clippy::too_many_arguments)]
    pub fn sample(
        slab: &[f64],
        geom: &ScanGeometry,
        mapper: &DepthMapper,
        cfg: &ReconstructionConfig,
        n_images: usize,
        row0: usize,
        rows: usize,
        n_cols: usize,
        live_pairs: Option<&[Vec<u32>]>,
    ) -> SlabProbe {
        let mut probe = SlabProbe::default();
        let n_pairs = n_images - 1;
        let total_pixels = rows * n_cols;
        if total_pixels == 0 || n_pairs == 0 {
            return probe;
        }
        let n_samples = total_pixels.min(PROBE_MAX_PIXELS);
        let stride = total_pixels / n_samples;
        let wire_centers = geom.wire.centers();
        let all_pairs: Vec<u32> = (0..n_pairs as u32).collect();
        // Per-pixel deposit multiplicity scratch, reset between pixels.
        let mut cell_counts = vec![0u32; cfg.n_depth_bins];
        let mut touched_bins = Vec::new();
        for s in 0..n_samples {
            let pix = s * stride;
            let (r, c) = (pix / n_cols, pix % n_cols);
            let live = match live_pairs {
                Some(lp) => &lp[r],
                None => &all_pairs,
            };
            if live.is_empty() {
                probe.sampled_pixels += 1;
                continue;
            }
            let pixel = geom
                .detector
                .pixel_to_xyz_unchecked((row0 + r) as f64, c as f64);
            for &z in live {
                let z = z as usize;
                let i0 = slab[(z * rows + r) * n_cols + c];
                let i1 = slab[((z + 1) * rows + r) * n_cols + c];
                probe.evals += 1;
                let plan = plan_pair(
                    mapper,
                    cfg,
                    pixel,
                    wire_centers[z],
                    wire_centers[z + 1],
                    i0,
                    i1,
                    &mut probe.flops_inkernel,
                );
                // Table-mode FLOPs for the identical element: the
                // differential/cutoff logic repeats, the triangulation is a
                // table read (charged as memory, not FLOPs).
                probe.flops_table += FLOPS_PER_PAIR;
                let delta = differential(cfg, i0, i1);
                if delta.abs() > cfg.intensity_cutoff {
                    probe.active += 1;
                    let d0 = mapper
                        .depth(pixel, wire_centers[z], cfg.wire_edge)
                        .unwrap_or(f64::NAN);
                    let d1 = mapper
                        .depth(pixel, wire_centers[z + 1], cfg.wire_edge)
                        .unwrap_or(f64::NAN);
                    plan_from_band(cfg, delta, d0, d1, &mut probe.flops_table);
                }
                if let PairPlan::Deposit(dp) = plan {
                    for (bin, count) in cell_counts
                        .iter_mut()
                        .enumerate()
                        .take(dp.last_bin)
                        .skip(dp.first_bin)
                    {
                        if dp.amount(bin, cfg) != 0.0 {
                            probe.deposits += 1;
                            if *count == 0 {
                                touched_bins.push(bin);
                            }
                            *count += 1;
                        }
                    }
                }
            }
            for &bin in &touched_bins {
                probe.commits += 1;
                probe.max_mult = probe.max_mult.max(cell_counts[bin] as u64);
                cell_counts[bin] = 0;
            }
            touched_bins.clear();
            probe.sampled_pixels += 1;
        }
        probe
    }

    /// Merge another probe's sums into this one (used when probing several
    /// bands of a run).
    pub fn merge(&mut self, other: &SlabProbe) {
        self.sampled_pixels += other.sampled_pixels;
        self.evals += other.evals;
        self.active += other.active;
        self.deposits += other.deposits;
        self.commits += other.commits;
        self.max_mult = self.max_mult.max(other.max_mult);
        self.flops_inkernel += other.flops_inkernel;
        self.flops_table += other.flops_table;
    }

    /// Per-element scaling rates derived from the sampled sums.
    pub fn rates(&self) -> ProbeRates {
        let active = self.active as f64;
        let zero_active = self.active == 0;
        ProbeRates {
            frac_active: if self.evals == 0 {
                0.0
            } else {
                active / self.evals as f64
            },
            deposits_per_active: if zero_active {
                0.0
            } else {
                self.deposits as f64 / active
            },
            commits_per_active: if zero_active {
                0.0
            } else {
                self.commits as f64 / active
            },
            max_mult: self.max_mult,
            extra_flops_per_active_inkernel: if zero_active {
                0.0
            } else {
                (self.flops_inkernel - FLOPS_PER_PAIR * self.evals) as f64 / active
            },
            extra_flops_per_active_table: if zero_active {
                0.0
            } else {
                (self.flops_table - FLOPS_PER_PAIR * self.evals) as f64 / active
            },
        }
    }
}

/// Probe-derived scaling rates: everything per evaluated element is exact
/// (`FLOPS_PER_PAIR`, the input reads); everything beyond the cutoff test
/// scales with the active count through these.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeRates {
    /// Fraction of evaluated elements above the cutoff.
    pub frac_active: f64,
    /// Nonzero bin deposits per active element.
    pub deposits_per_active: f64,
    /// Committed `(pixel, bin)` cells per active element.
    pub commits_per_active: f64,
    /// Max deposits into one output cell (atomic chain floor).
    pub max_mult: u64,
    /// FLOPs beyond `FLOPS_PER_PAIR` per active element, in-kernel mode
    /// (triangulation + bin spreading).
    pub extra_flops_per_active_inkernel: f64,
    /// Same for table mode (bin spreading only; depths come from reads).
    pub extra_flops_per_active_table: f64,
}

/// One slab's workload summary: the exact sparsity counts (from the
/// sparsity plan or the shadow cull) plus the probe rates that scale the
/// above-cutoff tail.
#[derive(Debug, Clone)]
pub(crate) struct SlabModel {
    pub(crate) rows: usize,
    pub(crate) n_cols: usize,
    pub(crate) n_bins: usize,
    /// Rows with at least one live pair (prescan + banded launch domain).
    pub(crate) live_rows: usize,
    /// Σ per-row live pair count (the banded combo count).
    pub(crate) live_pairs_sum: u64,
    /// Live `(pixel, pair)` elements: `live_pairs_sum × n_cols`.
    pub(crate) live_evals: u64,
    /// Above-cutoff elements (exact when a sparsity plan measured them,
    /// probe-scaled `frac_active × live_evals` otherwise).
    pub(crate) entries: u64,
    pub(crate) culled_combos: u64,
    /// Σ per-row touched-image count (prescan read accounting).
    pub(crate) touched_sum: u64,
    pub(crate) rates: ProbeRates,
}

impl SlabModel {
    /// A dense slab with no sparsity pass: every pair of every pixel is
    /// evaluated, nothing is culled, no prescan runs.
    pub(crate) fn dense(
        rows: usize,
        n_cols: usize,
        n_bins: usize,
        n_pairs: usize,
        rates: ProbeRates,
    ) -> SlabModel {
        let live_pairs_sum = (rows * n_pairs) as u64;
        let live_evals = live_pairs_sum * n_cols as u64;
        SlabModel {
            rows,
            n_cols,
            n_bins,
            live_rows: rows,
            live_pairs_sum,
            live_evals,
            entries: (rates.frac_active * live_evals as f64).round() as u64,
            culled_combos: 0,
            touched_sum: (rows * (n_pairs + 1)) as u64,
            rates,
        }
    }
}

/// The `set_two` launch domain a candidate runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShapeKind {
    Dense,
    Banded,
    Compact,
}

/// Same-address serialization estimate for `n` atomics spread over
/// `domain` addresses: the worst single cell ([`ProbeRates::max_mult`],
/// passed as `mult_floor`) or — when the domain aliases into fewer chain
/// buckets than there are operations — the pigeonhole bound over the
/// estimator's stripes, whichever is larger.
fn chain_estimate(ops: u64, mult_floor: u64, domain: u64) -> u64 {
    if ops == 0 {
        return 0;
    }
    let buckets = domain.clamp(1, ChainEstimator::BUCKETS as u64);
    mult_floor.max(ops.div_ceil(buckets))
}

/// Build the modeled [`Cost`] of one slab's main `set_two` launch, exactly
/// mirroring what `gpu::launch_set_two` charges per element, per shape,
/// and per accumulation strategy.
fn main_kernel_cost(
    m: &SlabModel,
    shape: ShapeKind,
    accum: AccumPlan,
    layout: Layout,
    table_mode: bool,
) -> Cost {
    let evals = match shape {
        ShapeKind::Dense | ShapeKind::Banded => m.live_evals,
        ShapeKind::Compact => m.entries,
    };
    let active = m.entries;
    let mut cost = Cost::default();
    // Index arithmetic + differential/cutoff logic, every element.
    cost.flops += (6 + FLOPS_PER_PAIR) * evals;
    // Intensity fetch: flat reads two f64; the pointer layout adds a 16 B
    // pointer chase on top of the two element reads.
    let intensity_bytes: u64 = match layout {
        Layout::Flat1d => 16,
        Layout::Pointer3d => 32,
    };
    if table_mode {
        cost.mem_bytes += intensity_bytes * evals;
        // Above the cutoff: two depth-table reads instead of triangulation.
        cost.mem_bytes += 16 * active;
        cost.flops += (m.rates.extra_flops_per_active_table * active as f64) as u64;
    } else {
        // In-kernel mode reads the pixel position (24 B) and both wire
        // centres (48 B) for every element, then triangulates the active
        // ones.
        cost.mem_bytes += (MEM_BYTES_PER_PAIR - 16 + intensity_bytes) * evals;
        cost.flops += (m.rates.extra_flops_per_active_inkernel * active as f64) as u64;
    }
    let privatized_pixels = match shape {
        ShapeKind::Banded => m.live_rows * m.n_cols,
        ShapeKind::Dense | ShapeKind::Compact => m.rows * m.n_cols,
    } as u64;
    // Shape-specific descriptor traffic.
    match shape {
        ShapeKind::Dense => {}
        // Combo descriptor (atomic) or live-pair descriptor (privatized):
        // one u64 fetch per element either way.
        ShapeKind::Banded => cost.mem_bytes += COMPACT_ENTRY_BYTES * evals,
        ShapeKind::Compact => {
            // Work-list readback, one u64 per entry; the privatized kernel
            // additionally fetches each pixel's CSR offset.
            cost.mem_bytes += COMPACT_ENTRY_BYTES * evals;
            if matches!(accum, AccumPlan::Privatized { .. }) {
                cost.mem_bytes += 8 * privatized_pixels;
            }
        }
    }
    let deposits = (m.rates.deposits_per_active * active as f64).round() as u64;
    let out_domain = match layout {
        Layout::Flat1d => (m.n_bins * m.rows * m.n_cols) as u64,
        // Per-bin buffers restart indexing at 0: bins alias buckets.
        Layout::Pointer3d => (m.rows * m.n_cols) as u64,
    };
    let pointer_fetch = match layout {
        Layout::Flat1d => 0,
        Layout::Pointer3d => 8,
    };
    match accum {
        AccumPlan::Atomic { .. } => {
            cost.atomic_ops += deposits;
            cost.mem_bytes += (8 + pointer_fetch) * deposits;
            cost.atomic_max_chain = chain_estimate(deposits, m.rates.max_mult, out_domain);
        }
        AccumPlan::Privatized { pixels_per_block } => {
            // Tile read-modify-writes, then the epilogue's full tile scan.
            cost.shared_bytes += 16 * deposits;
            cost.shared_bytes += 8 * privatized_pixels * m.n_bins as u64;
            cost.flops += privatized_pixels * m.n_bins as u64;
            let commits = (m.rates.commits_per_active * active as f64).round() as u64;
            cost.atomic_ops += commits;
            cost.mem_bytes += (8 + pointer_fetch) * commits;
            // Each cell commits exactly once; only bucket aliasing chains.
            cost.atomic_max_chain = chain_estimate(commits, 1, out_domain);
            cost.shared_request = (pixels_per_block * m.n_bins * 8) as u64;
        }
    }
    cost
}

/// Modeled [`Cost`] of the prescan launch (sparsity pass enabled and the
/// slab has live rows), mirroring `gpu::launch_prescan`: per-pixel column
/// reads + compare FLOPs, the work-list emit when the slab compacts, and
/// one block-leader counter atomic per block — all hitting the same cell,
/// so the chain equals the block count.
fn prescan_cost(m: &SlabModel, emit_entries: bool) -> Option<Cost> {
    if m.live_rows == 0 {
        return None;
    }
    let threads = (m.live_rows * m.n_cols) as u64;
    let blocks = threads.div_ceil(BLOCK_SIZE);
    let mut cost = Cost {
        flops: 2 * m.n_cols as u64 * m.live_pairs_sum,
        mem_bytes: 8 * m.n_cols as u64 * m.touched_sum + 8 * blocks,
        atomic_ops: blocks,
        atomic_max_chain: blocks,
        ..Cost::default()
    };
    if emit_entries {
        cost.mem_bytes += COMPACT_ENTRY_BYTES * m.entries;
    }
    Some(cost)
}

/// What the planner decided for one slab.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlabDecision {
    /// Launch over the compacted work-list instead of the dense/banded
    /// domain.
    pub(crate) compact: bool,
    /// Accumulation strategy of the main launch.
    pub(crate) accum: AccumPlan,
    /// Predicted prescan + main kernel time, seconds.
    pub(crate) kernel_s: f64,
}

/// Joint per-slab decision: enumerate the launch shapes the compaction
/// mode allows × the accumulation strategies the accumulation mode allows,
/// cost each combination with the device's roofline model, and pick the
/// cheapest. Fixed modes degenerate to a single candidate, so the planner
/// reproduces forced behaviour exactly.
///
/// Tie-breaks (relative 1e-9): the non-compacted shape wins — at full
/// density compaction only adds work-list traffic — and privatized
/// accumulation wins, since its measured edge on real contention exceeds
/// what the model resolves at tie distance.
pub(crate) fn plan_slab(
    props: &DeviceProps,
    m: &SlabModel,
    layout: Layout,
    table_mode: bool,
    compaction: CompactionMode,
    accumulation: AccumulationMode,
) -> SlabDecision {
    let accum_candidates: Vec<AccumPlan> = match accumulation {
        AccumulationMode::Atomic => vec![AccumPlan::Atomic { fallback: false }],
        AccumulationMode::Privatized => vec![plan_accumulation(props, m.n_bins, accumulation)],
        AccumulationMode::Auto => match plan_accumulation(props, m.n_bins, accumulation) {
            AccumPlan::Privatized { pixels_per_block } => vec![
                AccumPlan::Privatized { pixels_per_block },
                AccumPlan::Atomic { fallback: false },
            ],
            // One bin row exceeds shared memory: atomics are forced, and
            // the fallback flag keeps the stats attribution honest.
            fallback => vec![fallback],
        },
    };
    if m.live_evals == 0 {
        // Every pair culled: no launch at all; the flags only feed stats.
        return SlabDecision {
            compact: matches!(compaction, CompactionMode::On),
            accum: accum_candidates[0],
            kernel_s: 0.0,
        };
    }
    let noncompact = if m.culled_combos > 0 {
        ShapeKind::Banded
    } else {
        ShapeKind::Dense
    };
    let shape_candidates: Vec<(bool, ShapeKind)> = match compaction {
        CompactionMode::Off => vec![(false, ShapeKind::Dense)],
        CompactionMode::On => vec![(true, ShapeKind::Compact)],
        CompactionMode::Auto => vec![(false, noncompact), (true, ShapeKind::Compact)],
    };
    let mut best: Option<SlabDecision> = None;
    for &(compact, shape) in &shape_candidates {
        // The prescan runs whenever the sparsity pass is enabled; only the
        // work-list emit depends on the shape decision.
        let prescan_s = if compaction.enabled() {
            prescan_cost(m, compact).map_or(0.0, |c| props.kernel_time(&c))
        } else {
            0.0
        };
        for &accum in &accum_candidates {
            let main_s = if shape == ShapeKind::Compact && m.entries == 0 {
                0.0 // empty work-list: the main launch is skipped
            } else {
                props.kernel_time(&main_kernel_cost(m, shape, accum, layout, table_mode))
            };
            let total = prescan_s + main_s;
            let better = match &best {
                None => true,
                Some(b) => total < b.kernel_s * (1.0 - 1e-9),
            };
            if better {
                best = Some(SlabDecision {
                    compact,
                    accum,
                    kernel_s: total,
                });
            }
        }
    }
    best.expect("at least one shape × accumulation candidate")
}

/// Host-side analogue of the compaction cost comparison, replacing the
/// former fixed density threshold. Compacted execution visits only the
/// `active` pairs but pays the work-list emit + read
/// (2 × [`COMPACT_ENTRY_BYTES`]) on top of each pair's dense traffic;
/// dense execution visits every `live` pair at [`MEM_BYTES_PER_PAIR`].
/// Compact FLOPs are a strict subset of dense FLOPs (the skipped pairs are
/// all below the cutoff), so on the host roofline —
/// `max(compute, memory)` — compacting wins exactly when its memory term
/// does. The implied crossover density is 88 / 104 ≈ 0.85, now derived
/// from the charge constants instead of hard-coded.
pub fn host_compaction_wins(live_pairs: u64, active_pairs: u64) -> bool {
    (MEM_BYTES_PER_PAIR + 2 * COMPACT_ENTRY_BYTES) * active_pairs <= MEM_BYTES_PER_PAIR * live_pairs
}

/// Depth-table cache warmth, fed into [`plan_run`] so predictions account
/// for what a previous run already paid (the cache's peek methods answer
/// these without perturbing LRU order or hit statistics).
#[derive(Debug, Clone, Copy, Default)]
pub struct TableWarmth {
    /// The host-side table for this scan is cached: no triangulation FLOPs.
    pub host_warm: bool,
    /// The table is already device-resident: no upload either.
    pub device_warm: bool,
    /// Device-resident byte budget (0 disables residency).
    pub resident_budget: u64,
}

/// One scored candidate from the run-level enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedCandidate {
    /// Stable label, e.g. `flat1d/inkernel/k3/r128`.
    pub label: String,
    /// Predicted virtual makespan, seconds.
    pub predicted_s: f64,
    /// Modeled host-CPU table/cull seconds (parallel to the makespan).
    pub host_s: f64,
}

/// The run-level plan [`plan_run`] selected.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// GPU options of the winning candidate (mapping is always
    /// [`ThreadMapping::Linear`]; `Grid3d` has identical modeled cost).
    pub options: GpuOptions,
    /// Ring depth of the winning candidate.
    pub depth: PipelineDepth,
    /// Slab rows of the winning candidate (feasible by construction).
    pub rows_per_slab: usize,
    /// Predicted virtual makespan of the winner, seconds.
    pub predicted_s: f64,
    /// Modeled host-CPU seconds of the winner.
    pub host_s: f64,
    /// The winner's label (also folded into the journal key under
    /// `--plan auto`, so a plan flip forces a clean restart).
    pub label: String,
    /// Every scored candidate, enumeration order.
    pub candidates: Vec<PlannedCandidate>,
}

fn layout_label(layout: Layout) -> &'static str {
    match layout {
        Layout::Flat1d => "flat1d",
        Layout::Pointer3d => "ptr3d",
    }
}

fn triangulation_label(t: Triangulation) -> &'static str {
    match t {
        Triangulation::InKernel => "inkernel",
        Triangulation::HostTables => "tables",
    }
}

/// Enumerate and score run-level execution plans for `source` on the
/// device described by `props`, returning the predicted-cheapest feasible
/// one. Per-slab knobs (compaction, accumulation) are resolved inside each
/// candidate via [`plan_slab`] under the modes in `cfg` — under
/// `--plan auto` the pipeline forces both to `Auto` so the planner owns
/// every knob.
pub fn plan_run(
    props: &DeviceProps,
    host: &HostProps,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    warmth: TableWarmth,
) -> Result<RunPlan> {
    let mapper = geom.mapper()?;
    let (n_images, n_rows, n_cols) = (source.n_images(), source.n_rows(), source.n_cols());
    let n_pairs = n_images - 1;
    let n_bins = cfg.n_depth_bins;
    let n_steps = geom.wire.n_steps;

    let cull = if cfg.compaction.enabled() {
        Some(ShadowCull::compute(geom, &mapper, cfg, 0..n_rows))
    } else {
        None
    };

    // Probe a few single-row bands spread across the detector; merged sums
    // stand in for the whole stack's intensity statistics.
    let mut probe = SlabProbe::default();
    let mut probe_rows: Vec<usize> = [0, n_rows / 4, n_rows / 2, (3 * n_rows) / 4]
        .into_iter()
        .map(|r| r.min(n_rows - 1))
        .collect();
    probe_rows.dedup();
    for &r in &probe_rows {
        let slab = source.read_slab(r, 1)?;
        let live = cull
            .as_ref()
            .map(|cull| vec![cull.live_pairs(r).into_iter().map(|z| z as u32).collect()]);
        probe.merge(&SlabProbe::sample(
            &slab,
            geom,
            &mapper,
            cfg,
            n_images,
            r,
            1,
            n_cols,
            live.as_deref(),
        ));
    }
    let rates = probe.rates();

    let table_bytes = (n_images * n_rows * n_cols * 8) as u64;
    let wire_bytes = (n_steps * 3 * 8) as u64;
    let table_mode_host_flops = (n_images * n_rows * n_cols) as u64 * FLOPS_PER_DEPTH;
    let cull_host_flops = cull.as_ref().map_or(0, |c| c.host_flops);

    let mut candidates = Vec::new();
    let mut best: Option<(GpuOptions, PipelineDepth, usize, f64, f64, String)> = None;
    let mut last_fit_error = None;
    for layout in [Layout::Flat1d, Layout::Pointer3d] {
        for triangulation in [Triangulation::InKernel, Triangulation::HostTables] {
            let table_mode = triangulation == Triangulation::HostTables;
            let resident =
                table_mode && (warmth.device_warm || warmth.resident_budget >= table_bytes);
            let opts = GpuOptions {
                layout,
                triangulation,
                mapping: ThreadMapping::Linear,
            };
            // Mirror `run_ring`: a resident table leaves the per-slab
            // working set, and the budget excludes what is already
            // allocated (wires, resident table).
            let sizing_opts = if resident {
                GpuOptions {
                    triangulation: Triangulation::InKernel,
                    ..opts
                }
            } else {
                opts
            };
            let mut used = round_alloc(wire_bytes);
            if resident {
                used += round_alloc(table_bytes);
            }
            let budget = props.total_mem.saturating_sub(used);
            for depth in [1usize, 2, 3] {
                // Slots-halving fit loop, as the ring runs it.
                let mut slots = depth;
                let fit = match cfg.rows_per_slab {
                    Some(r) => Some(r.min(n_rows)),
                    None => loop {
                        match fit_rows_per_slab(
                            budget,
                            n_rows,
                            n_images,
                            n_cols,
                            n_bins,
                            sizing_opts,
                            slots,
                            cfg.compaction,
                        ) {
                            Ok(r) => break Some(r),
                            Err(e @ CoreError::DeviceCapacity { .. }) => {
                                if slots > 1 {
                                    slots = (slots / 2).max(1);
                                } else {
                                    last_fit_error = Some(e);
                                    break None;
                                }
                            }
                            Err(e) => return Err(e),
                        }
                    },
                };
                let Some(fit_rows) = fit else { continue };
                let mut row_variants = vec![fit_rows];
                if cfg.rows_per_slab.is_none() && fit_rows > 1 {
                    row_variants.push((fit_rows / 2).max(1));
                }
                row_variants.dedup();
                for rows_per_slab in row_variants {
                    // Fixed per-run prologue: the wire table ships once; a
                    // cold resident table uploads as one batched
                    // transaction.
                    let mut pre = props.transfer_time(wire_bytes);
                    if resident && !warmth.device_warm {
                        pre += props.transfer_time_batched(table_bytes);
                    }
                    let (mut sum_up, mut sum_down, mut sum_kernel) = (0.0f64, 0.0f64, 0.0f64);
                    let (mut first_up, mut last_down) = (0.0f64, 0.0f64);
                    let mut serial = 0.0f64;
                    // Payload bytes the integrity layer would CRC (both
                    // directions; the wire table and a cold resident table
                    // are checked too).
                    let mut checked_bytes = wire_bytes;
                    if resident && !warmth.device_warm {
                        checked_bytes += table_bytes;
                    }
                    let mut row0 = 0usize;
                    let mut first = true;
                    while row0 < n_rows {
                        let rows = rows_per_slab.min(n_rows - row0);
                        let model = match &cull {
                            Some(cull) => {
                                let bp = cull.band_profile(row0..row0 + rows);
                                let live_evals = bp.live_combos * n_cols as u64;
                                SlabModel {
                                    rows,
                                    n_cols,
                                    n_bins,
                                    live_rows: bp.live_rows,
                                    live_pairs_sum: bp.live_combos,
                                    live_evals,
                                    entries: (rates.frac_active * live_evals as f64).round() as u64,
                                    culled_combos: bp.culled_combos,
                                    touched_sum: bp.touched_sum,
                                    rates,
                                }
                            }
                            None => SlabModel::dense(rows, n_cols, n_bins, n_pairs, rates),
                        };
                        let decision = plan_slab(
                            props,
                            &model,
                            layout,
                            table_mode,
                            cfg.compaction,
                            cfg.accumulation,
                        );
                        // Upload: all f64 pieces coalesce into one batched
                        // transaction; the pointer layout pays a second
                        // (u64) transaction for its pointer tables.
                        let mut f64_bytes = (rows * n_cols * 3 * 8) as u64; // pixels
                        if table_mode && !resident {
                            f64_bytes += (n_images * rows * n_cols * 8) as u64;
                        }
                        f64_bytes += (n_images * rows * n_cols * 8) as u64; // intensity
                        let mut t_up = props.transfer_time_batched(f64_bytes);
                        if layout == Layout::Pointer3d {
                            t_up += props.transfer_time_batched(((n_images + n_bins) * 8) as u64);
                        }
                        // Download: flat is one D2H; the pointer layout pays
                        // the transfer latency once per output bin.
                        let down_bytes = (n_bins * rows * n_cols * 8) as u64;
                        let t_down = match layout {
                            Layout::Flat1d => props.transfer_time(down_bytes),
                            Layout::Pointer3d => {
                                n_bins as f64 * props.pcie_latency
                                    + down_bytes as f64 / props.pcie_bw
                            }
                        };
                        checked_bytes += f64_bytes + down_bytes;
                        sum_up += t_up;
                        sum_down += t_down;
                        sum_kernel += decision.kernel_s;
                        serial += t_up + decision.kernel_s + t_down;
                        if first {
                            first_up = t_up;
                            first = false;
                        }
                        last_down = t_down;
                        row0 += rows;
                    }
                    // Makespan: depth 1 is a strict upload → kernel →
                    // download chain. Deeper rings overlap, bounded below
                    // by the shared half-duplex bus (every transfer
                    // serializes) and by the compute path — PR 6's model
                    // makes the max of the two a tight estimate.
                    let predicted_s = if slots == 1 {
                        pre + serial
                    } else {
                        let bus = sum_up + sum_down;
                        let compute = first_up + sum_kernel + last_down;
                        pre + bus.max(compute)
                    };
                    let mut host_flops = cull_host_flops;
                    if table_mode && !warmth.host_warm {
                        host_flops += table_mode_host_flops;
                    }
                    if cfg.integrity.enabled() {
                        // CRC64: two passes (send side + landed side) over
                        // every checked payload byte, charged to the
                        // overlapped host CPU exactly as the engine does.
                        host_flops += 2 * cuda_sim::Device::CRC64_FLOPS_PER_BYTE * checked_bytes;
                        // ABFT: one dense host recompute of every slab —
                        // triangulation for each (image, pixel) plus the
                        // per-pair deposit work, mirroring the in-kernel
                        // cost model on the host side.
                        let evals = (n_pairs * n_rows * n_cols) as u64;
                        host_flops += table_mode_host_flops
                            + FLOPS_PER_PAIR * evals
                            + (rates.frac_active
                                * evals as f64
                                * rates.extra_flops_per_active_inkernel)
                                as u64;
                    }
                    let host_s = host.kernel_time(
                        &Cost {
                            flops: host_flops,
                            ..Cost::default()
                        },
                        1,
                    );
                    let label = format!(
                        "{}/{}/k{}/r{}",
                        layout_label(layout),
                        triangulation_label(triangulation),
                        depth,
                        rows_per_slab
                    );
                    candidates.push(PlannedCandidate {
                        label: label.clone(),
                        predicted_s,
                        host_s,
                    });
                    let better = match &best {
                        None => true,
                        Some((_, _, _, b, _, _)) => predicted_s < *b,
                    };
                    if better {
                        best = Some((
                            opts,
                            PipelineDepth(depth),
                            rows_per_slab,
                            predicted_s,
                            host_s,
                            label,
                        ));
                    }
                }
            }
        }
    }
    let Some((options, depth, rows_per_slab, predicted_s, host_s, label)) = best else {
        return Err(last_fit_error
            .unwrap_or_else(|| CoreError::InvalidConfig("no feasible execution plan".into())));
    };
    Ok(RunPlan {
        options,
        depth,
        rows_per_slab,
        predicted_s,
        host_s,
        label,
        candidates,
    })
}

/// Marginal speedup per extra device on one shared-bus chassis. PR 6
/// grounded intra-node multi-GPU at ~1.10× over eight devices (k ≥ 2 is
/// exactly bus-bound), so each extra device past the first buys ~1.4 %.
const INTRA_NODE_MARGINAL: f64 = 0.10 / 7.0;

/// A cluster execution plan: chosen reduction settings plus the priced
/// sweep over node count × topology × overlap.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Reduction settings of the winner at the *requested* node count.
    pub options: ClusterOptions,
    /// Node count the choice is priced at (always the requested one — the
    /// sweep over other counts is advisory, in `candidates`).
    pub nodes: usize,
    /// Predicted cluster makespan, seconds.
    pub predicted_s: f64,
    /// Predicted slowest-node compute, seconds.
    pub compute_s: f64,
    /// Predicted reduction time not hidden behind compute, seconds.
    pub reduction_exposed_s: f64,
    /// Stable label, e.g. `n8x1/tree+overlap`, folded into the journal
    /// key under `--plan auto`.
    pub label: String,
    /// The underlying single-device run plan the per-node estimate scales.
    pub per_node: RunPlan,
    /// Every scored cluster candidate (node count × topology × overlap).
    pub candidates: Vec<PlannedCandidate>,
}

/// Closed-form reduction estimate matching the executor's schedule shape:
/// every byte funnels through the head node's receive link (the gather
/// bound), plus the route's store-and-forward latency for the farthest
/// node, with per-message overhead multiplied out under fine-grained
/// overlap segments.
#[allow(clippy::too_many_arguments)]
fn reduction_estimate(
    net: &InterconnectProps,
    nodes: usize,
    topology: ReductionTopology,
    overlap: bool,
    compute_s: f64,
    n_rows: usize,
    n_cols: usize,
    n_bins: usize,
    rows_per_slab: usize,
) -> (f64, f64) {
    if nodes <= 1 {
        return (compute_s, 0.0);
    }
    let bands = node_bands(n_rows, nodes);
    let msg = |rows: usize| net.message_time(reduction_segment_bytes(rows, n_cols, n_bins));
    let max_hops = (1..bands.len())
        .map(|i| route_hops(topology, i))
        .max()
        .unwrap_or(0);
    if !overlap {
        // One whole-band message per node after a global barrier: the head
        // link drains them serially; the farthest route stacks its hops.
        let drain: f64 = bands[1..].iter().map(|b| msg(b.len())).sum();
        let path = bands[1..]
            .iter()
            .enumerate()
            .map(|(i, b)| route_hops(topology, i + 1) as f64 * msg(b.len()))
            .fold(0.0, f64::max);
        let exposed = drain.max(path);
        (compute_s + exposed, exposed)
    } else {
        // Slab-sized segments released across the compute window: the
        // drain can start almost immediately, so only the tail past the
        // slowest node's compute is exposed — at minimum, the last
        // segment's own trip down its route.
        let drain: f64 = bands[1..]
            .iter()
            .map(|b| {
                let slabs = b.len().div_ceil(rows_per_slab).max(1);
                let per = b.len().div_ceil(slabs);
                slabs as f64 * msg(per)
            })
            .sum();
        let last_rows = bands.last().unwrap().len().min(rows_per_slab).max(1);
        let tail = max_hops as f64 * msg(last_rows);
        let total = (compute_s + tail).max(drain + tail);
        (total, total - compute_s)
    }
}

/// Price a cluster run: node count × reduction topology × overlap, on the
/// same calibrated cost model as [`plan_run`]. The per-node compute
/// estimate scales the single-device run plan by the slowest band's row
/// share (bands are row-uniform to first order) and applies the PR 6
/// shared-chassis margin for extra devices per node; the reduction
/// estimate mirrors the executor's head-link-bound schedule. The chosen
/// topology/overlap is the argmin at the requested node count — the sweep
/// over power-of-two node counts is reported in `candidates` so scaling
/// studies can read the priced curve.
#[allow(clippy::too_many_arguments)]
pub fn plan_cluster(
    props: &DeviceProps,
    host: &HostProps,
    net: &InterconnectProps,
    nodes: usize,
    devices_per_node: usize,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    warmth: TableWarmth,
) -> Result<ClusterPlan> {
    if nodes == 0 || devices_per_node == 0 {
        return Err(CoreError::InvalidConfig(
            "a cluster plan needs at least one node and one device per node".into(),
        ));
    }
    let per_node = plan_run(props, host, source, geom, cfg, warmth)?;
    let n_rows = source.n_rows();
    let n_cols = source.n_cols();
    let n_bins = cfg.n_depth_bins;
    let intra = 1.0 + INTRA_NODE_MARGINAL * (devices_per_node.saturating_sub(1)) as f64;

    let mut counts: Vec<usize> = Vec::new();
    let mut k = 1;
    while k < nodes {
        counts.push(k);
        k *= 2;
    }
    counts.push(nodes);

    let mut candidates = Vec::new();
    let mut best: Option<(ClusterOptions, f64, f64, f64)> = None;
    for &k in &counts {
        let max_band = node_bands(n_rows, k)
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(n_rows);
        let compute_s = per_node.predicted_s * max_band as f64 / n_rows as f64 / intra;
        for topology in [ReductionTopology::Tree, ReductionTopology::Ring] {
            for overlap in [true, false] {
                let (predicted_s, exposed) = reduction_estimate(
                    net,
                    k,
                    topology,
                    overlap,
                    compute_s,
                    n_rows,
                    n_cols,
                    n_bins,
                    per_node.rows_per_slab,
                );
                let copts = ClusterOptions { topology, overlap };
                candidates.push(PlannedCandidate {
                    label: format!("n{k}x{devices_per_node}/{}", copts.label()),
                    predicted_s,
                    host_s: per_node.host_s,
                });
                if k == nodes {
                    let better = best.is_none_or(|(_, b, _, _)| predicted_s < b);
                    if better {
                        best = Some((copts, predicted_s, compute_s, exposed));
                    }
                }
            }
        }
    }
    let (options, predicted_s, compute_s, reduction_exposed_s) =
        best.expect("requested node count is always priced");
    Ok(ClusterPlan {
        options,
        nodes,
        predicted_s,
        compute_s,
        reduction_exposed_s,
        label: format!("n{nodes}x{devices_per_node}/{}", options.label()),
        per_node,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InMemorySlabSource;

    /// Small demo geometry plus a stack with gradually decaying
    /// intensities, so a healthy fraction of pairs clear the cutoff.
    fn test_scene() -> (ScanGeometry, Vec<f64>) {
        let geom = ScanGeometry::demo(6, 6, 10, -60.0, 6.0).unwrap();
        let (p, m, n) = (
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        );
        let stack: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                100.0 - 7.0 * z as f64 + (i % 5) as f64
            })
            .collect();
        (geom, stack)
    }

    /// Memory-bound rates: few deposits per active pair, so the element
    /// traffic (not the atomic term) decides the shape comparison.
    fn test_rates() -> ProbeRates {
        ProbeRates {
            frac_active: 0.25,
            deposits_per_active: 0.5,
            commits_per_active: 0.4,
            max_mult: 3,
            extra_flops_per_active_inkernel: 110.0,
            extra_flops_per_active_table: 12.0,
        }
    }

    fn model_with_density(density: f64) -> SlabModel {
        let (rows, n_cols, n_pairs) = (32usize, 48usize, 15usize);
        let live_pairs_sum = (rows * n_pairs) as u64;
        let live_evals = live_pairs_sum * n_cols as u64;
        SlabModel {
            rows,
            n_cols,
            n_bins: 200,
            live_rows: rows,
            live_pairs_sum,
            live_evals,
            entries: (density * live_evals as f64).round() as u64,
            culled_combos: 0,
            touched_sum: (rows * (n_pairs + 1)) as u64,
            rates: ProbeRates {
                frac_active: density,
                ..test_rates()
            },
        }
    }

    #[test]
    fn plan_cluster_prices_the_full_sweep_and_scales_compute_down() {
        let (geom, stack) = test_scene();
        let mut source = InMemorySlabSource::new(
            stack,
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        )
        .unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 60);
        let plan = plan_cluster(
            &DeviceProps::tesla_m2070(),
            &HostProps::xeon_e5630(),
            &InterconnectProps::ib_qdr(),
            4,
            1,
            &mut source,
            &geom,
            &cfg,
            TableWarmth::default(),
        )
        .unwrap();
        // counts {1, 2, 4} × 2 topologies × 2 overlap settings.
        assert_eq!(plan.candidates.len(), 12);
        assert!(plan.label.starts_with("n4x1/"));
        assert!(plan.compute_s < plan.per_node.predicted_s);
        assert!(plan.predicted_s >= plan.compute_s);
        // On a fast fabric the overlapped variant never loses at the
        // requested count.
        assert!(plan.options.overlap);
        // Single node is priced with zero reduction.
        let n1: Vec<_> = plan
            .candidates
            .iter()
            .filter(|c| c.label.starts_with("n1x1/"))
            .collect();
        assert!(n1
            .iter()
            .all(|c| (c.predicted_s - plan.per_node.predicted_s).abs() < 1e-12));
    }

    #[test]
    fn reduction_estimate_rewards_overlap_when_compute_dominates() {
        // Fabric sized so the drain is a visible fraction of compute but
        // does not dominate it — the regime where releasing segments
        // during the compute window actually hides them.
        let fabric = InterconnectProps {
            name: "fabric".to_string(),
            bandwidth_bytes_per_s: 1.0e9,
            latency_s: 1.0e-6,
            duplex: cuda_sim::Duplex::Full,
        };
        let compute = 0.01;
        let (on, on_exposed) = reduction_estimate(
            &fabric,
            8,
            ReductionTopology::Tree,
            true,
            compute,
            64,
            48,
            200,
            8,
        );
        let (off, off_exposed) = reduction_estimate(
            &fabric,
            8,
            ReductionTopology::Tree,
            false,
            compute,
            64,
            48,
            200,
            8,
        );
        assert!(off_exposed > 0.0);
        assert!(on < off, "overlap must hide part of the reduction");
        assert!(on_exposed < off_exposed);
        // Ring routes pay at least as much as tree under a barrier.
        let (off_ring, _) = reduction_estimate(
            &fabric,
            8,
            ReductionTopology::Ring,
            false,
            compute,
            64,
            48,
            200,
            8,
        );
        assert!(off_ring >= off);

        // When the fabric is so slow the drain dwarfs compute, the extra
        // tail makes overlap a net loss — the trade-off plan_cluster
        // prices instead of assuming overlap always wins.
        let swamp = InterconnectProps {
            bandwidth_bytes_per_s: 1.0e6,
            ..fabric
        };
        let (on_slow, _) = reduction_estimate(
            &swamp,
            8,
            ReductionTopology::Tree,
            true,
            compute,
            64,
            48,
            200,
            8,
        );
        let (off_slow, _) = reduction_estimate(
            &swamp,
            8,
            ReductionTopology::Tree,
            false,
            compute,
            64,
            48,
            200,
            8,
        );
        assert!(on_slow >= off_slow);
    }

    #[test]
    fn host_compaction_crossover_matches_charge_constants() {
        // wins at low density, loses at full density; crossover ≈ 0.846.
        assert!(host_compaction_wins(1000, 250));
        assert!(!host_compaction_wins(1000, 1000));
        assert!(host_compaction_wins(1000, 846));
        assert!(!host_compaction_wins(1000, 847));
    }

    #[test]
    fn plan_slab_compacts_sparse_but_not_full_density() {
        let props = DeviceProps::tesla_m2070();
        let sparse = plan_slab(
            &props,
            &model_with_density(0.25),
            Layout::Flat1d,
            false,
            CompactionMode::Auto,
            AccumulationMode::Atomic,
        );
        assert!(sparse.compact, "25% density should compact");
        let full = plan_slab(
            &props,
            &model_with_density(1.0),
            Layout::Flat1d,
            false,
            CompactionMode::Auto,
            AccumulationMode::Atomic,
        );
        assert!(!full.compact, "full density must stay dense");
    }

    #[test]
    fn plan_slab_fixed_modes_are_honoured() {
        let props = DeviceProps::tesla_m2070();
        let m = model_with_density(0.25);
        let on = plan_slab(
            &props,
            &m,
            Layout::Flat1d,
            false,
            CompactionMode::On,
            AccumulationMode::Atomic,
        );
        assert!(on.compact);
        let off = plan_slab(
            &props,
            &m,
            Layout::Flat1d,
            false,
            CompactionMode::Off,
            AccumulationMode::Atomic,
        );
        assert!(!off.compact);
        assert!(matches!(on.accum, AccumPlan::Atomic { fallback: false }));
    }

    #[test]
    fn plan_slab_auto_accumulation_prefers_privatized_when_atomic_bound() {
        // Dense, deposit-heavy slab on the M2070: the CAS-loop atomic term
        // dominates the atomic candidate, so privatized must win — the
        // regime PR 5 measured at ~0.37×.
        let props = DeviceProps::tesla_m2070();
        let m = model_with_density(1.0);
        let d = plan_slab(
            &props,
            &m,
            Layout::Flat1d,
            false,
            CompactionMode::Off,
            AccumulationMode::Auto,
        );
        assert!(matches!(d.accum, AccumPlan::Privatized { .. }), "{d:?}");
    }

    #[test]
    fn plan_slab_auto_accumulation_falls_back_when_tile_does_not_fit() {
        let props = DeviceProps::tiny(64 * 1024);
        // 8 KiB shared / 8 B per bin = 1024 bins max; 2000 cannot fit.
        let mut m = model_with_density(0.5);
        m.n_bins = 2000;
        let d = plan_slab(
            &props,
            &m,
            Layout::Flat1d,
            false,
            CompactionMode::Off,
            AccumulationMode::Auto,
        );
        assert!(
            matches!(d.accum, AccumPlan::Atomic { fallback: true }),
            "{d:?}"
        );
    }

    #[test]
    fn probe_rates_are_sane_on_a_synthetic_stack() {
        let (geom, slab) = test_scene();
        let cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        let mapper = geom.mapper().unwrap();
        let n_images = geom.wire.n_steps;
        let (rows, n_cols) = (geom.detector.n_rows, geom.detector.n_cols);
        let probe = SlabProbe::sample(&slab, &geom, &mapper, &cfg, n_images, 0, rows, n_cols, None);
        assert!(probe.sampled_pixels > 0);
        assert_eq!(probe.evals, probe.sampled_pixels * (n_images as u64 - 1));
        let r = probe.rates();
        assert!((0.0..=1.0).contains(&r.frac_active));
        assert!(r.deposits_per_active >= 0.0);
        // In-kernel mode triangulates, table mode reads: the in-kernel
        // FLOP tail must dominate whenever anything was active.
        if probe.active > 0 {
            assert!(r.extra_flops_per_active_inkernel > r.extra_flops_per_active_table);
        }
    }

    #[test]
    fn plan_run_returns_a_feasible_scored_plan() {
        let (geom, images) = test_scene();
        let cfg = ReconstructionConfig::new(-1200.0, 1200.0, 120);
        let mut source = InMemorySlabSource::new(
            images,
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        )
        .unwrap();
        let props = DeviceProps::tesla_m2070();
        let host = HostProps::xeon_e5630();
        let plan = plan_run(
            &props,
            &host,
            &mut source,
            &geom,
            &cfg,
            TableWarmth::default(),
        )
        .unwrap();
        assert!(plan.predicted_s > 0.0);
        // 2 layouts × 2 triangulations × 3 depths, ≥ 1 row variant each.
        assert!(plan.candidates.len() >= 12, "{}", plan.candidates.len());
        assert!(plan.rows_per_slab >= 1);
        let min = plan
            .candidates
            .iter()
            .map(|c| c.predicted_s)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(plan.predicted_s, min);
        assert!(plan
            .candidates
            .iter()
            .any(|c| c.label == plan.label && c.predicted_s == plan.predicted_s));
        // Warm table cache can only help candidates, never hurt them.
        let mut source2 = source.clone();
        let warm = plan_run(
            &props,
            &host,
            &mut source2,
            &geom,
            &cfg,
            TableWarmth {
                host_warm: true,
                device_warm: true,
                resident_budget: u64::MAX,
            },
        )
        .unwrap();
        assert!(warm.predicted_s <= plan.predicted_s + 1e-12);
    }
}
