//! Input data: in-memory image stacks and streaming slab sources.

use crate::error::CoreError;
use crate::Result;

/// A borrowed view of a complete wire-scan image stack.
///
/// Layout is `images[z][row][col]` flattened row-major — the "1-D array"
/// data structure the paper settles on (its Fig 4 experiment).
#[derive(Debug, Clone, Copy)]
pub struct ScanView<'a> {
    /// Flattened intensities, `n_images · n_rows · n_cols` long.
    pub images: &'a [f64],
    /// Number of wire-scan steps (= images).
    pub n_images: usize,
    /// Detector rows.
    pub n_rows: usize,
    /// Detector columns.
    pub n_cols: usize,
}

impl<'a> ScanView<'a> {
    /// Build and validate a view.
    pub fn new(
        images: &'a [f64],
        n_images: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<ScanView<'a>> {
        let expected = n_images
            .checked_mul(n_rows)
            .and_then(|v| v.checked_mul(n_cols))
            .ok_or_else(|| CoreError::ShapeMismatch("stack size overflows usize".into()))?;
        if images.len() != expected {
            return Err(CoreError::ShapeMismatch(format!(
                "stack of {} values does not match {n_images}×{n_rows}×{n_cols}",
                images.len()
            )));
        }
        if n_images < 2 {
            return Err(CoreError::ShapeMismatch(
                "a wire scan needs at least two images to form one differential".into(),
            ));
        }
        if n_rows == 0 || n_cols == 0 {
            return Err(CoreError::ShapeMismatch("empty detector".into()));
        }
        Ok(ScanView {
            images,
            n_images,
            n_rows,
            n_cols,
        })
    }

    /// Intensity at `(image, row, col)`.
    #[inline]
    pub fn at(&self, z: usize, r: usize, c: usize) -> f64 {
        self.images[(z * self.n_rows + r) * self.n_cols + c]
    }

    /// Pixels per image.
    #[inline]
    pub fn pixels_per_image(&self) -> usize {
        self.n_rows * self.n_cols
    }

    /// Total stack size in elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Never true for a validated view.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// A source of row slabs: `read_slab(row0, n)` returns the sub-stack
/// covering rows `row0 .. row0 + n` of **every** image, flattened as
/// `slab[z][row - row0][col]`.
///
/// This is the access pattern of the paper's Fig 2: the host never needs the
/// full stack in memory; the GPU engine pulls a few rows at a time, and the
/// mh5-backed implementation in `laue-pipeline` maps it straight onto a
/// chunked hyperslab read.
pub trait SlabSource {
    /// Number of images in the stack.
    fn n_images(&self) -> usize;
    /// Detector rows.
    fn n_rows(&self) -> usize;
    /// Detector columns.
    fn n_cols(&self) -> usize;
    /// Read rows `row0 .. row0 + n_rows_slab` of every image.
    fn read_slab(&mut self, row0: usize, n_rows_slab: usize) -> Result<Vec<f64>>;
}

/// [`SlabSource`] over an in-memory stack.
#[derive(Debug, Clone)]
pub struct InMemorySlabSource {
    images: Vec<f64>,
    n_images: usize,
    n_rows: usize,
    n_cols: usize,
}

impl InMemorySlabSource {
    /// Wrap an owned stack.
    pub fn new(
        images: Vec<f64>,
        n_images: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<InMemorySlabSource> {
        ScanView::new(&images, n_images, n_rows, n_cols)?;
        Ok(InMemorySlabSource {
            images,
            n_images,
            n_rows,
            n_cols,
        })
    }

    /// View of the full stack.
    pub fn view(&self) -> ScanView<'_> {
        ScanView {
            images: &self.images,
            n_images: self.n_images,
            n_rows: self.n_rows,
            n_cols: self.n_cols,
        }
    }
}

impl SlabSource for InMemorySlabSource {
    fn n_images(&self) -> usize {
        self.n_images
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn read_slab(&mut self, row0: usize, n_rows_slab: usize) -> Result<Vec<f64>> {
        if row0 + n_rows_slab > self.n_rows {
            return Err(CoreError::Source(format!(
                "slab rows {row0}..{} outside detector of {} rows",
                row0 + n_rows_slab,
                self.n_rows
            )));
        }
        let mut out = Vec::with_capacity(self.n_images * n_rows_slab * self.n_cols);
        for z in 0..self.n_images {
            let start = (z * self.n_rows + row0) * self.n_cols;
            out.extend_from_slice(&self.images[start..start + n_rows_slab * self.n_cols]);
        }
        Ok(out)
    }
}

/// A region-of-interest adapter over any [`SlabSource`]: exposes only rows
/// `r0..r0+n_rows` and columns `c0..c0+n_cols` of the underlying stack.
///
/// Pair it with [`laue_geometry::DetectorGeometry::crop`] (via
/// [`crate::ScanGeometry`]) and the reconstruction of the ROI is bit-exact
/// with the corresponding sub-block of a full reconstruction — a beamline
/// only pays for the pixels it cares about.
#[derive(Debug)]
pub struct RoiSlabSource<S> {
    inner: S,
    r0: usize,
    c0: usize,
    n_rows: usize,
    n_cols: usize,
}

impl<S: SlabSource> RoiSlabSource<S> {
    /// Restrict `inner` to the given rectangle.
    pub fn new(
        inner: S,
        r0: usize,
        c0: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<RoiSlabSource<S>> {
        if n_rows == 0 || n_cols == 0 {
            return Err(CoreError::ShapeMismatch("empty region of interest".into()));
        }
        if r0 + n_rows > inner.n_rows() || c0 + n_cols > inner.n_cols() {
            return Err(CoreError::ShapeMismatch(format!(
                "ROI ({r0}+{n_rows}, {c0}+{n_cols}) outside {}×{} detector",
                inner.n_rows(),
                inner.n_cols()
            )));
        }
        Ok(RoiSlabSource {
            inner,
            r0,
            c0,
            n_rows,
            n_cols,
        })
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SlabSource> SlabSource for RoiSlabSource<S> {
    fn n_images(&self) -> usize {
        self.inner.n_images()
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn read_slab(&mut self, row0: usize, n_rows_slab: usize) -> Result<Vec<f64>> {
        if row0 + n_rows_slab > self.n_rows {
            return Err(CoreError::Source(format!(
                "ROI slab rows {row0}..{} outside {} ROI rows",
                row0 + n_rows_slab,
                self.n_rows
            )));
        }
        let full = self.inner.read_slab(self.r0 + row0, n_rows_slab)?;
        let inner_cols = self.inner.n_cols();
        let p = self.inner.n_images();
        let mut out = Vec::with_capacity(p * n_rows_slab * self.n_cols);
        for z in 0..p {
            for r in 0..n_rows_slab {
                let start = (z * n_rows_slab + r) * inner_cols + self.c0;
                out.extend_from_slice(&full[start..start + self.n_cols]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> (Vec<f64>, usize, usize, usize) {
        let (p, m, n) = (3usize, 4usize, 5usize);
        let data: Vec<f64> = (0..p * m * n).map(|i| i as f64).collect();
        (data, p, m, n)
    }

    #[test]
    fn view_validation() {
        let (data, p, m, n) = stack();
        assert!(ScanView::new(&data, p, m, n).is_ok());
        assert!(ScanView::new(&data[..10], p, m, n).is_err());
        assert!(
            ScanView::new(&data[..m * n], 1, m, n).is_err(),
            "one image is not a scan"
        );
        assert!(ScanView::new(&[], 2, 0, 5).is_err());
    }

    #[test]
    fn indexing_is_row_major() {
        let (data, p, m, n) = stack();
        let v = ScanView::new(&data, p, m, n).unwrap();
        assert_eq!(v.at(0, 0, 0), 0.0);
        assert_eq!(v.at(0, 0, 4), 4.0);
        assert_eq!(v.at(0, 1, 0), 5.0);
        assert_eq!(v.at(1, 0, 0), 20.0);
        assert_eq!(v.at(2, 3, 4), (2 * 20 + 3 * 5 + 4) as f64);
        assert_eq!(v.pixels_per_image(), 20);
        assert_eq!(v.len(), 60);
        assert!(!v.is_empty());
    }

    #[test]
    fn slab_source_extracts_rows_across_images() {
        let (data, p, m, n) = stack();
        let mut src = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let slab = src.read_slab(1, 2).unwrap();
        assert_eq!(slab.len(), p * 2 * n);
        // slab[z][r][c] == stack[z][r + 1][c]
        let v = ScanView::new(&data, p, m, n).unwrap();
        for z in 0..p {
            for r in 0..2 {
                for c in 0..n {
                    assert_eq!(slab[(z * 2 + r) * n + c], v.at(z, r + 1, c));
                }
            }
        }
    }

    #[test]
    fn roi_source_selects_the_rectangle() {
        let (data, p, m, n) = stack();
        let inner = InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        let mut roi = RoiSlabSource::new(inner, 1, 2, 2, 3).unwrap();
        assert_eq!(roi.n_rows(), 2);
        assert_eq!(roi.n_cols(), 3);
        assert_eq!(roi.n_images(), p);
        let slab = roi.read_slab(0, 2).unwrap();
        let v = ScanView::new(&data, p, m, n).unwrap();
        for z in 0..p {
            for r in 0..2 {
                for c in 0..3 {
                    assert_eq!(slab[(z * 2 + r) * 3 + c], v.at(z, r + 1, c + 2));
                }
            }
        }
        // Partial ROI slab.
        let slab = roi.read_slab(1, 1).unwrap();
        assert_eq!(slab[0], v.at(0, 2, 2));
        assert!(roi.read_slab(1, 2).is_err());
    }

    #[test]
    fn roi_bounds_validated() {
        let (data, p, m, n) = stack();
        let mk = || InMemorySlabSource::new(data.clone(), p, m, n).unwrap();
        assert!(
            RoiSlabSource::new(mk(), 0, 0, m, n).is_ok(),
            "full-frame ROI"
        );
        assert!(RoiSlabSource::new(mk(), 3, 0, 2, n).is_err());
        assert!(RoiSlabSource::new(mk(), 0, 4, 1, 2).is_err());
        assert!(RoiSlabSource::new(mk(), 0, 0, 0, 1).is_err());
    }

    #[test]
    fn slab_bounds_checked() {
        let (data, p, m, n) = stack();
        let mut src = InMemorySlabSource::new(data, p, m, n).unwrap();
        assert!(src.read_slab(3, 2).is_err());
        assert!(src.read_slab(0, 5).is_err());
        assert!(src.read_slab(0, 4).is_ok());
    }
}
