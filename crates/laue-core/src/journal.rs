//! Append-only, CRC-framed run journal: slab-granular checkpoint/resume.
//!
//! The paper's row-slab chunking (Fig 2) makes the slab the natural unit of
//! recovery: each slab's depth-band partial sums are complete the moment its
//! D2H download lands, and no later slab ever touches those rows again. The
//! journal exploits that by recording every committed slab — row range,
//! per-slab [`ReconStats`], and the slab's rows of the output image — in an
//! append-only file framed with [`mh5::crc`] CRC-32 checksums:
//!
//! ```text
//! header:  magic "LAUEJRN1" | version u32 | key hash u64 |
//!          n_bins u64 | n_rows u64 | n_cols u64 |
//!          desc_len u32 | description bytes | crc32 of all of the above
//! record:  payload_len u32 | crc32(payload) | payload
//! commit:  payload = kind 0 u64 | row0 u64 | rows u64 |
//!                    10 × ReconStats u64 |
//!                    rows·n_bins·n_cols × f64 (slab rows, bin-major)
//! poison:  payload = kind 1 u64 | row0 u64 | rows u64
//! ```
//!
//! A *poison* record quarantines a row band: an integrity check condemned
//! the slab's data, so replay un-covers (and zeroes) those rows, dropping
//! any earlier commit of them. The scrub writer appends the poison
//! *before* re-executing, so a crash between condemnation and the clean
//! re-commit can never resurrect condemned data on resume.
//!
//! Every field is little-endian. The file is keyed by a content hash of
//! (scan fingerprint, dimensions, configuration, engine, slab plan): a
//! journal only resumes the *exact* run that wrote it — any drift in inputs
//! or plan silently starts fresh instead of merging incompatible partial
//! sums. A torn tail (the process died mid-append) is detected by the
//! record CRC or a short read, truncated away, and replay continues from
//! the last intact record. Because slab downloads *assign* their rows
//! rather than accumulate, replaying records in append order reproduces the
//! committed prefix of the image bit-for-bit, and chunking invariance (the
//! engines produce identical images for any `rows_per_slab`) lets the
//! resumed run cover the remaining rows with whatever slab plan it likes.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};

use mh5::crc::{crc32, Crc32};

use crate::output::DepthImage;
use crate::stats::ReconStats;
use crate::{CoreError, Result};

const MAGIC: [u8; 8] = *b"LAUEJRN1";
// v2 widened the per-slab stats block from 6 to 8 words (culled_rows,
// compacted_pairs); v3 widened it to 10 (privatized_pairs,
// accum_fallback_pairs); v4 folds the resolved execution plan into the
// journal key, so a plan flip forces a clean restart; v5 prefixes every
// payload with a record-kind word (commit/poison) and folds the integrity
// mode into the key; v6 folds the cluster topology (node layout, reduction
// routing, overlap) into the key, so resuming under a different cluster
// shape restarts clean. An older journal fails the version check and the
// run starts fresh — exactly the safe behaviour for a format change.
const VERSION: u32 = 6;

/// Payload kind word: a committed slab.
const KIND_COMMIT: u64 = 0;
/// Payload kind word: a poisoned (quarantined) row band.
const KIND_POISON: u64 = 1;

fn io_err(what: &str, e: std::io::Error) -> CoreError {
    CoreError::Journal(format!("{what}: {e}"))
}

/// Identity of one reconstruction run for journal-keying purposes.
///
/// The `description` spells out every input that must match for a resume to
/// be sound (scan fingerprint, dimensions, config, engine, slab plan); the
/// `hash` is a 64-bit digest of it used in the journal filename and header.
/// On open both are compared — a hash collision cannot cross-wire runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalKey {
    /// 64-bit digest of `description`.
    pub hash: u64,
    /// Human-readable run identity the hash summarises.
    pub description: String,
}

impl JournalKey {
    /// Key a run by its full identity string.
    pub fn new(description: String) -> JournalKey {
        let lo = crc32(description.as_bytes()) as u64;
        let mut salted = Crc32::new();
        salted.update(b"laue-journal-salt");
        salted.update(description.as_bytes());
        let hi = salted.finish() as u64;
        JournalKey {
            hash: (hi << 32) | lo,
            description,
        }
    }
}

/// One slab's worth of committed output, as read back from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedSlab {
    /// First detector row of the slab.
    pub row0: usize,
    /// Number of rows.
    pub rows: usize,
    /// The slab's share of the pair counters.
    pub stats: ReconStats,
    /// `rows · n_bins · n_cols` intensities, laid out
    /// `[(bin * rows + r) * n_cols + c]` (see [`DepthImage::assign_rows`]).
    pub data: Vec<f64>,
}

/// One replayed journal record, in append order.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A durably committed slab.
    Commit(CommittedSlab),
    /// A quarantined row band: an integrity check condemned this slab, so
    /// any earlier commit of these rows must not be trusted on replay.
    Poison {
        /// First detector row of the condemned band.
        row0: usize,
        /// Number of rows.
        rows: usize,
    },
}

/// An open run journal positioned for appends.
#[derive(Debug)]
pub struct RunJournal {
    file: File,
    path: PathBuf,
    dims: (usize, usize, usize),
}

impl RunJournal {
    /// Open (or create) the journal for `key` under `dir` and return it
    /// together with the records already written by a previous run, in
    /// append order.
    ///
    /// `dims` is `(n_bins, n_rows, n_cols)` of the output image. With
    /// `resume == false`, or when the existing file's key/dimensions do not
    /// match, the journal starts fresh (the stale file is truncated). A
    /// torn trailing record is silently dropped.
    pub fn open(
        dir: &Path,
        key: &JournalKey,
        dims: (usize, usize, usize),
        resume: bool,
    ) -> Result<(RunJournal, Vec<JournalRecord>)> {
        fs::create_dir_all(dir).map_err(|e| io_err("create journal dir", e))?;
        let path = dir.join(format!("{:016x}.journal", key.hash));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open journal", e))?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read journal", e))?;

        let (slabs, valid_len) = if resume {
            parse(&bytes, key, dims)
        } else {
            (Vec::new(), 0)
        };

        if valid_len == 0 {
            // Fresh start: rewrite the header from scratch.
            file.set_len(0).map_err(|e| io_err("truncate journal", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek journal", e))?;
            let header = encode_header(key, dims);
            file.write_all(&header)
                .map_err(|e| io_err("write journal header", e))?;
            file.sync_data().map_err(|e| io_err("sync journal", e))?;
        } else {
            // Drop any torn tail, keep the intact prefix.
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate journal", e))?;
            file.seek(SeekFrom::End(0))
                .map_err(|e| io_err("seek journal", e))?;
        }

        Ok((RunJournal { file, path, dims }, slabs))
    }

    /// Where this journal lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one committed slab. The record is written with a single
    /// `write_all` and flushed with `sync_data`, so after this returns the
    /// slab survives a process kill; a kill *during* the write leaves a
    /// torn tail the next open truncates away.
    pub fn append(
        &mut self,
        row0: usize,
        rows: usize,
        stats: &ReconStats,
        data: &[f64],
    ) -> Result<()> {
        let (n_bins, _, n_cols) = self.dims;
        debug_assert_eq!(data.len(), n_bins * rows * n_cols);
        let mut payload = Vec::with_capacity(8 * (3 + STATS_WORDS) + 8 * data.len());
        payload.extend_from_slice(&KIND_COMMIT.to_le_bytes());
        payload.extend_from_slice(&(row0 as u64).to_le_bytes());
        payload.extend_from_slice(&(rows as u64).to_le_bytes());
        for v in stats_words(stats) {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.write_record(&payload)
    }

    /// Append a poison record quarantining `rows` detector rows from
    /// `row0`: an integrity check condemned the slab, and replay must not
    /// trust any earlier commit of those rows. Durable before the method
    /// returns, like [`append`](Self::append).
    pub fn append_poison(&mut self, row0: usize, rows: usize) -> Result<()> {
        let mut payload = Vec::with_capacity(8 * 3);
        payload.extend_from_slice(&KIND_POISON.to_le_bytes());
        payload.extend_from_slice(&(row0 as u64).to_le_bytes());
        payload.extend_from_slice(&(rows as u64).to_le_bytes());
        self.write_record(&payload)
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<()> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.file
            .write_all(&record)
            .map_err(|e| io_err("append journal record", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync journal", e))?;
        Ok(())
    }

    /// Delete the journal — called once the run completed and its output is
    /// safely on disk, so a later `--resume` does not replay a finished run.
    pub fn remove(self) -> Result<()> {
        let path = self.path.clone();
        drop(self.file);
        fs::remove_file(&path).map_err(|e| io_err("remove journal", e))
    }
}

const STATS_WORDS: usize = 10;

fn stats_words(s: &ReconStats) -> [u64; STATS_WORDS] {
    [
        s.pairs_total,
        s.pairs_below_cutoff,
        s.pairs_invalid_geometry,
        s.pairs_out_of_range,
        s.pairs_deposited,
        s.deposits,
        s.culled_rows,
        s.compacted_pairs,
        s.privatized_pairs,
        s.accum_fallback_pairs,
    ]
}

fn encode_header(key: &JournalKey, dims: (usize, usize, usize)) -> Vec<u8> {
    let desc = key.description.as_bytes();
    let mut h = Vec::with_capacity(8 + 4 + 8 * 4 + 4 + desc.len() + 4);
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&key.hash.to_le_bytes());
    h.extend_from_slice(&(dims.0 as u64).to_le_bytes());
    h.extend_from_slice(&(dims.1 as u64).to_le_bytes());
    h.extend_from_slice(&(dims.2 as u64).to_le_bytes());
    h.extend_from_slice(&(desc.len() as u32).to_le_bytes());
    h.extend_from_slice(desc);
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

/// Byte-slice cursor used by the replay parser.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Parse a journal byte image against the expected key and dimensions.
/// Returns the intact records in append order and the byte length of the
/// valid prefix (`0` means "unusable — start fresh").
fn parse(
    bytes: &[u8],
    key: &JournalKey,
    dims: (usize, usize, usize),
) -> (Vec<JournalRecord>, usize) {
    let mut c = Cursor { bytes, pos: 0 };
    let fresh = (Vec::new(), 0);

    // Header.
    let Some(magic) = c.take(8) else { return fresh };
    if magic != MAGIC {
        return fresh;
    }
    let Some(version) = c.u32() else { return fresh };
    if version != VERSION {
        return fresh;
    }
    let Some(hash) = c.u64() else { return fresh };
    let (Some(b), Some(r), Some(cols)) = (c.u64(), c.u64(), c.u64()) else {
        return fresh;
    };
    let Some(desc_len) = c.u32() else {
        return fresh;
    };
    let Some(desc) = c.take(desc_len as usize) else {
        return fresh;
    };
    let header_crc = crc32(&bytes[..c.pos]);
    let Some(stored_crc) = c.u32() else {
        return fresh;
    };
    if stored_crc != header_crc
        || hash != key.hash
        || desc != key.description.as_bytes()
        || (b as usize, r as usize, cols as usize) != dims
    {
        return fresh;
    }

    // Records, until EOF or a torn/corrupt tail.
    let (n_bins, n_rows, n_cols) = dims;
    let mut records = Vec::new();
    let mut valid = c.pos;
    while let Some(len) = c.u32() {
        let Some(stored) = c.u32() else { break };
        let Some(payload) = c.take(len as usize) else {
            break;
        };
        if crc32(payload) != stored {
            break;
        }
        let mut p = Cursor {
            bytes: payload,
            pos: 0,
        };
        let (Some(kind), Some(row0), Some(rows)) = (p.u64(), p.u64(), p.u64()) else {
            break;
        };
        let (row0, rows) = (row0 as usize, rows as usize);
        if rows == 0 || row0 + rows > n_rows {
            break;
        }
        match kind {
            KIND_POISON => {
                if payload.len() != 8 * 3 {
                    break;
                }
                records.push(JournalRecord::Poison { row0, rows });
            }
            KIND_COMMIT => {
                let mut words = [0u64; STATS_WORDS];
                let mut ok = true;
                for w in &mut words {
                    match p.u64() {
                        Some(v) => *w = v,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let n_values = n_bins * rows * n_cols;
                if !ok || payload.len() != 8 * (3 + STATS_WORDS) + 8 * n_values {
                    break;
                }
                let data: Vec<f64> = payload[8 * (3 + STATS_WORDS)..]
                    .chunks_exact(8)
                    .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
                    .collect();
                records.push(JournalRecord::Commit(CommittedSlab {
                    row0,
                    rows,
                    stats: ReconStats {
                        pairs_total: words[0],
                        pairs_below_cutoff: words[1],
                        pairs_invalid_geometry: words[2],
                        pairs_out_of_range: words[3],
                        pairs_deposited: words[4],
                        deposits: words[5],
                        culled_rows: words[6],
                        compacted_pairs: words[7],
                        privatized_pairs: words[8],
                        accum_fallback_pairs: words[9],
                    },
                    data,
                }));
            }
            _ => break,
        }
        valid = c.pos;
    }
    (records, valid)
}

// ---------------------------------------------------------------------------
// Slab progress
// ---------------------------------------------------------------------------

/// In-memory view of a partially reconstructed image: the merged output so
/// far, the merged stats, and which rows are already committed. Built fresh
/// for a new run or by [`SlabProgress::replay`] from journal records; the
/// engines then fill in only the [`SlabProgress::uncovered`] row ranges.
#[derive(Debug)]
pub struct SlabProgress {
    /// The merged output image (committed rows populated, rest zero).
    pub image: DepthImage,
    /// Pair counters merged over all committed slabs.
    pub stats: ReconStats,
    committed: Vec<(usize, usize)>,
    covered: Vec<bool>,
}

impl SlabProgress {
    /// Progress for a brand-new run: nothing committed.
    pub fn new(n_bins: usize, n_rows: usize, n_cols: usize) -> SlabProgress {
        SlabProgress {
            image: DepthImage::zeroed(n_bins, n_rows, n_cols),
            stats: ReconStats::default(),
            committed: Vec::new(),
            covered: vec![false; n_rows],
        }
    }

    /// Rebuild progress from journal records, applying them in append
    /// order (later records overwrite earlier rows, matching the download
    /// assignment semantics). A poison record drops every earlier commit
    /// that overlaps its band — those rows become uncovered again and are
    /// recomputed by the resuming run, so condemned data never survives a
    /// crash between condemnation and the clean re-commit.
    pub fn replay(
        n_bins: usize,
        n_rows: usize,
        n_cols: usize,
        records: &[JournalRecord],
    ) -> Result<SlabProgress> {
        let mut live: Vec<&CommittedSlab> = Vec::new();
        for rec in records {
            match rec {
                JournalRecord::Commit(s) => live.push(s),
                JournalRecord::Poison { row0, rows } => {
                    live.retain(|s| s.row0 + s.rows <= *row0 || row0 + rows <= s.row0);
                }
            }
        }
        let mut p = SlabProgress::new(n_bins, n_rows, n_cols);
        for s in live {
            p.image.assign_rows(s.row0, s.rows, &s.data)?;
            p.stats.merge(&s.stats);
            p.committed.push((s.row0, s.rows));
            for r in s.row0..s.row0 + s.rows {
                p.covered[r] = true;
            }
        }
        Ok(p)
    }

    /// How many slabs have been committed (including replayed ones).
    pub fn committed_slabs(&self) -> usize {
        self.committed.len()
    }

    /// How many detector rows are committed.
    pub fn committed_rows(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Is every row of `band` committed?
    pub fn is_complete(&self, band: Range<usize>) -> bool {
        self.covered[band].iter().all(|&c| c)
    }

    /// Maximal runs of uncommitted rows within `band`, in row order —
    /// exactly the work a resumed or failed-over run still owes.
    pub fn uncovered(&self, band: Range<usize>) -> Vec<Range<usize>> {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for r in band.clone() {
            match (self.covered[r], start) {
                (false, None) => start = Some(r),
                (true, Some(s)) => {
                    runs.push(s..r);
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push(s..band.end);
        }
        runs
    }

    /// Split into the output image and a tracker over the bookkeeping, so a
    /// slab sink can record commits while the engine holds `&mut` to the
    /// image it is downloading into.
    pub fn split_mut(&mut self) -> (&mut DepthImage, ProgressTracker<'_>) {
        (
            &mut self.image,
            ProgressTracker {
                stats: &mut self.stats,
                committed: &mut self.committed,
                covered: &mut self.covered,
            },
        )
    }
}

/// Mutable handle over [`SlabProgress`] bookkeeping (everything but the
/// image); see [`SlabProgress::split_mut`].
#[derive(Debug)]
pub struct ProgressTracker<'a> {
    stats: &'a mut ReconStats,
    committed: &'a mut Vec<(usize, usize)>,
    covered: &'a mut Vec<bool>,
}

impl ProgressTracker<'_> {
    /// Record one committed slab.
    pub fn record(&mut self, row0: usize, rows: usize, stats: &ReconStats) {
        self.stats.merge(stats);
        self.committed.push((row0, rows));
        for r in row0..row0 + rows {
            self.covered[r] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laue-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn slab(row0: usize, rows: usize, n_bins: usize, n_cols: usize, fill: f64) -> CommittedSlab {
        CommittedSlab {
            row0,
            rows,
            stats: ReconStats {
                pairs_total: 10,
                pairs_deposited: 4,
                deposits: 8,
                ..ReconStats::default()
            },
            data: vec![fill; n_bins * rows * n_cols],
        }
    }

    #[test]
    fn append_then_resume_replays_bitwise() {
        let dir = tmp_dir("roundtrip");
        let key = JournalKey::new("scan=1 cfg=x engine=gpu".into());
        let dims = (2, 6, 3);
        let (mut j, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert!(replayed.is_empty());
        let s0 = slab(0, 2, 2, 3, 1.5);
        let s1 = slab(2, 3, 2, 3, -0.25);
        j.append(s0.row0, s0.rows, &s0.stats, &s0.data).unwrap();
        j.append(s1.row0, s1.rows, &s1.stats, &s1.data).unwrap();
        drop(j);

        let (j2, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert_eq!(
            replayed,
            vec![
                JournalRecord::Commit(s0.clone()),
                JournalRecord::Commit(s1.clone())
            ]
        );
        let p = SlabProgress::replay(2, 6, 3, &replayed).unwrap();
        assert_eq!(p.committed_slabs(), 2);
        assert_eq!(p.committed_rows(), 5);
        assert_eq!(p.uncovered(0..6), vec![5..6]);
        assert!(!p.is_complete(0..6));
        assert!(p.is_complete(0..5));
        assert_eq!(p.image.at(0, 0, 0), 1.5);
        assert_eq!(p.image.at(1, 4, 2), -0.25);
        assert_eq!(p.image.at(0, 5, 0), 0.0);
        assert_eq!(p.stats.pairs_total, 20);
        j2.remove().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let key = JournalKey::new("torn".into());
        let dims = (1, 4, 2);
        let (mut j, _) = RunJournal::open(&dir, &key, dims, true).unwrap();
        let s0 = slab(0, 2, 1, 2, 3.0);
        j.append(s0.row0, s0.rows, &s0.stats, &s0.data).unwrap();
        let path = j.path().to_path_buf();
        drop(j);

        // Simulate a kill mid-append: half a record of garbage at the tail.
        let mut bytes = fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[0x77; 13]);
        fs::write(&path, &bytes).unwrap();

        let (j2, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert_eq!(
            replayed,
            vec![JournalRecord::Commit(s0)],
            "intact prefix survives"
        );
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            intact as u64,
            "torn tail truncated"
        );
        drop(j2);

        // A corrupt record body (bad CRC) also stops replay at the tear.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_j3, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert!(replayed.is_empty(), "corrupt record dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_or_dims_mismatch_starts_fresh() {
        let dir = tmp_dir("key");
        let key = JournalKey::new("run-a".into());
        let dims = (1, 4, 2);
        let (mut j, _) = RunJournal::open(&dir, &key, dims, true).unwrap();
        let s0 = slab(0, 4, 1, 2, 1.0);
        j.append(s0.row0, s0.rows, &s0.stats, &s0.data).unwrap();
        drop(j);

        // Same key, resume disabled → fresh.
        let (_, replayed) = RunJournal::open(&dir, &key, dims, false).unwrap();
        assert!(replayed.is_empty());

        // Different description hashes to a different file entirely.
        let other = JournalKey::new("run-b".into());
        assert_ne!(other.hash, key.hash);
        let (_, replayed) = RunJournal::open(&dir, &other, dims, true).unwrap();
        assert!(replayed.is_empty());

        // Same key, different dimensions → fresh (stale file truncated).
        let (mut j, _) = RunJournal::open(&dir, &key, dims, true).unwrap();
        j.append(0, 4, &ReconStats::default(), &[0.0; 8]).unwrap();
        drop(j);
        let (_, replayed) = RunJournal::open(&dir, &key, (1, 5, 2), true).unwrap();
        assert!(replayed.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_quarantines_earlier_commits_on_replay() {
        let dir = tmp_dir("poison");
        let key = JournalKey::new("poison".into());
        let dims = (1, 6, 2);
        let (mut j, _) = RunJournal::open(&dir, &key, dims, true).unwrap();
        let s0 = slab(0, 2, 1, 2, 1.0);
        let bad = slab(2, 2, 1, 2, 7.0); // the commit a later check condemns
        let good = slab(2, 2, 1, 2, 2.0);
        j.append(s0.row0, s0.rows, &s0.stats, &s0.data).unwrap();
        j.append(bad.row0, bad.rows, &bad.stats, &bad.data).unwrap();
        j.append_poison(2, 2).unwrap();
        drop(j);

        // Poison with no re-commit: the band is uncovered and zeroed.
        let (mut j, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], JournalRecord::Poison { row0: 2, rows: 2 });
        let p = SlabProgress::replay(1, 6, 2, &replayed).unwrap();
        assert_eq!(p.committed_slabs(), 1, "condemned commit dropped");
        assert_eq!(p.uncovered(0..6), vec![2..6]);
        assert_eq!(p.image.at(0, 2, 0), 0.0, "condemned rows zeroed");
        assert_eq!(p.stats.pairs_total, 10, "condemned stats not merged");

        // Poison followed by a clean re-commit covers the band again.
        j.append(good.row0, good.rows, &good.stats, &good.data)
            .unwrap();
        drop(j);
        let (_j, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        let p = SlabProgress::replay(1, 6, 2, &replayed).unwrap();
        assert_eq!(p.committed_slabs(), 2);
        assert_eq!(p.uncovered(0..6), vec![4..6]);
        assert_eq!(p.image.at(0, 2, 0), 2.0, "re-commit wins");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_truncates_to_last_valid_record() {
        let dir = tmp_dir("midflip");
        let key = JournalKey::new("midflip".into());
        let dims = (1, 4, 2);
        let (mut j, _) = RunJournal::open(&dir, &key, dims, true).unwrap();
        let path = j.path().to_path_buf();
        let header_len = fs::metadata(&path).unwrap().len() as usize;
        let slabs: Vec<CommittedSlab> = (0..3).map(|r| slab(r, 1, 1, 2, r as f64)).collect();
        for s in &slabs {
            j.append(s.row0, s.rows, &s.stats, &s.data).unwrap();
        }
        drop(j);

        // Flip one byte in the middle of the *second* record's CRC frame.
        let mut bytes = fs::read(&path).unwrap();
        let record_len = (bytes.len() - header_len) / 3;
        let target = header_len + record_len + record_len / 2;
        bytes[target] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        // Resume detects the corruption, keeps only the prefix before it,
        // and truncates the file to the last valid record — the third
        // (intact) record after the tear must not survive either, because
        // replay past a corrupt frame cannot be trusted.
        let (j2, replayed) = RunJournal::open(&dir, &key, dims, true).unwrap();
        assert_eq!(replayed, vec![JournalRecord::Commit(slabs[0].clone())]);
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            header_len + record_len,
            "truncated to the last valid record"
        );
        let p = SlabProgress::replay(1, 4, 2, &replayed).unwrap();
        assert_eq!(p.uncovered(0..4), vec![1..4], "only rows 1..4 owed");
        drop(j2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracker_records_through_split() {
        let mut p = SlabProgress::new(1, 4, 2);
        {
            let (image, mut tracker) = p.split_mut();
            image.assign_rows(0, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            tracker.record(
                0,
                2,
                &ReconStats {
                    pairs_total: 7,
                    ..ReconStats::default()
                },
            );
        }
        assert_eq!(p.committed_rows(), 2);
        assert_eq!(p.stats.pairs_total, 7);
        assert_eq!(p.uncovered(0..4), vec![2..4]);
        assert_eq!(p.uncovered(1..3), vec![2..3]);
        assert_eq!(p.image.at(0, 0, 1), 2.0);
    }
}
