//! Scan planning: the instrument-side math a beamline scientist runs
//! *before* a wire scan — what depth range a scan covers, at what
//! resolution, and how far the two wire edges are apart (the unambiguous
//! depth window).
//!
//! These quantities also drive the synthetic-workload builders and explain
//! the reconstruction's accuracy limits, so they live next to the engines.

use laue_geometry::{DepthMapper, Vec3, WireEdge, WireGeometry};

use crate::config::ReconstructionConfig;
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::pair::FLOPS_PER_DEPTH;
use crate::Result;

/// Level-1 sparsity: per-(wire step, detector row) bounds on the edge
/// depth, used to skip whole `(pair, row)` strips whose wire-shadow band
/// provably misses the reconstruction window — before any intensity is
/// read.
///
/// For each step `z` and detector row `r` the table holds the min/max edge
/// depth over the row's columns (and an "unsafe" flag when any pixel's
/// triangulation failed or returned a non-finite depth). A pair `(z, z+1)`
/// on row `r` can only deposit inside `[min(lo_z, lo_z1), max(hi_z,
/// hi_z1)]`; when that envelope misses `[depth_start, depth_end)` the whole
/// strip is culled. The bound is conservative by construction — no
/// monotonicity assumption about the depth map is needed — so culling never
/// removes a pair the dense path would have deposited.
#[derive(Debug, Clone)]
pub struct ShadowCull {
    row0: usize,
    n_rows: usize,
    n_steps: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    unsafe_row: Vec<bool>,
    depth_start: f64,
    depth_end: f64,
    /// Host FLOPs spent building the table (one triangulation per
    /// (step, row, col)). Charged to whichever engine builds the cull.
    pub host_flops: u64,
}

impl ShadowCull {
    /// Build the cull table for detector rows `rows` of a scan.
    pub fn compute(
        geom: &ScanGeometry,
        mapper: &DepthMapper,
        cfg: &ReconstructionConfig,
        rows: std::ops::Range<usize>,
    ) -> ShadowCull {
        let n_steps = geom.wire.n_steps;
        let n_rows = rows.len();
        let n_cols = geom.detector.n_cols;
        let cells = n_steps * n_rows;
        let mut lo = vec![f64::INFINITY; cells];
        let mut hi = vec![f64::NEG_INFINITY; cells];
        let mut unsafe_row = vec![false; cells];
        for z in 0..n_steps {
            let wire = geom.wire.center_unchecked(z as f64);
            for (i, r) in rows.clone().enumerate() {
                let cell = z * n_rows + i;
                for c in 0..n_cols {
                    let pixel = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                    match mapper.depth(pixel, wire, cfg.wire_edge) {
                        Ok(d) if d.is_finite() => {
                            if d < lo[cell] {
                                lo[cell] = d;
                            }
                            if d > hi[cell] {
                                hi[cell] = d;
                            }
                        }
                        _ => unsafe_row[cell] = true,
                    }
                }
            }
        }
        ShadowCull {
            row0: rows.start,
            n_rows,
            n_steps,
            lo,
            hi,
            unsafe_row,
            depth_start: cfg.depth_start,
            depth_end: cfg.depth_end,
            host_flops: (n_steps * n_rows * n_cols) as u64 * FLOPS_PER_DEPTH,
        }
    }

    #[inline]
    fn cell(&self, z: usize, detector_row: usize) -> usize {
        debug_assert!(detector_row >= self.row0 && detector_row < self.row0 + self.n_rows);
        z * self.n_rows + (detector_row - self.row0)
    }

    /// Whether pair `(z, z+1)` on `detector_row` must be processed. `false`
    /// means every pixel of the row is provably OutOfRange for this pair.
    #[inline]
    pub fn pair_row_live(&self, z: usize, detector_row: usize) -> bool {
        debug_assert!(z + 1 < self.n_steps);
        let a = self.cell(z, detector_row);
        let b = self.cell(z + 1, detector_row);
        if self.unsafe_row[a] || self.unsafe_row[b] {
            // A failed triangulation means InvalidGeometry in the dense
            // path, not OutOfRange — never cull it away.
            return true;
        }
        let lo = self.lo[a].min(self.lo[b]);
        let hi = self.hi[a].max(self.hi[b]);
        // An empty row (no finite depth at all) keeps lo = +inf > hi:
        // also invalid territory, keep it live.
        if lo
            .partial_cmp(&hi)
            .is_none_or(|o| o == std::cmp::Ordering::Greater)
        {
            return true;
        }
        !(hi <= self.depth_start || lo >= self.depth_end)
    }

    /// The live (non-culled) pairs of one detector row, ascending.
    pub fn live_pairs(&self, detector_row: usize) -> Vec<usize> {
        (0..self.n_steps - 1)
            .filter(|&z| self.pair_row_live(z, detector_row))
            .collect()
    }

    /// Aggregate sparsity structure of a band of detector rows — the counts
    /// the execution planner needs to cost a slab without re-deriving the
    /// per-row live lists itself. `touched_sum` uses the same
    /// consecutive-run accounting as the prescan (a run of `k` consecutive
    /// live pairs reads `k + 1` images per pixel).
    pub fn band_profile(&self, band: std::ops::Range<usize>) -> BandProfile {
        let n_pairs = self.n_steps - 1;
        let mut profile = BandProfile::default();
        for row in band {
            let live = self.live_pairs(row);
            profile.culled_combos += (n_pairs - live.len()) as u64;
            if !live.is_empty() {
                profile.live_rows += 1;
            }
            profile.live_combos += live.len() as u64;
            let mut prev: Option<usize> = None;
            for &z in &live {
                profile.touched_sum += if prev == Some(z.wrapping_sub(1)) {
                    1
                } else {
                    2
                };
                prev = Some(z);
            }
        }
        profile
    }
}

/// What [`ShadowCull::band_profile`] measured over a band of rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandProfile {
    /// Rows with at least one live pair.
    pub live_rows: usize,
    /// Live `(row, pair)` combos across the band.
    pub live_combos: u64,
    /// `(row, pair)` combos removed by wire-shadow culling.
    pub culled_combos: u64,
    /// Σ over rows of the per-pixel prescan's touched-image count.
    pub touched_sum: u64,
}

/// Per-pixel scan characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelScanInfo {
    /// Depths the leading edge crosses during the scan, `(low, high)`, µm.
    pub sweep: (f64, f64),
    /// Depth advance per wire step at mid-scan (the resolution limit), µm.
    pub resolution: f64,
    /// Leading-to-trailing edge separation at mid-scan: structure deeper
    /// than this below the shallowest scanned depth aliases with opposite
    /// sign (the unambiguous window), µm.
    pub valid_window: f64,
}

/// Analyse one pixel of a configured scan.
pub fn pixel_scan_info(
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    row: usize,
    col: usize,
) -> Result<PixelScanInfo> {
    let pixel = geom.detector.pixel_to_xyz(row, col)?;
    let n = geom.wire.n_steps;
    let first = mapper.depth(pixel, geom.wire.center(0)?, WireEdge::Leading)?;
    let last = mapper.depth(pixel, geom.wire.center(n - 1)?, WireEdge::Leading)?;
    let mid = (n - 1) / 2;
    let d_mid = mapper.depth(pixel, geom.wire.center(mid)?, WireEdge::Leading)?;
    let d_mid1 = mapper.depth(pixel, geom.wire.center(mid + 1)?, WireEdge::Leading)?;
    let t_mid = mapper.depth(pixel, geom.wire.center(mid)?, WireEdge::Trailing)?;
    Ok(PixelScanInfo {
        sweep: (first.min(last), first.max(last)),
        resolution: (d_mid1 - d_mid).abs(),
        valid_window: (d_mid - t_mid).abs(),
    })
}

/// The sweep window of one pixel (shared helper for the workload plans).
pub fn sweep_window(
    geom: &ScanGeometry,
    mapper: &DepthMapper,
    row: usize,
    col: usize,
) -> Result<(f64, f64)> {
    Ok(pixel_scan_info(geom, mapper, row, col)?.sweep)
}

/// A planned wire scan for a target depth range.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// The wire trajectory to run.
    pub wire: WireGeometry,
    /// Expected depth resolution at the reference pixel, µm.
    pub resolution: f64,
    /// The reference pixel's sweep window with this plan.
    pub sweep: (f64, f64),
    /// The unambiguous window at the reference pixel.
    pub valid_window: f64,
}

/// Plan a wire scan: choose start position and step count so the detector's
/// central pixel sweeps `[depth_lo, depth_hi]` (with 10 % margin) at a
/// per-step depth advance of at most `max_resolution` µm.
///
/// ```
/// use laue_core::{planning::plan_scan, ScanGeometry};
///
/// let base = ScanGeometry::demo(9, 9, 16, -40.0, 8.0).unwrap();
/// let plan = plan_scan(&base, 0.0, 60.0, 3.0).unwrap();
/// assert!(plan.resolution <= 3.0 + 1e-9);
/// assert!(plan.sweep.0 <= 0.0 && plan.sweep.1 >= 60.0);
/// ```
///
/// `template` supplies axis, radius and step *direction*; its magnitude is
/// rescaled to hit the resolution target. Errors when the requested range
/// exceeds the wire's unambiguous window (the fix is a thicker wire —
/// exactly the trade the microindent example demonstrates).
pub fn plan_scan(
    geom: &ScanGeometry,
    depth_lo: f64,
    depth_hi: f64,
    max_resolution: f64,
) -> Result<ScanPlan> {
    if depth_hi.partial_cmp(&depth_lo) != Some(std::cmp::Ordering::Greater) {
        return Err(CoreError::InvalidConfig(format!(
            "empty depth range [{depth_lo}, {depth_hi}]"
        )));
    }
    if max_resolution.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(CoreError::InvalidConfig(
            "resolution must be positive".into(),
        ));
    }
    let mapper = geom.mapper()?;
    let (rc, cc) = (geom.detector.n_rows / 2, geom.detector.n_cols / 2);
    let info = pixel_scan_info(geom, &mapper, rc, cc)?;
    let range = (depth_hi - depth_lo) * 1.2; // 10 % margin each side
    if range > info.valid_window {
        return Err(CoreError::InvalidConfig(format!(
            "depth range {range:.1} µm exceeds the wire's unambiguous window \
             {:.1} µm; use a thicker wire",
            info.valid_window
        )));
    }

    // Local linearisation at the current scan: depth advance per µm of wire
    // travel ≈ resolution / |step|.
    let step_len = geom.wire.step.norm();
    let gain = info.resolution / step_len; // µm depth per µm travel
    if gain <= 0.0 || !gain.is_finite() {
        return Err(CoreError::InvalidConfig("degenerate scan geometry".into()));
    }
    let step_dir = geom.wire.step / step_len;
    let new_step_len = (max_resolution / gain).min(step_len.max(max_resolution / gain));
    // Travel needed to cover the (padded) range.
    let travel = range / gain;
    let n_steps = (travel / new_step_len).ceil() as usize + 1;

    // Start position: shift the wire so the sweep begins at depth_lo − 10 %.
    // depth(center + t·dir) is monotone in t with slope ≈ gain.
    let pixel = geom.detector.pixel_to_xyz(rc, cc)?;
    let current_start_depth = mapper.depth(pixel, geom.wire.center(0)?, WireEdge::Leading)?;
    let target_start = depth_lo - (depth_hi - depth_lo) * 0.1;
    let shift = (target_start - current_start_depth) / gain;
    let origin = geom.wire.origin + step_dir * shift;

    let wire = WireGeometry::new(
        geom.wire.axis,
        geom.wire.radius,
        origin,
        step_dir * new_step_len,
        n_steps.max(2),
    )?;
    let planned = ScanGeometry {
        beam: geom.beam,
        wire: wire.clone(),
        detector: geom.detector.clone(),
    };
    let planned_mapper = planned.mapper()?;
    let info = pixel_scan_info(&planned, &planned_mapper, rc, cc)?;
    Ok(ScanPlan {
        wire,
        resolution: info.resolution,
        sweep: info.sweep,
        valid_window: info.valid_window,
    })
}

/// Convenience: lab-frame position of the planned wire at its first step —
/// useful when driving real motors from a plan.
pub fn plan_start_position(plan: &ScanPlan) -> Vec3 {
    plan.wire.origin
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ScanGeometry {
        ScanGeometry::demo(9, 9, 32, -60.0, 5.0).unwrap()
    }

    #[test]
    fn pixel_info_is_consistent() {
        let g = demo();
        let mapper = g.mapper().unwrap();
        let info = pixel_scan_info(&g, &mapper, 4, 4).unwrap();
        assert!(info.sweep.0 < info.sweep.1);
        // Central pixel advance ≈ 2 × step for the demo frame.
        assert!((info.resolution - 10.0).abs() < 1.0, "{}", info.resolution);
        assert!(info.valid_window > 50.0);
        // Sweep length ≈ resolution × (n_steps − 1).
        let sweep_len = info.sweep.1 - info.sweep.0;
        assert!((sweep_len - info.resolution * 31.0).abs() / sweep_len < 0.05);
    }

    #[test]
    fn planned_scan_covers_the_requested_range() {
        let g = demo();
        let plan = plan_scan(&g, -20.0, 40.0, 4.0).unwrap();
        assert!(
            plan.resolution <= 4.0 + 1e-6,
            "resolution {}",
            plan.resolution
        );
        assert!(
            plan.sweep.0 <= -20.0 && plan.sweep.1 >= 40.0,
            "sweep {:?} must cover [-20, 40]",
            plan.sweep
        );
        // The plan should not be wasteful: sweep at most ~3× the request.
        assert!(plan.sweep.1 - plan.sweep.0 < 3.0 * 60.0 * 1.2);
        // And it is runnable: the geometry validates end to end.
        let planned = ScanGeometry {
            beam: g.beam,
            wire: plan.wire.clone(),
            detector: g.detector.clone(),
        };
        planned.mapper().unwrap();
        assert_eq!(plan_start_position(&plan), plan.wire.origin);
    }

    #[test]
    fn range_beyond_valid_window_rejected_with_advice() {
        let g = demo();
        let err = plan_scan(&g, 0.0, 5_000.0, 5.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("thicker wire"), "{msg}");
    }

    #[test]
    fn bad_parameters_rejected() {
        let g = demo();
        assert!(plan_scan(&g, 10.0, 10.0, 5.0).is_err());
        assert!(plan_scan(&g, 20.0, 10.0, 5.0).is_err());
        assert!(plan_scan(&g, 0.0, 10.0, 0.0).is_err());
    }

    #[test]
    fn finer_resolution_means_more_steps() {
        let g = demo();
        let coarse = plan_scan(&g, 0.0, 50.0, 8.0).unwrap();
        let fine = plan_scan(&g, 0.0, 50.0, 2.0).unwrap();
        assert!(fine.wire.n_steps > coarse.wire.n_steps);
        assert!(fine.resolution < coarse.resolution);
    }

    #[test]
    fn shadow_cull_is_conservative_and_actually_culls() {
        use crate::pair::{plan_from_band, PairPlan};
        let g = demo();
        let mapper = g.mapper().unwrap();
        let (n_rows, n_cols, n_steps) = (g.detector.n_rows, g.detector.n_cols, g.wire.n_steps);
        // A window that covers only part of the swept depth range, so some
        // (pair, row) strips must fall entirely outside it.
        let cfg = ReconstructionConfig::new(-60.0, 40.0, 25);
        let cull = ShadowCull::compute(&g, &mapper, &cfg, 0..n_rows);
        assert_eq!(
            cull.host_flops,
            (n_steps * n_rows * n_cols) as u64 * FLOPS_PER_DEPTH
        );
        let mut culled = 0usize;
        let mut flops = 0u64;
        for z in 0..n_steps - 1 {
            let w0 = g.wire.center_unchecked(z as f64);
            let w1 = g.wire.center_unchecked((z + 1) as f64);
            for r in 0..n_rows {
                if cull.pair_row_live(z, r) {
                    continue;
                }
                culled += 1;
                // Conservative: every pixel of a culled strip would have
                // been rejected by the dense path without depositing.
                for c in 0..n_cols {
                    let p = g.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                    let d0 = mapper.depth(p, w0, cfg.wire_edge).unwrap();
                    let d1 = mapper.depth(p, w1, cfg.wire_edge).unwrap();
                    let plan = plan_from_band(&cfg, 1.0, d0, d1, &mut flops);
                    assert!(
                        matches!(plan, PairPlan::OutOfRange | PairPlan::InvalidGeometry),
                        "culled pair z={z} r={r} c={c} would deposit: {plan:?}"
                    );
                }
            }
        }
        assert!(culled > 0, "narrow window should cull at least one strip");
        // A window covering the whole sweep culls nothing.
        let wide = ReconstructionConfig::new(-100_000.0, 100_000.0, 25);
        let cull = ShadowCull::compute(&g, &mapper, &wide, 0..n_rows);
        for z in 0..n_steps - 1 {
            for r in 0..n_rows {
                assert!(cull.pair_row_live(z, r));
            }
        }
    }

    #[test]
    fn shadow_cull_band_subset_matches_full_table() {
        let g = demo();
        let mapper = g.mapper().unwrap();
        let cfg = ReconstructionConfig::new(-60.0, 40.0, 25);
        let full = ShadowCull::compute(&g, &mapper, &cfg, 0..g.detector.n_rows);
        let band = ShadowCull::compute(&g, &mapper, &cfg, 3..7);
        for z in 0..g.wire.n_steps - 1 {
            for r in 3..7 {
                assert_eq!(band.pair_row_live(z, r), full.pair_row_live(z, r));
            }
            assert_eq!(band.live_pairs(4), full.live_pairs(4));
        }
    }

    #[test]
    fn plan_round_trips_through_reconstruction() {
        // Plan a scan, render a scatterer at a depth inside the plan, and
        // recover it — the full instrument loop.
        let g = demo();
        let plan = plan_scan(&g, 0.0, 60.0, 4.0).unwrap();
        let planned = ScanGeometry {
            beam: g.beam,
            wire: plan.wire.clone(),
            detector: g.detector.clone(),
        };
        let mapper = planned.mapper().unwrap();
        // Choose a depth the central pixel actually sweeps.
        let info = pixel_scan_info(&planned, &mapper, 4, 4).unwrap();
        let depth = (info.sweep.0 + info.sweep.1) / 2.0;
        let occ0 = mapper.occludes(
            depth,
            planned.detector.pixel_to_xyz(4, 4).unwrap(),
            planned.wire.center(0).unwrap(),
        );
        assert!(!occ0, "scatterer must start visible");
        let mut images = vec![0.0; planned.wire.n_steps * 9 * 9];
        let pixel = planned.detector.pixel_to_xyz(4, 4).unwrap();
        for z in 0..planned.wire.n_steps {
            if !mapper.occludes(depth, pixel, planned.wire.center(z).unwrap()) {
                images[(z * 9 + 4) * 9 + 4] = 150.0;
            }
        }
        let view = crate::ScanView::new(&images, planned.wire.n_steps, 9, 9).unwrap();
        let cfg = crate::ReconstructionConfig::new(-400.0, 400.0, 200);
        let out = crate::cpu::reconstruct_seq(&view, &planned, &cfg).unwrap();
        let peak = out.image.pixel_peak_depth(4, 4, &cfg).unwrap();
        assert!(
            (peak - depth).abs() <= plan.resolution + 2.0 * cfg.bin_width(),
            "recovered {peak} vs planned depth {depth}"
        );
    }
}
