//! Multi-node cluster reconstruction: row-band sharding across chassis
//! with a hierarchical, optionally compute-overlapped depth-image
//! reduction over a metered interconnect.
//!
//! The distributed-ptychography shape (PAPERS.md): the scan's detector
//! rows are banded across N nodes; each node runs its band on the
//! existing single/multi-GPU engines (PR 5's privatized deterministic
//! commit *is* the intra-node reduction), and the per-node partial images
//! are then reduced to the head node over the fabric. Because bands are
//! disjoint, the inter-node "all-reduce" degenerates to an aggregation of
//! disjoint row segments — every cell of the final image is written by
//! exactly one node — so the result is bit-identical to the single-node
//! engine at every node count and under every reduction order. What the
//! topology and overlap settings change is *time*, which the
//! [`Interconnect`] meters exactly like PCIe inside a chassis:
//!
//! * [`ReductionTopology::Tree`] routes node `i`'s segments along the
//!   binomial path `i → i - lowbit(i) → … → 0` — `popcount(i)` hops, the
//!   fewest byte-hops, but bursty at the root.
//! * [`ReductionTopology::Ring`] forwards hop-by-hop `i → i-1 → … → 0` —
//!   `i` hops, more fabric traffic, but fine-grained: under a full-duplex
//!   NIC the relays receive one segment while forwarding another, and
//!   segments start moving the moment a neighbour commits.
//!
//! Both funnel every byte through the head node's receive link, so the
//! makespans converge to that bound as N grows; the topologies differ in
//! the latency term and in how well they overlap. With `overlap` on, a
//! segment enters the fabric when its slab commits (the tail of per-node
//! compute hides reduction traffic); with `overlap` off, reduction waits
//! for a global barrier at the slowest node's compute end and each node
//! ships its whole band as one message.
//!
//! Node loss generalizes PR 3's round-based failover one level up: a node
//! whose devices are all dead (the GPUs fail — the chassis, its NIC, and
//! the shared journal survive, as on a real cluster) drops out of the
//! round loop and its uncovered rows re-band onto surviving nodes.
//! Segments a node committed before dying are journal-durable and still
//! priced as traffic from that node's NIC. Only when zero nodes survive
//! does the error surface for CPU salvage.
//!
//! The head node applies arriving segments at no modeled CPU cost: the
//! adds land on zero-initialized disjoint rows (a memcpy in practice),
//! and the host-CPU resource models ahead-of-time table work, not
//! post-compute stitching.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;

use cuda_sim::{Device, FaultStats, Interconnect, Meters};

use crate::cache::{DepthTableCache, TableCacheStats};
use crate::config::ReconstructionConfig;
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::gpu::{GpuOptions, PipelineDepth, RecoveryLog};
use crate::input::SlabSource;
use crate::integrity::IntegrityReport;
use crate::journal::{RunJournal, SlabProgress};
use crate::multi::{partition_ranges, reconstruct_multi_scoped};
use crate::output::DepthImage;
use crate::stats::ReconStats;
use crate::Result;

/// Fixed per-segment envelope: slab header, CRC frame, RDMA descriptor.
const SEGMENT_HEADER_BYTES: u64 = 64;

/// Inter-node reduction routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionTopology {
    /// Binomial tree: node `i` forwards to `i - lowbit(i)`; `popcount(i)`
    /// hops to the head node, minimal byte-hops.
    #[default]
    Tree,
    /// Chain ring: node `i` forwards to `i - 1`; `i` hops, pipelined.
    Ring,
}

impl ReductionTopology {
    /// Stable CLI/report token.
    pub fn label(self) -> &'static str {
        match self {
            ReductionTopology::Tree => "tree",
            ReductionTopology::Ring => "ring",
        }
    }

    /// Parse a CLI token. Unknown tokens return `None`.
    pub fn parse(s: &str) -> Option<ReductionTopology> {
        match s {
            "tree" => Some(ReductionTopology::Tree),
            "ring" => Some(ReductionTopology::Ring),
            _ => None,
        }
    }

    /// The next node toward the head on this topology's route.
    fn next_hop(self, node: usize) -> usize {
        debug_assert!(node > 0);
        match self {
            ReductionTopology::Tree => node & (node - 1),
            ReductionTopology::Ring => node - 1,
        }
    }
}

/// Cluster-level knobs (the intra-node knobs ride in
/// [`ReconstructionConfig`] as before).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOptions {
    /// Inter-node reduction routing.
    pub topology: ReductionTopology,
    /// Release reduction segments at slab-commit time (`true`, the
    /// default) instead of after a global compute barrier.
    pub overlap: bool,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            topology: ReductionTopology::Tree,
            overlap: true,
        }
    }
}

impl ClusterOptions {
    /// Stable token for journal keys and plan labels, e.g. `tree+overlap`.
    pub fn label(&self) -> String {
        format!(
            "{}{}",
            self.topology.label(),
            if self.overlap { "+overlap" } else { "+barrier" }
        )
    }
}

/// One node's share of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct NodeOutcome {
    /// Node index (0 is the head node holding the journal and output).
    pub node: usize,
    /// Devices on the node that participated.
    pub devices: usize,
    /// Rows this node committed.
    pub rows: usize,
    /// The node's virtual compute makespan (cumulative over failover
    /// rounds).
    pub elapsed_s: f64,
    /// PCIe stall seconds summed over the node's devices.
    pub bus_wait_s: f64,
    /// Devices of this node that died mid-run.
    pub devices_lost: u32,
    /// All of the node's devices died: its uncovered rows re-banded onto
    /// the surviving nodes.
    pub lost: bool,
    /// Integrity counters attributed to this chassis (merged over its
    /// devices; for a lost node, whatever its completed rounds reported).
    pub integrity: IntegrityReport,
    /// Injected-fault counters attributed to this chassis (merged over
    /// its devices; `None` when no device carried a fault plan).
    pub faults: Option<FaultStats>,
    /// Reduction segments this node pushed into the fabric.
    pub net_segments: usize,
    /// Reduction bytes this node pushed into the fabric.
    pub net_bytes: u64,
    /// Seconds this node's reduction traffic queued on the fabric beyond
    /// the uncontended transfer time.
    pub net_wait_s: f64,
}

/// Result of a cluster reconstruction.
#[derive(Debug, Clone)]
pub struct ClusterReconstruction {
    /// The depth-resolved output (bit-identical to the single-node run).
    pub image: DepthImage,
    /// Outcome counters over the whole cluster.
    pub stats: ReconStats,
    /// Per-node breakdown, in node order (every node, even workless ones).
    pub nodes: Vec<NodeOutcome>,
    /// Cluster virtual makespan: compute *and* the reduction tail.
    pub elapsed_s: f64,
    /// Slowest node's compute makespan.
    pub compute_s: f64,
    /// Reduction time not hidden behind compute
    /// (`elapsed_s - compute_s`).
    pub reduction_exposed_s: f64,
    /// Seconds reduction traffic spent queued on the fabric.
    pub net_wait_s: f64,
    /// Total reduction bytes moved inter-node.
    pub net_bytes: u64,
    /// Total reduction messages (segment-hops) on the fabric.
    pub net_messages: u64,
    /// Nodes whose entire device complement died mid-run.
    pub nodes_lost: u32,
    /// Devices lost across all nodes.
    pub devices_lost: u32,
    /// Recovery actions (re-plans, transfer retries) over all nodes.
    pub recovery: RecoveryLog,
    /// Depth-table cache accounting merged over the cluster.
    pub table_cache: TableCacheStats,
    /// Host-CPU table seconds summed over nodes (each node's CPU works in
    /// parallel with its devices).
    pub host_table_time_s: f64,
    /// Committed slabs (replayed + fresh).
    pub n_slabs: usize,
    /// Per-slab achieved densities in commit order across the cluster.
    pub slab_densities: Vec<f64>,
    /// Per-slab privatized-accumulation flags in commit order.
    pub slab_privatized: Vec<bool>,
    /// Integrity counters merged over the whole cluster.
    pub integrity: IntegrityReport,
    /// Per-device meters, node-major over participating devices.
    pub per_device: Vec<Meters>,
    /// The options the run executed with (echoed for reports).
    pub options: ClusterOptions,
}

/// A committed row segment awaiting reduction.
#[derive(Debug, Clone)]
struct Segment {
    row0: usize,
    rows: usize,
    bytes: u64,
    /// Virtual time the segment exists on its node (slab commit).
    ready_s: f64,
}

/// Heap key for the deterministic reduction event loop: earliest ready
/// first, ties broken by (row0, origin node, hop) so the schedule — and
/// therefore every fabric grant — is independent of iteration accidents.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HopKey {
    ready: f64,
    row0: usize,
    node: usize,
    hop: usize,
}

impl Eq for HopKey {}

impl PartialOrd for HopKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HopKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .ready
            .total_cmp(&self.ready)
            .then(other.row0.cmp(&self.row0))
            .then(other.node.cmp(&self.node))
            .then(other.hop.cmp(&self.hop))
    }
}

/// Outcome of scheduling the inter-node reduction on the fabric.
#[derive(Debug, Default)]
struct ReductionSchedule {
    /// When the last segment cleared the head node's link.
    last_arrival_s: f64,
    /// Queueing beyond uncontended time, attributed to the origin node.
    wait_by_node: Vec<f64>,
    /// Segment-hops issued.
    messages: u64,
}

/// Drive every segment to node 0 along the topology's route, issuing
/// fabric sends in deterministic (ready, row0, node, hop) order. Segments
/// originating at the head node arrive for free — they are already home.
fn schedule_reduction(
    net: &Interconnect,
    topology: ReductionTopology,
    segments: &[Vec<Segment>],
    barrier: Option<f64>,
) -> ReductionSchedule {
    let mut sched = ReductionSchedule {
        wait_by_node: vec![0.0; segments.len()],
        ..ReductionSchedule::default()
    };
    let mut heap: BinaryHeap<(HopKey, u64)> = BinaryHeap::new();
    for (node, segs) in segments.iter().enumerate() {
        for seg in segs {
            let ready = barrier.map_or(seg.ready_s, |b| b.max(seg.ready_s));
            if node == 0 {
                sched.last_arrival_s = sched.last_arrival_s.max(ready);
            } else {
                heap.push((
                    HopKey {
                        ready,
                        row0: seg.row0,
                        node,
                        hop: 0,
                    },
                    seg.bytes,
                ));
            }
        }
    }
    while let Some((key, bytes)) = heap.pop() {
        let to = topology.next_hop(key.node);
        let d = net.send(key.node, to, bytes, key.ready);
        sched.wait_by_node[key.node] += d.wait_s;
        sched.messages += 1;
        if to == 0 {
            sched.last_arrival_s = sched.last_arrival_s.max(d.arrival);
        } else {
            heap.push((
                HopKey {
                    ready: d.arrival,
                    row0: key.row0,
                    node: to,
                    hop: key.hop + 1,
                },
                bytes,
            ));
        }
    }
    sched
}

/// The cluster scheduler: node-level round-based failover around
/// [`reconstruct_multi_scoped`], then the inter-node reduction.
///
/// `nodes[i]` holds node `i`'s devices (attached to that node's
/// [`cuda_sim::Host`]); `net` is the fabric linking them, which must span
/// at least `nodes.len()` endpoints. Work proceeds in rounds: uncovered
/// rows re-band over the nodes currently alive ([`partition_ranges`] at
/// node granularity — a fresh failure-free run reproduces the static
/// banding), each node runs its share through the scoped fleet engine
/// (inheriting device-level failover *within* the node), and slab commits
/// release reduction segments. A node is dead when its scoped run fails
/// with a GPU-class error — i.e. its last device died; zero surviving
/// nodes surfaces the error for CPU salvage, exactly like the fleet
/// engine one level down.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_cluster_checkpointed(
    nodes: &[Vec<&Device>],
    net: &Interconnect,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    copts: ClusterOptions,
    progress: &mut SlabProgress,
    mut journal: Option<&mut RunJournal>,
) -> Result<ClusterReconstruction> {
    if nodes.is_empty() || nodes.iter().any(|ds| ds.is_empty()) {
        return Err(CoreError::InvalidConfig(
            "every cluster node needs at least one device".into(),
        ));
    }
    if net.n_nodes() < nodes.len() {
        return Err(CoreError::InvalidConfig(format!(
            "interconnect spans {} nodes but the cluster has {}",
            net.n_nodes(),
            nodes.len()
        )));
    }
    let n_rows = source.n_rows();
    let n_cols = source.n_cols();
    let n = nodes.len();
    let segment_bytes =
        |rows: usize| (rows * n_cols * cfg.n_depth_bins * 8) as u64 + SEGMENT_HEADER_BYTES;

    let mut alive: Vec<bool> = nodes
        .iter()
        .map(|ds| ds.iter().any(|d| !d.is_lost()))
        .collect();
    let mut participated = vec![false; n];
    let mut segments: Vec<Vec<Segment>> = vec![Vec::new(); n];
    let mut outcomes: Vec<NodeOutcome> = (0..n)
        .map(|i| NodeOutcome {
            node: i,
            ..NodeOutcome::default()
        })
        .collect();
    let mut recovery = RecoveryLog::default();
    let mut table_cache = TableCacheStats::default();
    let mut slab_densities = Vec::new();
    let mut slab_privatized = Vec::new();
    let mut nodes_lost = 0u32;
    let mut last_gpu_err: Option<CoreError> = None;

    loop {
        let pending = progress.uncovered(0..n_rows);
        if pending.is_empty() {
            break;
        }
        let alive_idx: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        if alive_idx.is_empty() {
            return Err(last_gpu_err.unwrap_or(CoreError::Device(cuda_sim::SimError::DeviceLost)));
        }
        let assignments = partition_ranges(&pending, alive_idx.len());
        for (k, ranges) in assignments.iter().enumerate() {
            if ranges.is_empty() {
                continue;
            }
            let ni = alive_idx[k];
            let fresh = !participated[ni];
            participated[ni] = true;
            let before = progress.committed_rows();
            let node_segments = &mut segments[ni];
            let mut on_commit = |row0: usize, rows: usize, at_s: f64| {
                node_segments.push(Segment {
                    row0,
                    rows,
                    bytes: segment_bytes(rows),
                    ready_s: at_s,
                });
            };
            let attempt = reconstruct_multi_scoped(
                &nodes[ni],
                source,
                geom,
                cfg,
                opts,
                depth,
                cache,
                ranges,
                progress,
                journal.as_deref_mut(),
                Some(&mut on_commit),
                fresh,
            );
            let out = &mut outcomes[ni];
            out.rows += progress.committed_rows() - before;
            match attempt {
                Ok(mr) => {
                    out.devices = mr.per_device.len();
                    out.elapsed_s = mr.elapsed_s;
                    out.bus_wait_s = mr.per_device.iter().map(|m| m.bus_wait_s).sum();
                    out.devices_lost += mr.devices_lost;
                    out.integrity.merge(&mr.integrity);
                    recovery.replans += mr.recovery.replans;
                    recovery.transfer_retries += mr.recovery.transfer_retries;
                    table_cache.merge(&mr.table_cache);
                    slab_densities.extend(mr.slab_densities);
                    slab_privatized.extend(mr.slab_privatized);
                }
                Err(e) if e.is_gpu_failure() => {
                    // The node's last device is gone. The chassis (NIC,
                    // journal reach) survives; its committed segments stay
                    // scheduled, its uncovered rows re-band next round.
                    alive[ni] = false;
                    out.lost = true;
                    out.devices_lost = nodes[ni].iter().filter(|d| d.is_lost()).count() as u32;
                    out.elapsed_s = nodes[ni]
                        .iter()
                        .map(|d| d.elapsed_s())
                        .fold(out.elapsed_s, f64::max);
                    nodes_lost += 1;
                    last_gpu_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Compute-side accounting over participating devices. Host table time
    // and meters are cumulative on the device, so they are read once here
    // rather than summed per round.
    let mut per_device = Vec::new();
    let mut host_table_time_s = 0.0;
    let mut compute_s: f64 = 0.0;
    let mut devices_lost = 0u32;
    let mut integrity = IntegrityReport::default();
    for (ni, out) in outcomes.iter_mut().enumerate() {
        if participated[ni] {
            for d in &nodes[ni] {
                host_table_time_s += d.host_flops_time_s();
                per_device.push(d.meters());
            }
            out.devices = nodes[ni].len();
            out.bus_wait_s = nodes[ni].iter().map(|d| d.meters().bus_wait_s).sum();
        }
        out.faults = FaultStats::merge_all(nodes[ni].iter().filter_map(|d| d.fault_stats()));
        compute_s = compute_s.max(out.elapsed_s);
        devices_lost += out.devices_lost;
        integrity.merge(&out.integrity);
    }

    // Inter-node reduction: every committed segment rides its origin
    // node's NIC to the head node. Overlap releases a segment at its
    // commit time; the barrier variant merges each node's segments into
    // one whole-band message gated on the slowest node's compute end.
    let scheduled: Vec<Vec<Segment>> = if copts.overlap {
        segments
    } else {
        segments
            .iter()
            .map(|segs| {
                if segs.is_empty() {
                    return Vec::new();
                }
                let rows: usize = segs.iter().map(|s| s.rows).sum();
                vec![Segment {
                    row0: segs.iter().map(|s| s.row0).min().unwrap(),
                    rows,
                    bytes: segment_bytes(rows),
                    ready_s: segs.iter().map(|s| s.ready_s).fold(0.0, f64::max),
                }]
            })
            .collect()
    };
    let barrier = (!copts.overlap).then_some(compute_s);
    let net_segments: Vec<usize> = scheduled.iter().map(|s| s.len()).collect();
    let net_bytes_by_node: Vec<u64> = scheduled
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i == 0 {
                0
            } else {
                s.iter().map(|g| g.bytes).sum()
            }
        })
        .collect();
    let sched = schedule_reduction(net, copts.topology, &scheduled, barrier);
    for out in outcomes.iter_mut() {
        if out.node != 0 {
            out.net_segments = net_segments[out.node];
            out.net_bytes = net_bytes_by_node[out.node];
        }
        out.net_wait_s = sched.wait_by_node[out.node];
    }

    let elapsed_s = compute_s.max(sched.last_arrival_s);
    Ok(ClusterReconstruction {
        image: progress.image.clone(),
        stats: progress.stats,
        nodes: outcomes,
        elapsed_s,
        compute_s,
        reduction_exposed_s: elapsed_s - compute_s,
        net_wait_s: sched.wait_by_node.iter().sum(),
        net_bytes: net_bytes_by_node.iter().sum(),
        net_messages: sched.messages,
        nodes_lost,
        devices_lost,
        recovery,
        table_cache,
        host_table_time_s,
        n_slabs: progress.committed_slabs(),
        slab_densities,
        slab_privatized,
        integrity,
        per_device,
        options: copts,
    })
}

/// Convenience entry point: fresh progress, no journal.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_cluster(
    nodes: &[Vec<&Device>],
    net: &Interconnect,
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    copts: ClusterOptions,
) -> Result<ClusterReconstruction> {
    let mut progress = SlabProgress::new(cfg.n_depth_bins, source.n_rows(), source.n_cols());
    reconstruct_cluster_checkpointed(
        nodes,
        net,
        source,
        geom,
        cfg,
        opts,
        depth,
        cache,
        copts,
        &mut progress,
        None,
    )
}

/// Route length (in hops) of node `i`'s segments under `topology` — the
/// closed-form the planner prices latency with.
pub fn route_hops(topology: ReductionTopology, node: usize) -> usize {
    match topology {
        ReductionTopology::Tree => node.count_ones() as usize,
        ReductionTopology::Ring => node,
    }
}

/// Byte size of one reduction segment of `rows` rows — shared with the
/// planner so predicted and executed traffic agree.
pub fn reduction_segment_bytes(rows: usize, n_cols: usize, n_bins: usize) -> u64 {
    (rows * n_cols * n_bins * 8) as u64 + SEGMENT_HEADER_BYTES
}

/// Split rows across nodes exactly as the executor will: re-exported for
/// the planner and benches.
pub fn node_bands(n_rows: usize, nodes: usize) -> Vec<Range<usize>> {
    crate::multi::row_bands(n_rows, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{self, Layout};
    use crate::input::InMemorySlabSource;
    use cuda_sim::{DeviceProps, Host, InterconnectProps};

    fn demo() -> (ScanGeometry, ReconstructionConfig, Vec<f64>) {
        let geom = ScanGeometry::demo(8, 6, 10, -60.0, 6.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 60);
        let (p, m, n) = (10, 8, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                800.0 - 23.0 * z as f64 - (px % 5) as f64 * 13.0
            })
            .collect();
        (geom, cfg, data)
    }

    struct TestCluster {
        hosts: Vec<std::sync::Arc<Host>>,
        devices: Vec<Vec<Device>>,
        net: std::sync::Arc<Interconnect>,
    }

    fn build(nodes: usize, per_node: usize, props: InterconnectProps) -> TestCluster {
        let hosts: Vec<_> = (0..nodes).map(|_| Host::new_default()).collect();
        let devices: Vec<Vec<Device>> = hosts
            .iter()
            .map(|h| {
                (0..per_node)
                    .map(|_| Device::new_on_host(DeviceProps::tiny(16 * 1024 * 1024), h))
                    .collect()
            })
            .collect();
        let net = Interconnect::new("test", nodes, props);
        TestCluster {
            hosts,
            devices,
            net,
        }
    }

    fn refs(c: &TestCluster) -> Vec<Vec<&Device>> {
        c.devices.iter().map(|ds| ds.iter().collect()).collect()
    }

    fn run(
        c: &TestCluster,
        data: &[f64],
        geom: &ScanGeometry,
        cfg: &ReconstructionConfig,
        copts: ClusterOptions,
    ) -> ClusterReconstruction {
        let mut source = InMemorySlabSource::new(data.to_vec(), 10, 8, 6).unwrap();
        reconstruct_cluster(
            &refs(c),
            &c.net,
            &mut source,
            geom,
            cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            copts,
        )
        .unwrap()
    }

    #[test]
    fn cluster_matches_single_gpu_bitwise_at_every_node_count() {
        let (geom, cfg, data) = demo();
        let single = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let ref_out = gpu::reconstruct(&single, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        for nodes in [1usize, 2, 3, 4, 8] {
            for topology in [ReductionTopology::Tree, ReductionTopology::Ring] {
                for overlap in [false, true] {
                    let c = build(nodes, 1, InterconnectProps::ib_qdr());
                    let out = run(&c, &data, &geom, &cfg, ClusterOptions { topology, overlap });
                    let tag = format!("{nodes} nodes, {topology:?}, overlap={overlap}");
                    assert_eq!(out.image.data, ref_out.image.data, "{tag}");
                    assert_eq!(out.stats, ref_out.stats, "{tag}");
                    assert_eq!(out.nodes.len(), nodes);
                    let rows: usize = out.nodes.iter().map(|n| n.rows).sum();
                    assert_eq!(rows, 8, "{tag}");
                }
            }
        }
    }

    #[test]
    fn reduction_is_metered_and_head_node_sends_nothing() {
        let (geom, cfg, data) = demo();
        let c = build(4, 1, InterconnectProps::gige());
        let out = run(&c, &data, &geom, &cfg, ClusterOptions::default());
        assert_eq!(out.nodes[0].net_bytes, 0, "head node is already home");
        assert!(out.nodes[1..].iter().all(|n| n.net_bytes > 0));
        // The fabric meters byte-hops: each node's origin bytes times its
        // route length (tree over 4 nodes: 1, 1, 2 hops).
        let byte_hops: u64 = out
            .nodes
            .iter()
            .map(|n| n.net_bytes * route_hops(ReductionTopology::Tree, n.node) as u64)
            .sum();
        assert_eq!(c.net.sent_bytes(), byte_hops);
        assert!(out.net_messages > 0);
        assert!(out.elapsed_s >= out.compute_s);
    }

    #[test]
    fn ring_moves_more_bytes_than_tree_and_both_arrive() {
        let (geom, cfg, data) = demo();
        let mk = |topology| {
            let c = build(4, 1, InterconnectProps::ib_qdr());
            let out = run(
                &c,
                &data,
                &geom,
                &cfg,
                ClusterOptions {
                    topology,
                    overlap: true,
                },
            );
            (c.net.sent_bytes(), out)
        };
        let (tree_bytes, tree) = mk(ReductionTopology::Tree);
        let (ring_bytes, ring) = mk(ReductionTopology::Ring);
        // Tree: nodes 1,2 are 1 hop, node 3 is 2 (popcount). Ring: 1+2+3.
        assert!(
            ring_bytes > tree_bytes,
            "ring byte-hops {ring_bytes} must exceed tree {tree_bytes}"
        );
        assert_eq!(tree.image.data, ring.image.data);
    }

    #[test]
    fn overlap_hides_reduction_behind_compute() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1); // several segments per node
                                     // Sized so reduction is a visible fraction of the ~21 µs compute:
                                     // overlap then hides most of it, the barrier exposes all of it.
        let slow = InterconnectProps {
            name: "slow".to_string(),
            bandwidth_bytes_per_s: 1.2e9,
            latency_s: 1.0e-7,
            duplex: cuda_sim::Duplex::Full,
        };
        let c_off = build(4, 1, slow.clone());
        let off = run(
            &c_off,
            &data,
            &geom,
            &cfg,
            ClusterOptions {
                topology: ReductionTopology::Tree,
                overlap: false,
            },
        );
        let c_on = build(4, 1, slow);
        let on = run(
            &c_on,
            &data,
            &geom,
            &cfg,
            ClusterOptions {
                topology: ReductionTopology::Tree,
                overlap: true,
            },
        );
        assert_eq!(on.image.data, off.image.data, "overlap moves time only");
        assert!(
            on.elapsed_s < off.elapsed_s,
            "overlapped reduction must beat the barrier: {} vs {}",
            on.elapsed_s,
            off.elapsed_s
        );
        assert!(off.reduction_exposed_s > 0.0);
    }

    #[test]
    fn node_loss_rebands_onto_survivors_bitwise() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1);
        let clean = build(3, 1, InterconnectProps::ib_qdr());
        let ref_out = run(&clean, &data, &geom, &cfg, ClusterOptions::default());
        assert_eq!(ref_out.nodes_lost, 0);

        for victim in 0..3usize {
            let c = build(3, 1, InterconnectProps::ib_qdr());
            c.devices[victim][0].set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after_launches(1));
            let out = run(&c, &data, &geom, &cfg, ClusterOptions::default());
            assert_eq!(out.nodes_lost, 1, "victim {victim}");
            assert_eq!(out.devices_lost, 1);
            assert!(out.nodes[victim].lost);
            assert_eq!(
                out.image.data, ref_out.image.data,
                "survivors finish victim {victim}'s rows bit-identically"
            );
            assert_eq!(out.stats, ref_out.stats);
        }
    }

    #[test]
    fn zero_surviving_nodes_surfaces_the_loss() {
        let (geom, cfg, data) = demo();
        let c = build(2, 1, InterconnectProps::ib_qdr());
        for ds in &c.devices {
            ds[0].set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after_launches(0));
        }
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let err = reconstruct_cluster(
            &refs(&c),
            &c.net,
            &mut source,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            ClusterOptions::default(),
        )
        .unwrap_err();
        assert!(err.is_gpu_failure());
        let _ = &c.hosts;
    }

    #[test]
    fn options_label_is_stable() {
        assert_eq!(ClusterOptions::default().label(), "tree+overlap");
        assert_eq!(
            ClusterOptions {
                topology: ReductionTopology::Ring,
                overlap: false
            }
            .label(),
            "ring+barrier"
        );
        assert_eq!(
            ReductionTopology::parse("ring"),
            Some(ReductionTopology::Ring)
        );
        assert_eq!(ReductionTopology::parse("mesh"), None);
    }

    #[test]
    fn route_hops_match_the_module_contract() {
        assert_eq!(route_hops(ReductionTopology::Tree, 5), 2);
        assert_eq!(route_hops(ReductionTopology::Tree, 8), 1);
        assert_eq!(route_hops(ReductionTopology::Ring, 5), 5);
    }
}
