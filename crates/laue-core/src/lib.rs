//! `laue-core` — wire-scan (differential-aperture) Laue depth
//! reconstruction.
//!
//! This crate implements the algorithm of Yue, Schwarz & Tischler
//! (*Accelerating the Depth Reconstruction Algorithm with CUDA/GPU*, IEEE
//! CLUSTER 2015) and both execution engines the paper compares:
//!
//! * [`cpu`] — the prior sequential CPU implementation (the baseline), plus
//!   a row-parallel threaded variant;
//! * [`gpu`] — the paper's CUDA design, run on the [`cuda_sim`] device:
//!   row-slab chunking to fit device memory (the paper's Fig 2), a
//!   `setTwo`-style kernel with one thread per `(row, col, wire-step)`
//!   element, CAS-loop `atomicAdd(double)` accumulation, and both the flat
//!   [`gpu::Layout::Flat1d`] and pointer-table [`gpu::Layout::Pointer3d`]
//!   data layouts whose trade-off the paper's Fig 4 measures.
//!
//! # The algorithm
//!
//! A wire scan produces `p` detector images; between consecutive images the
//! wire advances by one step, occluding rays that originate from a slightly
//! deeper band of the sample. For every pixel `(r, c)` and image pair
//! `(z, z+1)`:
//!
//! 1. the differential intensity `ΔI = I_z − I_{z+1}` (leading edge; sign
//!    flips for the trailing edge) is the light emitted from the depth band
//!    the wire newly covered;
//! 2. the band is `[depth(pixel, edge_z), depth(pixel, edge_{z+1})]`, where
//!    `depth` triangulates the grazing ray past the wire edge back to the
//!    incident beam ([`laue_geometry::DepthMapper`]);
//! 3. `ΔI` is deposited into the depth-binned output image
//!    `out[bin][r][c]`, split over bins by exact interval overlap.
//!
//! Pixels whose `|ΔI|` falls below [`ReconstructionConfig::intensity_cutoff`]
//! are skipped — sweeping that cutoff reproduces the paper's
//! "pixel percentage" experiment (Fig 9).
//!
//! Both engines call the same per-pair routine ([`pair::process_pair`]), so
//! they agree bit-for-bit when the simulated device executes sequentially,
//! and within floating-point reassociation tolerance when threaded.

pub mod cache;
pub mod calibrate;
pub mod cluster;
pub mod config;
pub mod cpu;
pub mod error;
pub mod geometry;
pub mod gpu;
pub mod input;
pub mod integrity;
pub mod journal;
pub mod multi;
pub mod output;
pub mod pair;
pub mod planner;
pub mod planning;
pub mod post;
pub mod stats;
pub mod uncertainty;

pub use cluster::{ClusterOptions, ClusterReconstruction, NodeOutcome, ReductionTopology};
pub use config::{AccumulationMode, CompactionMode, IntegrityMode, PlanMode, ReconstructionConfig};
pub use error::CoreError;
pub use geometry::ScanGeometry;
pub use input::{InMemorySlabSource, RoiSlabSource, ScanView, SlabSource};
pub use integrity::IntegrityReport;
pub use output::DepthImage;
pub use stats::ReconStats;

pub use laue_geometry::WireEdge;

/// Result alias for reconstruction operations.
pub type Result<T> = std::result::Result<T, CoreError>;
