//! Uncertainty propagation: error bars for the depth-resolved output.
//!
//! Detector counts are Poisson-distributed and **consecutive differentials
//! share an image**: `ΔI_z` and `ΔI_{z+1}` both contain `I_{z+1}`, with
//! opposite signs, so their noise is anti-correlated. Treating deposits as
//! independent would overstate the error bars by up to 2×. This module
//! therefore propagates exactly: for each pixel the output of bin `b` is a
//! linear form `Σ_z c_{b,z}·I_z` (the coefficients come from the same
//! per-pair plans the engines execute), and under independent Poisson
//! images `var = Σ_z c_{b,z}²·I_z`. The square root is the 1-σ error bar
//! of every `(bin, pixel)` value — the missing piece for judging whether a
//! depth-profile peak is signal or noise. A Monte-Carlo test in `laue-wire`
//! confirms predicted σ matches the empirical scatter.

use laue_geometry::DepthMapper;

use crate::config::ReconstructionConfig;
use crate::cpu::check_shapes;
use crate::geometry::ScanGeometry;
use crate::input::ScanView;
use crate::output::DepthImage;
use crate::pair::{plan_pair, PairPlan};
use crate::stats::ReconStats;
use crate::Result;

/// Reconstruction with propagated Poisson uncertainty.
#[derive(Debug, Clone)]
pub struct VarianceReconstruction {
    /// The depth-resolved intensities (identical to `cpu::reconstruct_seq`).
    pub image: DepthImage,
    /// Per-element variance of `image` under Poisson counting statistics.
    pub variance: DepthImage,
    /// Outcome counters.
    pub stats: ReconStats,
}

impl VarianceReconstruction {
    /// 1-σ error bar of one element.
    pub fn sigma(&self, bin: usize, row: usize, col: usize) -> f64 {
        self.variance.at(bin, row, col).max(0.0).sqrt()
    }

    /// Signal-to-noise of one element (0 when the variance is 0).
    pub fn snr(&self, bin: usize, row: usize, col: usize) -> f64 {
        let s = self.sigma(bin, row, col);
        if s <= 0.0 {
            0.0
        } else {
            self.image.at(bin, row, col) / s
        }
    }

    /// Bins of one pixel whose value exceeds `n_sigma` error bars —
    /// statistically significant depth structure.
    pub fn significant_bins(&self, row: usize, col: usize, n_sigma: f64) -> Vec<usize> {
        (0..self.image.n_bins)
            .filter(|&b| {
                let s = self.sigma(b, row, col);
                s > 0.0 && self.image.at(b, row, col) > n_sigma * s
            })
            .collect()
    }
}

/// Sequential reconstruction with exact Poisson variance propagation.
pub fn reconstruct_with_variance(
    view: &ScanView<'_>,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
) -> Result<VarianceReconstruction> {
    cfg.validate()?;
    check_shapes(view, geom)?;
    let mapper: DepthMapper = geom.mapper()?;
    let n_bins = cfg.n_depth_bins;
    let n_images = view.n_images;
    let mut image = DepthImage::zeroed(n_bins, view.n_rows, view.n_cols);
    let mut variance = DepthImage::zeroed(n_bins, view.n_rows, view.n_cols);
    let mut stats = ReconStats::default();
    let wire_centers = geom.wire.centers();
    // Per-pixel coefficient matrix c[bin][z]: out[bin] = Σ_z c·I_z.
    let mut coeffs = vec![0.0f64; n_bins * n_images];
    // Sign of I_z in ΔI for the configured edge.
    let sign = match cfg.wire_edge {
        laue_geometry::WireEdge::Leading => 1.0,
        laue_geometry::WireEdge::Trailing => -1.0,
    };
    for r in 0..view.n_rows {
        for c in 0..view.n_cols {
            let pixel = geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
            coeffs.iter_mut().for_each(|v| *v = 0.0);
            for z in 0..n_images - 1 {
                let i0 = view.at(z, r, c);
                let i1 = view.at(z + 1, r, c);
                let mut flops = 0u64;
                let plan = plan_pair(
                    &mapper,
                    cfg,
                    pixel,
                    wire_centers[z],
                    wire_centers[z + 1],
                    i0,
                    i1,
                    &mut flops,
                );
                match plan {
                    PairPlan::BelowCutoff => stats.record(crate::stats::PairOutcome::BelowCutoff),
                    PairPlan::InvalidGeometry => {
                        stats.record(crate::stats::PairOutcome::InvalidGeometry)
                    }
                    PairPlan::OutOfRange => stats.record(crate::stats::PairOutcome::OutOfRange),
                    PairPlan::Deposit(p) => {
                        let mut bins = 0usize;
                        for bin in p.first_bin..p.last_bin {
                            let amount = p.amount(bin, cfg);
                            if amount != 0.0 {
                                // amount = w·ΔI with w = overlap/band_len;
                                // ΔI = ±(I_z − I_{z+1}).
                                let w = amount / p.delta;
                                *image.at_mut(bin, r, c) += amount;
                                coeffs[bin * n_images + z] += sign * w;
                                coeffs[bin * n_images + z + 1] -= sign * w;
                                bins += 1;
                            }
                        }
                        stats.record(crate::stats::PairOutcome::Deposited { bins });
                    }
                }
            }
            // Exact variance under independent Poisson images.
            for bin in 0..n_bins {
                let mut var = 0.0;
                for z in 0..n_images {
                    let cf = coeffs[bin * n_images + z];
                    if cf != 0.0 {
                        var += cf * cf * view.at(z, r, c).max(0.0);
                    }
                }
                if var != 0.0 {
                    *variance.at_mut(bin, r, c) = var;
                }
            }
        }
    }
    Ok(VarianceReconstruction {
        image,
        variance,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;

    fn demo() -> (ScanGeometry, ReconstructionConfig) {
        let geom = ScanGeometry::demo(6, 6, 12, -50.0, 5.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 150);
        (geom, cfg)
    }

    fn ramp_stack(geom: &ScanGeometry, scale: f64) -> Vec<f64> {
        let (p, m, n) = (
            geom.wire.n_steps,
            geom.detector.n_rows,
            geom.detector.n_cols,
        );
        (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                scale * (200.0 - 11.0 * z as f64)
            })
            .collect()
    }

    #[test]
    fn image_matches_plain_reconstruction() {
        let (geom, cfg) = demo();
        let data = ramp_stack(&geom, 1.0);
        let view = ScanView::new(&data, 12, 6, 6).unwrap();
        let plain = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let with_var = reconstruct_with_variance(&view, &geom, &cfg).unwrap();
        assert_eq!(
            plain.image.data, with_var.image.data,
            "intensity path identical"
        );
        assert_eq!(plain.stats, with_var.stats);
    }

    #[test]
    fn variance_is_nonnegative_and_tracks_where_deposits_went() {
        let (geom, cfg) = demo();
        let data = ramp_stack(&geom, 1.0);
        let view = ScanView::new(&data, 12, 6, 6).unwrap();
        let out = reconstruct_with_variance(&view, &geom, &cfg).unwrap();
        for (i, &v) in out.variance.data.iter().enumerate() {
            assert!(v >= 0.0, "negative variance at {i}");
            // Variance only where intensity was deposited.
            if out.image.data[i] == 0.0 {
                assert_eq!(v, 0.0);
            } else {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn variance_scales_linearly_with_counts() {
        // Poisson: scaling all counts by k scales the signal by k but the
        // variance by k too, so SNR grows like √k.
        let (geom, cfg) = demo();
        let d1 = ramp_stack(&geom, 1.0);
        let d4 = ramp_stack(&geom, 4.0);
        let v1 = ScanView::new(&d1, 12, 6, 6).unwrap();
        let v4 = ScanView::new(&d4, 12, 6, 6).unwrap();
        let o1 = reconstruct_with_variance(&v1, &geom, &cfg).unwrap();
        let o4 = reconstruct_with_variance(&v4, &geom, &cfg).unwrap();
        for i in 0..o1.variance.data.len() {
            let (a, b) = (o1.variance.data[i], o4.variance.data[i]);
            assert!(
                (b - 4.0 * a).abs() <= 1e-9 * (1.0 + b.abs()),
                "variance must scale ×4: {a} vs {b}"
            );
        }
        // SNR doubles (√4).
        let (r, c) = (3, 3);
        if let Some(bin) = (0..cfg.n_depth_bins).find(|&b| o1.image.at(b, r, c) > 0.0) {
            let snr1 = o1.snr(bin, r, c);
            let snr4 = o4.snr(bin, r, c);
            assert!((snr4 / snr1 - 2.0).abs() < 1e-6, "{snr1} vs {snr4}");
        }
    }

    #[test]
    fn significance_separates_signal_from_nothing() {
        let (geom, cfg) = demo();
        // One strong drop at pixel (2, 2); flat everywhere else.
        let (p, m, n) = (12, 6, 6);
        let mut data = vec![400.0; p * m * n];
        for z in 6..p {
            data[(z * m + 2) * n + 2] = 100.0;
        }
        let view = ScanView::new(&data, p, m, n).unwrap();
        let out = reconstruct_with_variance(&view, &geom, &cfg).unwrap();
        let hits = out.significant_bins(2, 2, 3.0);
        assert!(!hits.is_empty(), "300-count drop must be ≫ 3σ");
        // A pixel with no differential has no significant bins.
        assert!(out.significant_bins(0, 0, 3.0).is_empty());
        // And the significant bin is where the intensity peak is.
        let peak = out.image.pixel_peak_depth(2, 2, &cfg).unwrap();
        let peak_bin = ((peak - cfg.depth_start) / cfg.bin_width()) as usize;
        assert!(hits.contains(&peak_bin));
    }
}
