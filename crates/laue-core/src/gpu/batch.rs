//! Fused-launch batching: many small reconstructions in one kernel grain.
//!
//! A beamline service sees streams of *small* jobs (quick alignment scans,
//! ROI re-runs) whose standalone cost is dominated by fixed per-launch and
//! per-transfer charges: each job pays the PCIe latency for its upload,
//! the kernel launch overhead, and the download latency, while its actual
//! pair work is microseconds. Continuous batching amortises the fixed
//! costs: one coalesced H2D transaction ships *every* batched job's pixel
//! table, wire coordinates, and intensity stack (one bus latency for the
//! whole batch), and one fused `set_two` launch covers the concatenated
//! launch domains of all jobs (one launch overhead).
//!
//! Correctness: each job keeps its own device buffers, and the fused
//! kernel maps its global thread id to a `(job, row, col, pair)` tuple
//! whose per-job ordering is exactly the standalone Linear dense mapping —
//! job-major, pair index fastest. Under the sequential executor, deposits
//! into any one job's output buffer therefore happen in precisely the
//! order the standalone run produces, so every batched job's image is
//! bit-identical to running it alone ([`reconstruct_batch_fused`] is
//! proptested against [`super::reconstruct_pipelined`] in `laue-serve`).
//!
//! The fused path is deliberately narrow — the batch former only routes
//! jobs here when they qualify:
//!
//! * whole scan resident as one slab (no chunking; these are small jobs),
//! * [`Layout::Flat1d`] + [`Triangulation::InKernel`] (no shared table
//!   state between tenants' uploads),
//! * atomic accumulation, no compaction, no integrity checks.
//!
//! Anything bigger or fancier takes the ordinary per-job engines.

use std::sync::atomic::{AtomicU64, Ordering};

use cuda_sim::{Device, DeviceBuffer, LaunchConfig};

use super::{
    eval_pair_body, AccumPlan, DepthTableRef, SlabBuffers, SlabUpload, ThreadMapping, BLOCK_SIZE,
    TRACE_BELOW_CUTOFF, TRACE_DEPOSITED, TRACE_DEPOSITS, TRACE_INVALID, TRACE_OUT_OF_RANGE,
};
use crate::config::{CompactionMode, IntegrityMode, ReconstructionConfig};
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::input::SlabSource;
use crate::output::DepthImage;
use crate::pair::PairPlan;
use crate::stats::ReconStats;
use crate::Result;

/// Extra index arithmetic the fused kernel pays per thread to locate its
/// job (offset-table lookup + rebase), on top of the standalone mapping's
/// charge inside [`eval_pair_body`].
const FUSED_LOOKUP_FLOPS: u64 = 4;

/// One job submitted to a fused batch.
pub struct BatchJob<'a> {
    /// The job's scan data (whole stack reads as one slab).
    pub source: &'a mut dyn SlabSource,
    /// The job's scan geometry.
    pub geom: &'a ScanGeometry,
    /// The job's reconstruction config.
    pub cfg: &'a ReconstructionConfig,
}

/// One job's share of a fused batch outcome.
#[derive(Debug, Clone)]
pub struct BatchJobResult {
    /// The job's depth image — bit-identical to a standalone run.
    pub image: DepthImage,
    /// The job's pair counters, attributed per job by the fused kernel.
    pub stats: ReconStats,
}

/// What one fused batch did.
#[derive(Debug, Clone)]
pub struct FusedBatch {
    /// Per-job outputs, in submission order.
    pub results: Vec<BatchJobResult>,
    /// Virtual makespan of the whole batch. Every job in the batch
    /// finishes at this time — the service charges it to each as that
    /// job's service interval.
    pub elapsed_s: f64,
    /// Bytes the single fused H2D transaction carried.
    pub upload_bytes: u64,
    /// Peak modeled device memory across the batch.
    pub peak_device_mem: u64,
    /// Fused kernel launches (always 1).
    pub launches: usize,
    /// Bus transactions: 1 fused upload + one download per job.
    pub transfers: usize,
}

/// Device bytes one fused job needs resident (pixel table + wire
/// coordinates + intensity stack + output bins). The batch former sizes
/// batches against the device budget with this.
pub fn fused_job_bytes(n_images: usize, n_rows: usize, n_cols: usize, n_bins: usize) -> u64 {
    let pixels = (n_rows * n_cols * 3) as u64;
    let wires = (n_images * 3) as u64;
    let intensity = (n_images * n_rows * n_cols) as u64;
    let output = (n_bins * n_rows * n_cols) as u64;
    (pixels + wires + intensity + output) * 8
}

/// Is a job's config shape one the fused path handles? (Size is the batch
/// former's call, via [`fused_job_bytes`]; this checks the mode knobs.)
pub fn fused_compatible(cfg: &ReconstructionConfig) -> bool {
    cfg.compaction == CompactionMode::Off
        && cfg.integrity == IntegrityMode::Off
        && matches!(
            cfg.accumulation,
            crate::config::AccumulationMode::Atomic | crate::config::AccumulationMode::Auto
        )
}

struct JobPlan {
    rows: usize,
    n_cols: usize,
    n_pairs: usize,
    total: u64,
}

/// Per-job trace counters the fused kernel attributes outcomes to (the
/// device's launch-record trace slots pool over the whole fused launch
/// and cannot be split per job afterwards).
struct JobCounters([AtomicU64; 5]);

impl JobCounters {
    fn new() -> JobCounters {
        JobCounters(std::array::from_fn(|_| AtomicU64::new(0)))
    }
    fn bump(&self, slot: usize) {
        self.0[slot].fetch_add(1, Ordering::Relaxed);
    }
    fn get(&self, slot: usize) -> u64 {
        self.0[slot].load(Ordering::Relaxed)
    }
}

/// Run a batch of small jobs as one fused upload + one fused launch.
///
/// All jobs' f64 inputs ship in a single coalesced H2D transaction and a
/// single `set_two_fused` kernel covers the concatenation of their launch
/// domains. Each job's output buffer, deposit order, and stats are
/// exactly those of a standalone [`super::reconstruct_with_options`] run
/// of the same job (sequential executor), so batching is invisible in the
/// results — only in the clock.
///
/// Errors with [`CoreError::InvalidConfig`] when a job's modes are not
/// fused-compatible, and with the device's capacity error when the batch
/// does not fit; the caller (the batch former) is expected to have sized
/// the batch with [`fused_job_bytes`] first.
pub fn reconstruct_batch_fused(device: &Device, jobs: &mut [BatchJob<'_>]) -> Result<FusedBatch> {
    if jobs.is_empty() {
        return Err(CoreError::InvalidConfig("empty fused batch".into()));
    }
    for job in jobs.iter() {
        super::validate_inputs(job.source, job.geom, job.cfg)?;
        if !fused_compatible(job.cfg) {
            return Err(CoreError::InvalidConfig(
                "fused batching requires --compaction off and --integrity off".into(),
            ));
        }
    }

    device.reset_meters();
    let stream = device.create_stream();

    // Host-side staging: every job's pixel table, wire coordinates, and
    // full intensity stack, plus its launch-domain geometry.
    let mut plans = Vec::with_capacity(jobs.len());
    let mut pix_host = Vec::with_capacity(jobs.len());
    let mut wire_host = Vec::with_capacity(jobs.len());
    let mut slab_host = Vec::with_capacity(jobs.len());
    let mut mappers = Vec::with_capacity(jobs.len());
    for job in jobs.iter_mut() {
        let (n_images, rows, n_cols) = (
            job.source.n_images(),
            job.source.n_rows(),
            job.source.n_cols(),
        );
        let mut pix = Vec::with_capacity(rows * n_cols * 3);
        for r in 0..rows {
            for c in 0..n_cols {
                let p = job.geom.detector.pixel_to_xyz_unchecked(r as f64, c as f64);
                pix.extend_from_slice(&[p.x, p.y, p.z]);
            }
        }
        let mut wire_flat = Vec::with_capacity(n_images * 3);
        for z in 0..n_images {
            let w = job.geom.wire.center_unchecked(z as f64);
            wire_flat.extend_from_slice(&[w.x, w.y, w.z]);
        }
        let slab = job.source.read_slab(0, rows)?;
        mappers.push(job.geom.mapper()?);
        plans.push(JobPlan {
            rows,
            n_cols,
            n_pairs: n_images - 1,
            total: (rows * n_cols * (n_images - 1)) as u64,
        });
        pix_host.push(pix);
        wire_host.push(wire_flat);
        slab_host.push(slab);
    }

    // Device buffers, then ONE coalesced transaction for every job's f64
    // payload — the whole batch pays the PCIe latency once.
    let mut pixel_bufs = Vec::with_capacity(jobs.len());
    let mut wire_bufs = Vec::with_capacity(jobs.len());
    let mut intensity_bufs = Vec::with_capacity(jobs.len());
    let mut output_bufs = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        pixel_bufs.push(device.alloc::<f64>(pix_host[j].len())?);
        wire_bufs.push(device.alloc::<f64>(wire_host[j].len())?);
        intensity_bufs.push(device.alloc::<f64>(slab_host[j].len())?);
        output_bufs.push(
            device.alloc_zeroed::<f64>(job.cfg.n_depth_bins * plans[j].rows * plans[j].n_cols)?,
        );
    }
    let mut copies: Vec<(&DeviceBuffer<f64>, &[f64])> = Vec::with_capacity(jobs.len() * 3);
    for j in 0..jobs.len() {
        copies.push((&pixel_bufs[j], &pix_host[j]));
        copies.push((&wire_bufs[j], &wire_host[j]));
        copies.push((&intensity_bufs[j], &slab_host[j]));
    }
    let upload_bytes = copies.iter().map(|(_, d)| d.len() as u64 * 8).sum();
    let span = device.memcpy_htod_batched(stream, &copies)?;
    let ready_at = span.end_s;

    // Rebuild each job's upload descriptor so the fused kernel can reuse
    // the standalone per-pair evaluation verbatim.
    let uploads: Vec<SlabUpload> = (0..jobs.len())
        .map(|j| SlabUpload {
            buffers: SlabBuffers::Flat {
                intensity: intensity_bufs[j].clone(),
                output: output_bufs[j].clone(),
            },
            mapping: ThreadMapping::Linear,
            pixels: pixel_bufs[j].clone(),
            depth_table: DepthTableRef::None,
            host_flops: 0,
            rows: plans[j].rows,
            row0: 0,
            ready_at,
            sparsity: None,
            list_buf: None,
            counter_buf: None,
            accum: AccumPlan::Atomic { fallback: false },
        })
        .collect();

    // Concatenated launch domain: job-major, each job's interior ordering
    // identical to its standalone Linear dense mapping.
    let mut offsets = Vec::with_capacity(jobs.len() + 1);
    let mut total_all = 0u64;
    for plan in &plans {
        offsets.push(total_all);
        total_all += plan.total;
    }
    offsets.push(total_all);

    let counters: Vec<JobCounters> = (0..jobs.len()).map(|_| JobCounters::new()).collect();
    let cfgs: Vec<&ReconstructionConfig> = jobs.iter().map(|j| j.cfg).collect();

    device.wait_until(stream, ready_at);
    let kernel = |ctx: &mut cuda_sim::ThreadCtx<'_>| {
        let id = ctx.global_id().x;
        if id >= total_all {
            return;
        }
        // Locate the job (offset-table walk) and rebase into its domain.
        ctx.charge_flops(FUSED_LOOKUP_FLOPS);
        let j = offsets.partition_point(|&o| o <= id) - 1;
        let lid = (id - offsets[j]) as usize;
        let plan = &plans[j];
        // Standalone Linear dense mapping: pair index fastest, so each
        // output cell sees its deposits in ascending step order.
        let z = lid % plan.n_pairs;
        let pc = lid / plan.n_pairs;
        let (r, c) = (pc / plan.n_cols, pc % plan.n_cols);
        let tally = |slot: usize, ctx: &mut cuda_sim::ThreadCtx<'_>| {
            counters[j].bump(slot);
            ctx.trace(slot);
        };
        match eval_pair_body(
            ctx,
            &uploads[j],
            &wire_bufs[j],
            &mappers[j],
            cfgs[j],
            plan.rows,
            plan.n_cols,
            r,
            c,
            z,
        ) {
            PairPlan::BelowCutoff => tally(TRACE_BELOW_CUTOFF, ctx),
            PairPlan::InvalidGeometry => tally(TRACE_INVALID, ctx),
            PairPlan::OutOfRange => tally(TRACE_OUT_OF_RANGE, ctx),
            PairPlan::Deposit(dep) => {
                tally(TRACE_DEPOSITED, ctx);
                for bin in dep.first_bin..dep.last_bin {
                    let amount = dep.amount(bin, cfgs[j]);
                    if amount != 0.0 {
                        ctx.atomic_add_f64(
                            &output_bufs[j],
                            (bin * plan.rows + r) * plan.n_cols + c,
                            amount,
                        );
                        tally(TRACE_DEPOSITS, ctx);
                    }
                }
            }
        }
    };
    device.launch_on(
        stream,
        "set_two_fused",
        LaunchConfig::linear(total_all, BLOCK_SIZE),
        kernel,
    )?;

    // Per-job downloads (each still pays its own D2H latency — the fused
    // win is on the upload and the launch).
    let mut results = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let plan = &plans[j];
        let mut host = vec![0.0f64; job.cfg.n_depth_bins * plan.rows * plan.n_cols];
        device.memcpy_dtoh_on(stream, &output_bufs[j], &mut host)?;
        let mut image = DepthImage::zeroed(job.cfg.n_depth_bins, plan.rows, plan.n_cols);
        image.assign_rows(0, plan.rows, &host)?;
        let stats = ReconStats {
            pairs_total: plan.total,
            pairs_below_cutoff: counters[j].get(TRACE_BELOW_CUTOFF),
            pairs_invalid_geometry: counters[j].get(TRACE_INVALID),
            pairs_out_of_range: counters[j].get(TRACE_OUT_OF_RANGE),
            pairs_deposited: counters[j].get(TRACE_DEPOSITED),
            deposits: counters[j].get(TRACE_DEPOSITS),
            ..ReconStats::default()
        };
        results.push(BatchJobResult { image, stats });
    }

    let elapsed_s = device.synchronize();
    Ok(FusedBatch {
        results,
        elapsed_s,
        upload_bytes,
        peak_device_mem: device.mem_peak(),
        launches: 1,
        transfers: 1 + jobs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::super::{reconstruct_with_options, GpuOptions, Layout};
    use super::*;
    use crate::input::InMemorySlabSource;
    use cuda_sim::DeviceProps;

    struct SmallScan {
        geom: ScanGeometry,
        data: Vec<f64>,
        steps: usize,
        rows: usize,
        cols: usize,
    }

    fn small_scan(rows: usize, cols: usize, steps: usize, seed: u64) -> SmallScan {
        let geom = ScanGeometry::demo(rows, cols, steps, -60.0, 6.0).unwrap();
        let data: Vec<f64> = (0..steps * rows * cols)
            .map(|i| {
                let z = i / (rows * cols);
                let px = i % (rows * cols);
                900.0 - 29.0 * z as f64 - ((px as u64 * 31 + seed * 7) % 11) as f64 * 13.0
            })
            .collect();
        SmallScan {
            geom,
            data,
            steps,
            rows,
            cols,
        }
    }

    fn source_of(scan: &SmallScan) -> InMemorySlabSource {
        InMemorySlabSource::new(scan.data.clone(), scan.steps, scan.rows, scan.cols).unwrap()
    }

    #[test]
    fn fused_batch_is_bit_identical_to_standalone_runs() {
        let scans = [
            small_scan(6, 6, 8, 1),
            small_scan(4, 9, 10, 2),
            small_scan(8, 5, 6, 3),
        ];
        let cfgs = [
            ReconstructionConfig::new(-1500.0, 1500.0, 40),
            ReconstructionConfig::new(-2000.0, 2000.0, 64),
            ReconstructionConfig::new(-1000.0, 1000.0, 32),
        ];
        let device = Device::new(DeviceProps::tiny(64 * 1024 * 1024));

        // Standalone references, one run each.
        let mut standalone = Vec::new();
        for (scan, cfg) in scans.iter().zip(&cfgs) {
            let mut src = source_of(scan);
            standalone.push(
                reconstruct_with_options(
                    &device,
                    &mut src,
                    &scan.geom,
                    cfg,
                    GpuOptions {
                        layout: Layout::Flat1d,
                        ..GpuOptions::default()
                    },
                )
                .unwrap(),
            );
        }

        let mut sources: Vec<InMemorySlabSource> = scans.iter().map(source_of).collect();
        let mut jobs: Vec<BatchJob<'_>> = sources
            .iter_mut()
            .zip(scans.iter())
            .zip(cfgs.iter())
            .map(|((source, scan), cfg)| BatchJob {
                source,
                geom: &scan.geom,
                cfg,
            })
            .collect();
        let batch = reconstruct_batch_fused(&device, &mut jobs).unwrap();

        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.launches, 1);
        assert_eq!(batch.transfers, 4, "1 fused upload + 3 downloads");
        for (got, want) in batch.results.iter().zip(&standalone) {
            assert_eq!(
                got.image.data, want.image.data,
                "fused must be bit-identical"
            );
            assert_eq!(
                got.stats, want.stats,
                "per-job stats must attribute exactly"
            );
        }
    }

    #[test]
    fn fused_batch_beats_sequential_singles_on_the_clock() {
        let scans: Vec<_> = (0..6).map(|i| small_scan(5, 5, 8, 10 + i)).collect();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 40);
        let device = Device::new(DeviceProps::tesla_m2070());

        let mut serial = 0.0;
        for scan in &scans {
            let mut src = source_of(scan);
            let out = reconstruct_with_options(
                &device,
                &mut src,
                &scan.geom,
                &cfg,
                GpuOptions::default(),
            )
            .unwrap();
            serial += out.elapsed_s;
        }

        let mut sources: Vec<InMemorySlabSource> = scans.iter().map(source_of).collect();
        let mut jobs: Vec<BatchJob<'_>> = sources
            .iter_mut()
            .zip(scans.iter())
            .map(|(source, scan)| BatchJob {
                source,
                geom: &scan.geom,
                cfg: &cfg,
            })
            .collect();
        let batch = reconstruct_batch_fused(&device, &mut jobs).unwrap();
        assert!(
            batch.elapsed_s < serial / 1.3,
            "fused {:.6e} s should beat 6 serial singles {:.6e} s by ≥ 1.3×",
            batch.elapsed_s,
            serial
        );
    }

    #[test]
    fn fused_batch_rejects_incompatible_modes() {
        let scan = small_scan(4, 4, 6, 7);
        let mut cfg = ReconstructionConfig::new(-1000.0, 1000.0, 16);
        cfg.integrity = IntegrityMode::Verify;
        let mut src = source_of(&scan);
        let device = Device::new(DeviceProps::tiny(8 * 1024 * 1024));
        let mut jobs = [BatchJob {
            source: &mut src,
            geom: &scan.geom,
            cfg: &cfg,
        }];
        assert!(reconstruct_batch_fused(&device, &mut jobs).is_err());
        assert!(reconstruct_batch_fused(&device, &mut []).is_err());
    }
}
