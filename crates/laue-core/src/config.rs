//! Reconstruction parameters.

use crate::error::CoreError;
use crate::Result;
use laue_geometry::WireEdge;

/// How the engines exploit differential-stack sparsity.
///
/// Every mode produces bit-identical images: the sparsity pass only removes
/// work that provably deposits nothing (sub-cutoff differentials and pairs
/// whose wire-shadow band misses the reconstruction window for an entire
/// detector row). The modes differ only in whether the prescan/compaction
/// cost is paid and when the compacted launch is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionMode {
    /// Dense traversal of the full `(row, col, pair)` domain. No prescan,
    /// no culling — the behaviour of every release before this knob.
    #[default]
    Off,
    /// Always cull wire-shadowed rows and run the metered prescan, then
    /// pick dense or compacted execution per slab by comparing the modeled
    /// cost of both launches on the target device (see
    /// `laue_core::planner`).
    Auto,
    /// Always cull, prescan, and launch over the compacted work-list,
    /// regardless of density.
    On,
}

/// How the GPU engines accumulate depth intensities into the output image.
///
/// Every strategy produces bit-identical images: per pixel the deposits
/// land in the same ascending-depth order whether they go straight to
/// device memory or stage through a per-block shared tile first. The
/// strategies differ only in modeled cost — the privatized path replaces
/// one global CAS atomic per deposit with cheap shared-memory updates plus
/// a single global add per touched `(pixel, bin)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccumulationMode {
    /// Per-deposit `atomicAdd(double)` CAS loop on device memory — the
    /// paper's §III-C scheme and the behaviour of every release before
    /// this knob.
    #[default]
    Atomic,
    /// Per-block privatized depth-bin tiles in shared memory, committed by
    /// one global add per touched `(pixel, bin)` cell. Slabs whose bin
    /// tile exceeds the device's shared memory fall back to the atomic
    /// path (recorded in the stats).
    Privatized,
    /// Pick per slab by comparing the modeled kernel cost of both
    /// strategies on the target device (see `laue_core::planner`); slabs
    /// whose bin tile cannot fit shared memory always run atomic.
    Auto,
}

/// End-to-end data-integrity policy for a run (see `laue_core::integrity`).
///
/// Silent corruption — a flipped bit in a DMA payload, a wrong sum from a
/// "successful" kernel, a hung launch — carries no error code, so the only
/// defence is redundant checking. The modes trade verification cost for
/// coverage; every mode still produces bit-identical images on a healthy
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No integrity checking (the behaviour of every release before this
    /// knob). Silent corruption propagates to the output undetected.
    #[default]
    Off,
    /// Detect: checksummed transfers (CRC64 before/after the wire),
    /// ABFT-style per-slab depth-sum verification against a redundant host
    /// computation, and a per-launch watchdog deadline. A detected
    /// corruption aborts the run with a detected-corruption error rather
    /// than exporting bad data.
    Verify,
    /// Detect and repair: everything `verify` does, plus quarantine of the
    /// failed slab, bounded re-execution with exponential backoff, and a
    /// host-side repair path if the device keeps corrupting. The run
    /// completes bit-identical to a fault-free run, flagged
    /// `INTEGRITY-DEGRADED` when anything had to be corrected.
    Scrub,
}

impl IntegrityMode {
    /// Stable lower-case label used by the CLI and the run journal.
    pub fn label(self) -> &'static str {
        match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Verify => "verify",
            IntegrityMode::Scrub => "scrub",
        }
    }

    /// Parse a CLI spelling (`off`, `verify`, `scrub`).
    pub fn parse(s: &str) -> Option<IntegrityMode> {
        match s {
            "off" => Some(IntegrityMode::Off),
            "verify" => Some(IntegrityMode::Verify),
            "scrub" => Some(IntegrityMode::Scrub),
            _ => None,
        }
    }

    /// Whether any integrity checking runs at all.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, IntegrityMode::Off)
    }

    /// Whether a detected corruption is repaired in place (re-execute /
    /// host fallback) instead of aborting the run.
    #[inline]
    pub fn repairs(self) -> bool {
        matches!(self, IntegrityMode::Scrub)
    }
}

/// How the execution strategy for a run is chosen.
///
/// Every plan produces bit-identical images — layout, pipeline depth,
/// compaction, and accumulation are all correctness-free choices — so the
/// planner only moves modeled cost around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Honour the explicitly configured flags (`--engine`, `--compaction`,
    /// `--accumulation`, `--pipeline-depth`, …) verbatim. Per-flag `auto`
    /// modes still resolve per slab via the cost model.
    #[default]
    Fixed,
    /// Enumerate candidate execution plans (layout × table placement ×
    /// pipeline depth, with per-slab compaction/accumulation resolved by
    /// the same cost model), predict each candidate's virtual cost with
    /// the calibrated cuda-sim model, and run the argmin. The chosen plan
    /// and its predicted cost are reported in the run's explain block.
    Auto,
}

impl PlanMode {
    /// Stable lower-case label used by the CLI and the run journal.
    pub fn label(self) -> &'static str {
        match self {
            PlanMode::Fixed => "fixed",
            PlanMode::Auto => "auto",
        }
    }

    /// Parse a CLI spelling (`fixed`, `auto`).
    pub fn parse(s: &str) -> Option<PlanMode> {
        match s {
            "fixed" => Some(PlanMode::Fixed),
            "auto" => Some(PlanMode::Auto),
            _ => None,
        }
    }
}

impl AccumulationMode {
    /// Stable lower-case label used by the CLI and the run journal.
    pub fn label(self) -> &'static str {
        match self {
            AccumulationMode::Atomic => "atomic",
            AccumulationMode::Privatized => "privatized",
            AccumulationMode::Auto => "auto",
        }
    }

    /// Parse a CLI spelling (`atomic`, `privatized`, `auto`).
    pub fn parse(s: &str) -> Option<AccumulationMode> {
        match s {
            "atomic" => Some(AccumulationMode::Atomic),
            "privatized" => Some(AccumulationMode::Privatized),
            "auto" => Some(AccumulationMode::Auto),
            _ => None,
        }
    }

    /// Whether this mode ever privatizes (i.e. the engine should consider
    /// the shared-memory tile at all).
    #[inline]
    pub fn wants_privatized(self) -> bool {
        !matches!(self, AccumulationMode::Atomic)
    }
}

impl CompactionMode {
    /// Stable lower-case label used by the CLI and the run journal.
    pub fn label(self) -> &'static str {
        match self {
            CompactionMode::Off => "off",
            CompactionMode::Auto => "auto",
            CompactionMode::On => "on",
        }
    }

    /// Parse a CLI spelling (`off`, `auto`, `on`).
    pub fn parse(s: &str) -> Option<CompactionMode> {
        match s {
            "off" => Some(CompactionMode::Off),
            "auto" => Some(CompactionMode::Auto),
            "on" => Some(CompactionMode::On),
            _ => None,
        }
    }

    /// Whether this mode runs the sparsity pass at all.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, CompactionMode::Off)
    }
}

/// Default watchdog deadline multiplier: generous enough that cost-model
/// prediction error (< 15 % per the planner's validation sweep) never trips
/// it, tight enough that an injected multi-× stall always does.
pub const DEFAULT_WATCHDOG_MULTIPLIER: f64 = 4.0;

/// Parameters of a depth reconstruction run.
///
/// ```
/// use laue_core::ReconstructionConfig;
///
/// let mut cfg = ReconstructionConfig::new(-100.0, 100.0, 50);
/// cfg.intensity_cutoff = 2.5; // the paper's d_cutoff
/// cfg.validate().unwrap();
/// assert_eq!(cfg.bin_width(), 4.0);
/// assert_eq!(cfg.bin_center(0), -98.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructionConfig {
    /// First reconstructed depth, µm (depths below are discarded).
    pub depth_start: f64,
    /// One-past-last reconstructed depth, µm.
    pub depth_end: f64,
    /// Number of depth bins between `depth_start` and `depth_end`.
    pub n_depth_bins: usize,
    /// Differential intensities with `|ΔI|` below this are skipped — the
    /// paper's `d_cutoff`; raising it lowers the "pixel percentage" of
    /// Fig 9.
    pub intensity_cutoff: f64,
    /// Which wire edge the reconstruction follows.
    pub wire_edge: WireEdge,
    /// Detector rows shipped to the device per slab (the paper's Fig 2
    /// passes 2 of 6 rows at a time). `None` lets the GPU engine pick the
    /// largest slab that fits device memory.
    pub rows_per_slab: Option<usize>,
    /// Ring depth of the GPU transfer/compute pipeline: how many slab slots
    /// may be in flight at once (1 = the paper's serial pipeline, 2 =
    /// double buffering). `None` lets the engine choose per its defaults.
    pub pipeline_depth: Option<usize>,
    /// Sparsity strategy: wire-shadow row culling plus active-pair
    /// compaction. Defaults to [`CompactionMode::Off`] (dense traversal).
    pub compaction: CompactionMode,
    /// Depth-intensity accumulation strategy on the GPU engines. Defaults
    /// to [`AccumulationMode::Atomic`] (the paper-faithful CAS loop); CPU
    /// engines ignore it.
    pub accumulation: AccumulationMode,
    /// Whether the execution plan is taken from the flags verbatim
    /// ([`PlanMode::Fixed`], the default) or chosen by the cost-model
    /// planner ([`PlanMode::Auto`]).
    pub plan: PlanMode,
    /// End-to-end data-integrity policy (checksummed transfers, ABFT
    /// depth-sum verification, launch watchdog, scrub/re-execute).
    /// Defaults to [`IntegrityMode::Off`].
    pub integrity: IntegrityMode,
    /// Watchdog deadline per kernel launch, as a multiple of the cost
    /// model's predicted kernel time: a launch observed to take longer
    /// than `watchdog_multiplier ×` the prediction is treated as hung
    /// (only with [`IntegrityMode`] ≠ `Off`).
    pub watchdog_multiplier: f64,
}

impl ReconstructionConfig {
    /// A reasonable default over a given depth window.
    pub fn new(depth_start: f64, depth_end: f64, n_depth_bins: usize) -> ReconstructionConfig {
        ReconstructionConfig {
            depth_start,
            depth_end,
            n_depth_bins,
            intensity_cutoff: 0.0,
            wire_edge: WireEdge::Leading,
            rows_per_slab: None,
            pipeline_depth: None,
            compaction: CompactionMode::default(),
            accumulation: AccumulationMode::default(),
            plan: PlanMode::default(),
            integrity: IntegrityMode::default(),
            watchdog_multiplier: DEFAULT_WATCHDOG_MULTIPLIER,
        }
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if !self.depth_start.is_finite() || !self.depth_end.is_finite() {
            return Err(CoreError::InvalidConfig(
                "depth range must be finite".into(),
            ));
        }
        if self.depth_end <= self.depth_start {
            return Err(CoreError::InvalidConfig(format!(
                "depth_end {} must exceed depth_start {}",
                self.depth_end, self.depth_start
            )));
        }
        if self.n_depth_bins == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one depth bin".into(),
            ));
        }
        if self.intensity_cutoff < 0.0 || !self.intensity_cutoff.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "intensity cutoff {} must be ≥ 0 and finite",
                self.intensity_cutoff
            )));
        }
        if self.rows_per_slab == Some(0) {
            return Err(CoreError::InvalidConfig("rows_per_slab must be ≥ 1".into()));
        }
        if self.pipeline_depth == Some(0) {
            return Err(CoreError::InvalidConfig(
                "pipeline_depth must be ≥ 1".into(),
            ));
        }
        if !self.watchdog_multiplier.is_finite() || self.watchdog_multiplier <= 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "watchdog multiplier {} must be finite and > 1",
                self.watchdog_multiplier
            )));
        }
        Ok(())
    }

    /// Width of one depth bin, µm.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        (self.depth_end - self.depth_start) / self.n_depth_bins as f64
    }

    /// Centre depth of bin `k`, µm.
    #[inline]
    pub fn bin_center(&self, k: usize) -> f64 {
        self.depth_start + (k as f64 + 0.5) * self.bin_width()
    }

    /// All bin centres, in order.
    pub fn bin_centers(&self) -> Vec<f64> {
        (0..self.n_depth_bins).map(|k| self.bin_center(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = ReconstructionConfig::new(-100.0, 100.0, 50);
        c.validate().unwrap();
        assert_eq!(c.bin_width(), 4.0);
        assert_eq!(c.bin_center(0), -98.0);
        assert_eq!(c.bin_center(49), 98.0);
        assert_eq!(c.bin_centers().len(), 50);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let base = ReconstructionConfig::new(0.0, 100.0, 10);
        let mut c = base.clone();
        c.depth_end = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.depth_start = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.n_depth_bins = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.intensity_cutoff = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.rows_per_slab = Some(0);
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.pipeline_depth = Some(0);
        assert!(c.validate().is_err());
        c.pipeline_depth = Some(3);
        assert!(c.validate().is_ok());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn compaction_mode_round_trips_and_defaults_off() {
        let c = ReconstructionConfig::new(-100.0, 100.0, 50);
        assert_eq!(c.compaction, CompactionMode::Off);
        assert!(!c.compaction.enabled());
        for m in [
            CompactionMode::Off,
            CompactionMode::Auto,
            CompactionMode::On,
        ] {
            assert_eq!(CompactionMode::parse(m.label()), Some(m));
        }
        assert_eq!(CompactionMode::parse("dense"), None);
        assert!(CompactionMode::Auto.enabled() && CompactionMode::On.enabled());
    }

    #[test]
    fn accumulation_mode_round_trips_and_defaults_atomic() {
        let c = ReconstructionConfig::new(-100.0, 100.0, 50);
        assert_eq!(c.accumulation, AccumulationMode::Atomic);
        assert!(!c.accumulation.wants_privatized());
        for m in [
            AccumulationMode::Atomic,
            AccumulationMode::Privatized,
            AccumulationMode::Auto,
        ] {
            assert_eq!(AccumulationMode::parse(m.label()), Some(m));
        }
        assert_eq!(AccumulationMode::parse("shared"), None);
        assert!(AccumulationMode::Privatized.wants_privatized());
        assert!(AccumulationMode::Auto.wants_privatized());
    }

    #[test]
    fn integrity_mode_round_trips_and_defaults_off() {
        let c = ReconstructionConfig::new(-100.0, 100.0, 50);
        assert_eq!(c.integrity, IntegrityMode::Off);
        assert!(!c.integrity.enabled());
        assert_eq!(c.watchdog_multiplier, DEFAULT_WATCHDOG_MULTIPLIER);
        for m in [
            IntegrityMode::Off,
            IntegrityMode::Verify,
            IntegrityMode::Scrub,
        ] {
            assert_eq!(IntegrityMode::parse(m.label()), Some(m));
        }
        assert_eq!(IntegrityMode::parse("abft"), None);
        assert!(IntegrityMode::Verify.enabled() && !IntegrityMode::Verify.repairs());
        assert!(IntegrityMode::Scrub.enabled() && IntegrityMode::Scrub.repairs());
    }

    #[test]
    fn watchdog_multiplier_is_validated() {
        let mut c = ReconstructionConfig::new(-100.0, 100.0, 50);
        c.watchdog_multiplier = 1.0;
        assert!(c.validate().is_err());
        c.watchdog_multiplier = f64::INFINITY;
        assert!(c.validate().is_err());
        c.watchdog_multiplier = 2.5;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn plan_mode_round_trips_and_defaults_fixed() {
        let c = ReconstructionConfig::new(-100.0, 100.0, 50);
        assert_eq!(c.plan, PlanMode::Fixed);
        for m in [PlanMode::Fixed, PlanMode::Auto] {
            assert_eq!(PlanMode::parse(m.label()), Some(m));
        }
        assert_eq!(PlanMode::parse("best"), None);
    }

    #[test]
    fn bin_centers_span_range_symmetrically() {
        let c = ReconstructionConfig::new(10.0, 20.0, 4);
        let centers = c.bin_centers();
        assert!((centers[0] - 11.25).abs() < 1e-12);
        assert!((centers[3] - 18.75).abs() < 1e-12);
        // First and last centres are half a bin from the range edges.
        assert!((centers[0] - c.depth_start - c.bin_width() / 2.0).abs() < 1e-12);
    }
}
