//! Wire-position calibration.
//!
//! Depth accuracy stands or falls with knowing where the wire actually is:
//! a few µm of error in the wire's starting position shifts every
//! reconstructed depth. Beamlines calibrate by scanning a sample with a
//! known bright feature and fitting the wire origin so the *predicted*
//! occlusion transitions match the *observed* ones.
//!
//! [`calibrate_wire_origin`] implements that fit: given observations
//! "pixel (r, c) went dark between steps z and z+1", it minimises the
//! squared disagreement (in scan steps) between predicted and observed
//! transition positions over an offset of the wire origin **along the scan
//! direction**, using a coarse-to-fine grid descent (robust,
//! derivative-free, and plenty fast at calibration sizes).
//!
//! The fit is deliberately one-dimensional: with the detector far from the
//! wire, the rays from sample to detector are nearly parallel, so moving
//! the wire *along a ray* (e.g. toward the detector) barely changes any
//! edge timing — that transverse direction is close to unobservable from
//! transition data and must be calibrated by other means (it is also far
//! less important: depth errors couple to the scan-direction component).

use laue_geometry::Vec3;

use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::Result;

/// One calibration observation: the scan step at which a pixel's intensity
/// dropped (the leading edge crossed its source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Detector row.
    pub row: usize,
    /// Detector column.
    pub col: usize,
    /// Known depth of the calibration source seen by this pixel, µm.
    pub source_depth: f64,
    /// Fractional scan step at which the occlusion began (e.g. `z + 0.5`
    /// when the drop happened between images `z` and `z+1`).
    pub observed_step: f64,
}

/// Result of a calibration fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The corrected geometry (wire origin shifted by `offset`).
    pub geometry: ScanGeometry,
    /// The fitted origin offset, µm (along the scan direction).
    pub offset: Vec3,
    /// The signed offset magnitude along the scan direction, µm.
    pub offset_along_scan: f64,
    /// Root-mean-square residual of the fit, in scan steps.
    pub rms_steps: f64,
}

/// Predicted fractional step at which the leading edge starts occluding
/// `source_depth` for the given pixel: solved by bisection on the exact
/// occlusion test (the transition is monotone in the scan coordinate).
fn predicted_step(
    geom: &ScanGeometry,
    mapper: &laue_geometry::DepthMapper,
    row: usize,
    col: usize,
    source_depth: f64,
) -> Result<Option<f64>> {
    let pixel = geom.detector.pixel_to_xyz(row, col)?;
    let n = geom.wire.n_steps;
    let occluded_at = |t: f64| {
        let c = geom.wire.center_unchecked(t);
        mapper.occludes(source_depth, pixel, c)
    };
    // Must start visible; find the first occluded step. (The trailing edge
    // may re-expose the source before the scan ends — the scan is often
    // longer than the wire's shadow — so only the *onset* is fitted.)
    if occluded_at(0.0) {
        return Ok(None);
    }
    let Some(first_dark) = (1..n).find(|&z| occluded_at(z as f64)) else {
        return Ok(None);
    };
    let (mut lo, mut hi) = (first_dark as f64 - 1.0, first_dark as f64);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if occluded_at(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

fn rms_residual(geom: &ScanGeometry, observations: &[Transition]) -> Result<f64> {
    let mapper = geom.mapper()?;
    let mut sum = 0.0;
    let mut used = 0usize;
    for obs in observations {
        match predicted_step(geom, &mapper, obs.row, obs.col, obs.source_depth)? {
            Some(pred) => {
                let r = pred - obs.observed_step;
                sum += r * r;
                used += 1;
            }
            None => {
                // A candidate origin that pushes the transition out of the
                // scan is heavily penalised rather than rejected, keeping
                // the objective continuous-ish for the grid descent.
                sum += (geom.wire.n_steps as f64).powi(2);
                used += 1;
            }
        }
    }
    if used == 0 {
        return Err(CoreError::InvalidConfig(
            "no usable calibration observations".into(),
        ));
    }
    Ok((sum / used as f64).sqrt())
}

fn with_offset(geom: &ScanGeometry, offset: Vec3) -> Result<ScanGeometry> {
    let wire = laue_geometry::WireGeometry::new(
        geom.wire.axis,
        geom.wire.radius,
        geom.wire.origin + offset,
        geom.wire.step,
        geom.wire.n_steps,
    )?;
    Ok(ScanGeometry {
        beam: geom.beam,
        wire,
        detector: geom.detector.clone(),
    })
}

/// Fit a wire-origin correction from observed occlusion transitions.
///
/// The search spans `±search_um` along the scan direction, refined over
/// `levels` coarse-to-fine grid passes (each pass shrinks the span 4×;
/// 6 levels over ±50 µm resolve to ≈ 0.01 µm).
pub fn calibrate_wire_origin(
    geom: &ScanGeometry,
    observations: &[Transition],
    search_um: f64,
    levels: usize,
) -> Result<Calibration> {
    if observations.len() < 2 {
        return Err(CoreError::InvalidConfig(
            "calibration needs at least two transitions".into(),
        ));
    }
    if search_um.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || levels == 0 {
        return Err(CoreError::InvalidConfig("bad search parameters".into()));
    }
    geom.mapper()?; // validates the base geometry
    let step_dir = geom
        .wire
        .step
        .normalized()
        .ok_or_else(|| CoreError::InvalidConfig("degenerate wire step".into()))?;

    let mut center = 0.0f64;
    let mut span = search_um;
    let mut best = (f64::INFINITY, 0.0f64);
    for _ in 0..levels {
        for i in -4i32..=4 {
            let a = center + span * i as f64 / 4.0;
            let candidate = with_offset(geom, step_dir * a)?;
            let rms = rms_residual(&candidate, observations)?;
            if rms < best.0 {
                best = (rms, a);
            }
        }
        center = best.1;
        span /= 4.0;
    }
    let offset = step_dir * best.1;
    let geometry = with_offset(geom, offset)?;
    Ok(Calibration {
        geometry,
        offset,
        offset_along_scan: best.1,
        rms_steps: best.0,
    })
}

/// Extract transitions from a rendered stack: for each listed pixel, find
/// the largest single-step intensity drop. This is how a calibration scan's
/// images become [`Transition`]s.
pub fn transitions_from_stack(
    stack: &crate::ScanView<'_>,
    pixels: &[(usize, usize, f64)], // (row, col, known source depth)
) -> Vec<Transition> {
    let mut out = Vec::with_capacity(pixels.len());
    for &(row, col, source_depth) in pixels {
        let mut best = (0usize, 0.0f64);
        for z in 0..stack.n_images - 1 {
            let drop = stack.at(z, row, col) - stack.at(z + 1, row, col);
            if drop > best.1 {
                best = (z, drop);
            }
        }
        if best.1 > 0.0 {
            out.push(Transition {
                row,
                col,
                source_depth,
                observed_step: best.0 as f64 + 0.5,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScanView;

    /// Render a calibration stack with sources of known depth using a
    /// *shifted* wire, then check the fit recovers the shift.
    fn render_with_shift(true_geom: &ScanGeometry, pixels: &[(usize, usize, f64)]) -> Vec<f64> {
        let mapper = true_geom.mapper().unwrap();
        let (p, m, n) = (
            true_geom.wire.n_steps,
            true_geom.detector.n_rows,
            true_geom.detector.n_cols,
        );
        let mut stack = vec![5.0; p * m * n];
        for &(r, c, depth) in pixels {
            let pixel = true_geom.detector.pixel_to_xyz(r, c).unwrap();
            for z in 0..p {
                if !mapper.occludes(depth, pixel, true_geom.wire.center(z).unwrap()) {
                    stack[(z * m + r) * n + c] += 300.0;
                }
            }
        }
        stack
    }

    fn nominal() -> ScanGeometry {
        ScanGeometry::demo(8, 8, 48, -80.0, 4.0).unwrap()
    }

    fn calibration_pixels(geom: &ScanGeometry) -> Vec<(usize, usize, f64)> {
        // Sources at mid-sweep depth for a spread of pixels.
        let mapper = geom.mapper().unwrap();
        let mut out = Vec::new();
        for &(r, c) in &[(1usize, 1usize), (1, 6), (4, 4), (6, 2), (6, 6), (3, 5)] {
            let (lo, hi) = crate::planning::sweep_window(geom, &mapper, r, c).unwrap();
            out.push((r, c, lo + (hi - lo) * 0.5));
        }
        out
    }

    #[test]
    fn recovers_a_known_wire_shift() {
        let nominal_geom = nominal();
        let pixels = calibration_pixels(&nominal_geom);
        // The *true* wire is shifted 18 µm along the scan direction, plus a
        // small transverse perturbation (which edge timings barely see and
        // the 1-D fit deliberately does not model).
        let true_shift = Vec3::new(0.0, 2.0, 18.0);
        let true_geom = with_offset(&nominal_geom, true_shift).unwrap();
        let stack = render_with_shift(&true_geom, &pixels);
        let view = ScanView::new(&stack, 48, 8, 8).unwrap();
        let obs = transitions_from_stack(&view, &pixels);
        assert_eq!(
            obs.len(),
            pixels.len(),
            "every source must produce a transition"
        );

        let cal = calibrate_wire_origin(&nominal_geom, &obs, 50.0, 6).unwrap();
        assert!(
            (cal.offset_along_scan - 18.0).abs() < 2.0,
            "fitted {} µm vs true 18 µm (rms {})",
            cal.offset_along_scan,
            cal.rms_steps
        );
        assert!(
            cal.rms_steps < 1.0,
            "fit must land within a step: {}",
            cal.rms_steps
        );
        // The corrected geometry predicts the observations better than the
        // nominal one.
        let before = rms_residual(&nominal_geom, &obs).unwrap();
        let after = rms_residual(&cal.geometry, &obs).unwrap();
        assert!(after < before / 2.0, "{after} !< {before}/2");
    }

    #[test]
    fn perfect_geometry_fits_with_near_zero_offset() {
        let geom = nominal();
        let pixels = calibration_pixels(&geom);
        let stack = render_with_shift(&geom, &pixels);
        let view = ScanView::new(&stack, 48, 8, 8).unwrap();
        let obs = transitions_from_stack(&view, &pixels);
        let cal = calibrate_wire_origin(&geom, &obs, 30.0, 6).unwrap();
        assert!(
            cal.offset_along_scan.abs() < 2.0,
            "spurious offset {:?}",
            cal.offset
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let geom = nominal();
        let obs = vec![Transition {
            row: 0,
            col: 0,
            source_depth: 0.0,
            observed_step: 3.5,
        }];
        assert!(
            calibrate_wire_origin(&geom, &obs, 50.0, 4).is_err(),
            "one obs"
        );
        let obs2 = vec![
            Transition {
                row: 0,
                col: 0,
                source_depth: 0.0,
                observed_step: 3.5,
            },
            Transition {
                row: 1,
                col: 1,
                source_depth: 0.0,
                observed_step: 4.5,
            },
        ];
        assert!(
            calibrate_wire_origin(&geom, &obs2, 0.0, 4).is_err(),
            "zero span"
        );
        assert!(
            calibrate_wire_origin(&geom, &obs2, 50.0, 0).is_err(),
            "zero levels"
        );
    }

    #[test]
    fn transitions_skip_flat_pixels() {
        let stack = vec![5.0; 48 * 8 * 8];
        let view = ScanView::new(&stack, 48, 8, 8).unwrap();
        let obs = transitions_from_stack(&view, &[(2, 2, 10.0)]);
        assert!(obs.is_empty(), "no drop, no transition");
    }

    #[test]
    fn predicted_step_matches_forward_model() {
        // The bisection prediction agrees with the first occluded image of
        // the rendered series.
        let geom = nominal();
        let mapper = geom.mapper().unwrap();
        let pixels = calibration_pixels(&geom);
        let stack = render_with_shift(&geom, &pixels);
        let (m, n) = (8, 8);
        for &(r, c, depth) in &pixels {
            let pred = predicted_step(&geom, &mapper, r, c, depth)
                .unwrap()
                .unwrap();
            let first_dark = (0..48)
                .find(|&z| stack[(z * m + r) * n + c] < 100.0)
                .expect("source must go dark");
            assert!(
                (pred - first_dark as f64).abs() <= 1.0,
                "predicted {pred} vs first dark image {first_dark}"
            );
        }
    }
}
