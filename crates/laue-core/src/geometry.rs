//! The complete scan geometry: beam + wire + detector.

use laue_geometry::{Beam, DepthMapper, DetectorGeometry, Vec3, WireGeometry};

use crate::error::CoreError;
use crate::Result;

/// Everything the reconstruction needs to know about the beamline setup.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanGeometry {
    /// The incident beam (defines the depth axis).
    pub beam: Beam,
    /// The stepping wire.
    pub wire: WireGeometry,
    /// The area detector.
    pub detector: DetectorGeometry,
}

impl ScanGeometry {
    /// Validate and build the depth triangulation frame.
    pub fn mapper(&self) -> Result<DepthMapper> {
        DepthMapper::new(self.beam, &self.wire).map_err(CoreError::from)
    }

    /// Number of images a scan with this geometry produces.
    pub fn n_images(&self) -> usize {
        self.wire.n_steps
    }

    /// The same scan restricted to a detector region of interest; pair with
    /// [`crate::input::RoiSlabSource`].
    pub fn crop(&self, r0: usize, c0: usize, n_rows: usize, n_cols: usize) -> Result<ScanGeometry> {
        Ok(ScanGeometry {
            beam: self.beam,
            wire: self.wire.clone(),
            detector: self.detector.crop(r0, c0, n_rows, n_cols)?,
        })
    }

    /// A self-consistent demonstration geometry in the conventional frame:
    ///
    /// * beam along `+z` through the origin;
    /// * detector of `n_rows × n_cols` pixels (200 µm pitch) overhead at
    ///   30 mm, rows advancing downstream;
    /// * 25 µm-radius wire along `x` at half the detector height, stepping
    ///   `step_um` downstream per image over `n_steps` images, starting at
    ///   `wire_z0_um`.
    ///
    /// With the detector at twice the wire height, the leading-edge depth of
    /// the central pixel column advances by ≈ `2 · step_um` per image, so a
    /// scan covers roughly `[2·wire_z0, 2·(wire_z0 + n_steps·step)]` µm of
    /// depth.
    pub fn demo(
        n_rows: usize,
        n_cols: usize,
        n_steps: usize,
        wire_z0_um: f64,
        step_um: f64,
    ) -> Result<ScanGeometry> {
        let detector = DetectorGeometry::overhead(n_rows, n_cols, 200.0, 30_000.0)?;
        let wire = WireGeometry::along_x(
            25.0,
            Vec3::new(0.0, 15_000.0, wire_z0_um),
            Vec3::new(0.0, 0.0, step_um),
            n_steps,
        )?;
        Ok(ScanGeometry {
            beam: Beam::along_z(),
            wire,
            detector,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laue_geometry::WireEdge;

    #[test]
    fn demo_geometry_is_triangulable() {
        let g = ScanGeometry::demo(8, 8, 16, -50.0, 5.0).unwrap();
        let mapper = g.mapper().unwrap();
        assert_eq!(g.n_images(), 16);
        // Every detector pixel triangulates against every wire step.
        for r in 0..8 {
            for c in 0..8 {
                let pixel = g.detector.pixel_to_xyz(r, c).unwrap();
                for s in 0..16 {
                    let center = g.wire.center(s).unwrap();
                    mapper.depth(pixel, center, WireEdge::Leading).unwrap();
                }
            }
        }
    }

    #[test]
    fn demo_depth_advances_about_twice_the_step() {
        let g = ScanGeometry::demo(9, 9, 8, 0.0, 5.0).unwrap();
        let mapper = g.mapper().unwrap();
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap(); // central pixel
        let d0 = mapper
            .depth(pixel, g.wire.center(0).unwrap(), WireEdge::Leading)
            .unwrap();
        let d1 = mapper
            .depth(pixel, g.wire.center(1).unwrap(), WireEdge::Leading)
            .unwrap();
        let advance = d1 - d0;
        assert!(
            (advance - 10.0).abs() < 1.0,
            "depth advance per 5 µm step should be ≈ 10 µm, got {advance}"
        );
    }

    #[test]
    fn trailing_edge_stays_behind_leading() {
        let g = ScanGeometry::demo(8, 8, 8, -20.0, 5.0).unwrap();
        let mapper = g.mapper().unwrap();
        let pixel = g.detector.pixel_to_xyz(3, 5).unwrap();
        for s in 0..8 {
            let center = g.wire.center(s).unwrap();
            let lead = mapper.depth(pixel, center, WireEdge::Leading).unwrap();
            let trail = mapper.depth(pixel, center, WireEdge::Trailing).unwrap();
            assert!(trail < lead);
            // The wire's finite thickness separates the edges by a
            // substantial depth gap (this is what isolates the two edges'
            // reconstructions from each other).
            assert!(lead - trail > 50.0, "edge gap {}", lead - trail);
        }
    }
}
