//! The reconstruction output: a depth-resolved image stack.

use crate::config::ReconstructionConfig;

/// Depth-resolved intensity: `data[bin][row][col]`, row-major.
///
/// Bin `k` covers depths `[depth_start + k·w, depth_start + (k+1)·w)` of the
/// configuration the reconstruction ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthImage {
    /// Number of depth bins.
    pub n_bins: usize,
    /// Detector rows.
    pub n_rows: usize,
    /// Detector columns.
    pub n_cols: usize,
    /// Flattened intensities.
    pub data: Vec<f64>,
}

impl DepthImage {
    /// Zero-filled output for a run.
    pub fn zeroed(n_bins: usize, n_rows: usize, n_cols: usize) -> DepthImage {
        DepthImage {
            n_bins,
            n_rows,
            n_cols,
            data: vec![0.0; n_bins * n_rows * n_cols],
        }
    }

    /// Linear index of `(bin, row, col)`.
    #[inline]
    pub fn index(&self, bin: usize, row: usize, col: usize) -> usize {
        (bin * self.n_rows + row) * self.n_cols + col
    }

    /// Intensity at `(bin, row, col)`.
    #[inline]
    pub fn at(&self, bin: usize, row: usize, col: usize) -> f64 {
        self.data[self.index(bin, row, col)]
    }

    /// Mutable intensity at `(bin, row, col)`.
    #[inline]
    pub fn at_mut(&mut self, bin: usize, row: usize, col: usize) -> &mut f64 {
        let i = self.index(bin, row, col);
        &mut self.data[i]
    }

    /// The depth profile of one pixel: intensity per bin.
    pub fn depth_profile(&self, row: usize, col: usize) -> Vec<f64> {
        (0..self.n_bins).map(|b| self.at(b, row, col)).collect()
    }

    /// Summed intensity of one depth bin's image.
    pub fn bin_total(&self, bin: usize) -> f64 {
        let start = bin * self.n_rows * self.n_cols;
        self.data[start..start + self.n_rows * self.n_cols]
            .iter()
            .sum()
    }

    /// Total deposited intensity.
    pub fn total_intensity(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Depth (bin centre) with the highest summed intensity, with the
    /// configuration that produced this image.
    pub fn peak_depth(&self, cfg: &ReconstructionConfig) -> Option<f64> {
        (0..self.n_bins)
            .map(|b| (b, self.bin_total(b)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|&(_, v)| v > 0.0)
            .map(|(b, _)| cfg.bin_center(b))
    }

    /// Peak depth of a single pixel's profile.
    pub fn pixel_peak_depth(
        &self,
        row: usize,
        col: usize,
        cfg: &ReconstructionConfig,
    ) -> Option<f64> {
        (0..self.n_bins)
            .map(|b| (b, self.at(b, row, col)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|&(_, v)| v > 0.0)
            .map(|(b, _)| cfg.bin_center(b))
    }

    /// Accumulate another image (same shape) into this one — used to merge
    /// per-slab partial outputs.
    pub fn accumulate(&mut self, other: &DepthImage) -> crate::Result<()> {
        if (self.n_bins, self.n_rows, self.n_cols) != (other.n_bins, other.n_rows, other.n_cols) {
            return Err(crate::CoreError::ShapeMismatch(format!(
                "cannot accumulate a {}×{}×{} image into a {}×{}×{} one",
                other.n_bins, other.n_rows, other.n_cols, self.n_bins, self.n_rows, self.n_cols
            )));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        Ok(())
    }

    /// Overwrite rows `[row0, row0 + rows)` of every depth bin from a slab
    /// buffer laid out `[(bin * rows + r) * n_cols + c]` — the layout the
    /// GPU download path and the journal both use. Assignment (not
    /// accumulation) matches the download semantics: each slab owns its
    /// rows exclusively, so replaying committed slabs in append order
    /// reproduces the image bit-for-bit.
    pub fn assign_rows(&mut self, row0: usize, rows: usize, slab: &[f64]) -> crate::Result<()> {
        if row0 + rows > self.n_rows {
            return Err(crate::CoreError::ShapeMismatch(format!(
                "slab rows [{row0}, {}) exceed the {}-row image",
                row0 + rows,
                self.n_rows
            )));
        }
        if slab.len() != self.n_bins * rows * self.n_cols {
            return Err(crate::CoreError::ShapeMismatch(format!(
                "slab buffer holds {} values but {} rows of {} bins × {} cols \
                 need {}",
                slab.len(),
                rows,
                self.n_bins,
                self.n_cols,
                self.n_bins * rows * self.n_cols
            )));
        }
        for bin in 0..self.n_bins {
            for r in 0..rows {
                let src = (bin * rows + r) * self.n_cols;
                let dst = self.index(bin, row0 + r, 0);
                self.data[dst..dst + self.n_cols].copy_from_slice(&slab[src..src + self.n_cols]);
            }
        }
        Ok(())
    }

    /// Copy rows `[row0, row0 + rows)` of every depth bin into a slab
    /// buffer (the inverse of [`DepthImage::assign_rows`]); this is what the
    /// journal appends after each slab commit.
    pub fn extract_rows(&self, row0: usize, rows: usize) -> Vec<f64> {
        assert!(row0 + rows <= self.n_rows, "row range out of bounds");
        let mut slab = vec![0.0; self.n_bins * rows * self.n_cols];
        for bin in 0..self.n_bins {
            for r in 0..rows {
                let dst = (bin * rows + r) * self.n_cols;
                let src = self.index(bin, row0 + r, 0);
                slab[dst..dst + self.n_cols].copy_from_slice(&self.data[src..src + self.n_cols]);
            }
        }
        slab
    }

    /// Largest absolute difference to another image (for equivalence tests).
    pub fn max_abs_diff(&self, other: &DepthImage) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut img = DepthImage::zeroed(3, 4, 5);
        assert_eq!(img.data.len(), 60);
        *img.at_mut(2, 3, 4) = 7.5;
        assert_eq!(img.at(2, 3, 4), 7.5);
        assert_eq!(img.index(1, 0, 0), 20);
        assert_eq!(img.depth_profile(3, 4), vec![0.0, 0.0, 7.5]);
    }

    #[test]
    fn totals_and_peaks() {
        let cfg = ReconstructionConfig::new(0.0, 30.0, 3);
        let mut img = DepthImage::zeroed(3, 2, 2);
        *img.at_mut(1, 0, 0) = 5.0;
        *img.at_mut(1, 1, 1) = 3.0;
        *img.at_mut(2, 0, 1) = 1.0;
        assert_eq!(img.bin_total(0), 0.0);
        assert_eq!(img.bin_total(1), 8.0);
        assert_eq!(img.total_intensity(), 9.0);
        assert_eq!(img.peak_depth(&cfg), Some(15.0));
        assert_eq!(img.pixel_peak_depth(0, 1, &cfg), Some(25.0));
        assert_eq!(
            img.pixel_peak_depth(1, 0, &cfg),
            None,
            "empty profile has no peak"
        );
    }

    #[test]
    fn accumulate_merges_slabs() {
        let mut a = DepthImage::zeroed(2, 2, 2);
        let mut b = DepthImage::zeroed(2, 2, 2);
        *a.at_mut(0, 0, 0) = 1.0;
        *b.at_mut(0, 0, 0) = 2.0;
        *b.at_mut(1, 1, 1) = 4.0;
        a.accumulate(&b).unwrap();
        assert_eq!(a.at(0, 0, 0), 3.0);
        assert_eq!(a.at(1, 1, 1), 4.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let mut a = DepthImage::zeroed(1, 2, 2);
        let b = DepthImage::zeroed(1, 2, 2);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        *a.at_mut(0, 1, 0) = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    fn assign_and_extract_rows_round_trip() {
        let mut img = DepthImage::zeroed(2, 4, 3);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = i as f64;
        }
        let slab = img.extract_rows(1, 2);
        assert_eq!(slab.len(), 2 * 2 * 3);
        // Bin 0 rows 1..3 then bin 1 rows 1..3, row-major.
        assert_eq!(&slab[..6], &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut other = DepthImage::zeroed(2, 4, 3);
        other.assign_rows(1, 2, &slab).unwrap();
        for r in 1..3 {
            for b in 0..2 {
                for c in 0..3 {
                    assert_eq!(other.at(b, r, c), img.at(b, r, c));
                }
            }
        }
        assert_eq!(other.at(0, 0, 0), 0.0, "untouched rows stay zero");
        assert_eq!(other.at(1, 3, 2), 0.0);
        // Re-assignment overwrites rather than accumulates.
        other.assign_rows(1, 2, &slab).unwrap();
        assert_eq!(other.at(0, 1, 0), img.at(0, 1, 0));
    }

    #[test]
    fn assign_rows_rejects_bad_shapes() {
        let mut img = DepthImage::zeroed(2, 4, 3);
        assert!(img.assign_rows(3, 2, &[0.0; 12]).is_err(), "past end");
        assert!(
            img.assign_rows(0, 2, &[0.0; 5]).is_err(),
            "wrong buffer length"
        );
        assert!(img.assign_rows(0, 2, &[0.0; 12]).is_ok());
    }

    #[test]
    fn accumulate_rejects_shape_mismatch() {
        let mut a = DepthImage::zeroed(1, 2, 2);
        let b = DepthImage::zeroed(2, 2, 2);
        match a.accumulate(&b) {
            Err(crate::CoreError::ShapeMismatch(msg)) => {
                assert!(msg.contains("2×2×2") && msg.contains("1×2×2"));
            }
            other => panic!("expected a typed shape error, got {other:?}"),
        }
    }
}
