//! Error type for the reconstruction engines.

use std::fmt;

/// Everything that can go wrong configuring or running a reconstruction.
#[derive(Debug)]
pub enum CoreError {
    /// Bad reconstruction parameters.
    InvalidConfig(String),
    /// Image stack dimensions disagree with the geometry.
    ShapeMismatch(String),
    /// The beam/wire/detector configuration cannot be triangulated at all.
    Geometry(laue_geometry::GeometryError),
    /// The simulated device failed (OOM, bad launch, …).
    Device(cuda_sim::SimError),
    /// The device cannot hold even the smallest possible slab: `needed`
    /// bytes for one detector row against a `budget`-byte working budget.
    /// Unlike a transient [`CoreError::Device`] OOM this is not recoverable
    /// by re-planning — the problem simply does not fit.
    DeviceCapacity { needed: u64, budget: u64 },
    /// A streaming slab source failed to produce data.
    Source(String),
    /// The run journal could not be read or written (checkpoint/resume).
    Journal(String),
    /// An integrity check caught silent corruption that could not (or, in
    /// `verify` mode, must not) be repaired. Deliberately **not** a GPU
    /// failure: failing over to another executor would re-export data a
    /// check already condemned, so the run aborts instead.
    IntegrityViolation(String),
}

impl CoreError {
    /// Did the GPU path fail in a way the caller could sidestep by using a
    /// different executor (CPU fallback, another device)? Capacity and
    /// device errors qualify; configuration and shape errors would fail
    /// identically everywhere, and a detected integrity violation must
    /// abort — silently re-running corrupt work elsewhere defeats the
    /// check.
    pub fn is_gpu_failure(&self) -> bool {
        matches!(
            self,
            CoreError::Device(_) | CoreError::DeviceCapacity { .. }
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            CoreError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
            CoreError::Geometry(e) => write!(f, "geometry error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::DeviceCapacity { needed, budget } => write!(
                f,
                "device too small: one detector row needs {needed} B on-device \
                 but only {budget} B fit"
            ),
            CoreError::Source(what) => write!(f, "slab source error: {what}"),
            CoreError::Journal(what) => write!(f, "journal error: {what}"),
            CoreError::IntegrityViolation(what) => {
                write!(
                    f,
                    "integrity violation (silent corruption detected): {what}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geometry(e) => Some(e),
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<laue_geometry::GeometryError> for CoreError {
    fn from(e: laue_geometry::GeometryError) -> Self {
        CoreError::Geometry(e)
    }
}

impl From<cuda_sim::SimError> for CoreError {
    fn from(e: cuda_sim::SimError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = laue_geometry::GeometryError::RayParallelToBeam.into();
        assert!(e.to_string().contains("geometry"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = cuda_sim::SimError::ForeignBuffer.into();
        assert!(e.to_string().contains("device"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        let e = CoreError::DeviceCapacity {
            needed: 100,
            budget: 50,
        };
        assert!(e.to_string().contains("detector row"));
        assert!(e.to_string().contains("100") && e.to_string().contains("50"));
    }

    #[test]
    fn gpu_failures_are_classified() {
        assert!(CoreError::Device(cuda_sim::SimError::DeviceLost).is_gpu_failure());
        assert!(CoreError::DeviceCapacity {
            needed: 1,
            budget: 0
        }
        .is_gpu_failure());
        assert!(!CoreError::InvalidConfig("x".into()).is_gpu_failure());
        assert!(!CoreError::ShapeMismatch("x".into()).is_gpu_failure());
        // A detected corruption must abort, never fail over: failover would
        // re-export data a check already condemned.
        assert!(!CoreError::IntegrityViolation("x".into()).is_gpu_failure());
    }
}
