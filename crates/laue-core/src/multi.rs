//! Multi-GPU reconstruction — the design space the paper's related work
//! opens (Schaa & Kaeli, §II) but its implementation never explores.
//!
//! The detector is split into contiguous row bands, one per device; each
//! device runs the k-deep ring pipeline over its band. Bands are disjoint,
//! so no cross-device synchronisation is needed and the result is
//! bit-identical to the single-GPU run. In virtual time the devices work
//! concurrently: the makespan is the slowest device's timeline. Whether
//! the devices also contend for PCIe is the caller's choice — devices
//! built with [`Device::new`] each own a private host (a link per device,
//! as in a multi-socket node), while devices attached to one
//! [`cuda_sim::Host`] via [`Device::new_on_host`] drain their transfers
//! through that host's shared metered bus, which is what a single
//! workstation chassis actually provides.
//!
//! A shared [`DepthTableCache`] pays the host-side triangulation once for
//! the whole fleet (devices after the first hit the host cache) and keeps
//! per-device resident tables for warm re-runs.

use cuda_sim::{Device, Meters};

use crate::cache::{DepthTableCache, TableCacheStats};
use crate::config::ReconstructionConfig;
use crate::error::CoreError;
use crate::geometry::ScanGeometry;
use crate::gpu::{run_ring, validate_inputs, GpuOptions, PipelineDepth, RecoveryLog, SlabEvent};
use crate::input::SlabSource;
use crate::integrity::IntegrityReport;
use crate::journal::{RunJournal, SlabProgress};
use crate::output::DepthImage;
use crate::stats::ReconStats;
use crate::Result;

/// Result of a multi-device reconstruction.
#[derive(Debug, Clone)]
pub struct MultiGpuReconstruction {
    /// The depth-resolved output (all bands merged).
    pub image: DepthImage,
    /// Outcome counters over all devices.
    pub stats: ReconStats,
    /// Per-device meters, in device order (participating devices only).
    pub per_device: Vec<Meters>,
    /// Rows committed by each participating device.
    pub rows_per_device: Vec<usize>,
    /// Virtual makespan: the slowest device's elapsed time.
    pub elapsed_s: f64,
    /// Host-CPU seconds spent producing depth tables for the fleet,
    /// summed over participating devices (accounted in parallel with
    /// device time; zero for in-kernel triangulation).
    pub host_table_time_s: f64,
    /// Aggregate recovery actions (re-plans, transfer retries) over all
    /// devices.
    pub recovery: RecoveryLog,
    /// Depth-table cache accounting, merged over all devices (all zeros
    /// when no cache was attached).
    pub table_cache: TableCacheStats,
    /// Devices that died mid-run and had their unfinished rows requeued
    /// onto the survivors.
    pub devices_lost: u32,
    /// Total committed slabs (replayed + fresh, over all devices).
    pub n_slabs: usize,
    /// Achieved active-pair density per slab, in commit order across the
    /// fleet (empty when compaction is off).
    pub slab_densities: Vec<f64>,
    /// Per slab in commit order across the fleet, whether its main launch
    /// ran the shared-memory privatized accumulator (devices may differ in
    /// shared-memory budget, so a heterogeneous fleet can mix). Empty under
    /// `--accumulation atomic`.
    pub slab_privatized: Vec<bool>,
    /// Integrity checks, detections, and corrections, merged over all
    /// devices (all zeros when `--integrity off`).
    pub integrity: IntegrityReport,
}

/// Split `n_rows` into `n` contiguous bands, remainder spread to the front.
pub(crate) fn row_bands(n_rows: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let n = n.min(n_rows).max(1);
    let base = n_rows / n;
    let extra = n_rows % n;
    let mut bands = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        bands.push(start..start + len);
        start += len;
    }
    bands
}

/// Reconstruct across several devices, one row band per device, with the
/// serial (`k = 1`) pipeline and no table cache.
pub fn reconstruct_multi(
    devices: &[&Device],
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
) -> Result<MultiGpuReconstruction> {
    reconstruct_multi_pipelined(
        devices,
        source,
        geom,
        cfg,
        opts,
        PipelineDepth::SERIAL,
        None,
    )
}

/// As [`reconstruct_multi`], with a configurable ring depth per device and
/// an optional shared depth-table cache.
/// [`ReconstructionConfig::pipeline_depth`] overrides `depth` when set.
pub fn reconstruct_multi_pipelined(
    devices: &[&Device],
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
) -> Result<MultiGpuReconstruction> {
    if devices.is_empty() {
        return Err(CoreError::InvalidConfig("need at least one device".into()));
    }
    validate_inputs(source, geom, cfg)?;
    let mut progress = SlabProgress::new(cfg.n_depth_bins, source.n_rows(), source.n_cols());
    reconstruct_multi_checkpointed(
        devices,
        source,
        geom,
        cfg,
        opts,
        depth,
        cache,
        &mut progress,
        None,
    )
}

/// Split a set of disjoint, row-ordered uncovered ranges over `n` workers.
/// Quotas come from [`row_bands`] over the total pending row count; the
/// ranges are then walked in row order, slicing at quota boundaries. For a
/// single full-detector range this reproduces `row_bands` exactly, so a
/// fresh failure-free fleet run is scheduled identically to the original
/// static banding.
pub(crate) fn partition_ranges(
    ranges: &[std::ops::Range<usize>],
    n: usize,
) -> Vec<Vec<std::ops::Range<usize>>> {
    let total: usize = ranges.iter().map(|r| r.len()).sum();
    let quotas: Vec<usize> = row_bands(total, n).into_iter().map(|b| b.len()).collect();
    let mut out: Vec<Vec<std::ops::Range<usize>>> = vec![Vec::new(); quotas.len()];
    let mut rest = ranges.iter().cloned();
    let mut cur = rest.next();
    for (k, quota) in quotas.into_iter().enumerate() {
        let mut quota = quota;
        while quota > 0 {
            let Some(r) = cur.take() else { break };
            let take = quota.min(r.len());
            out[k].push(r.start..r.start + take);
            if take < r.len() {
                cur = Some(r.start + take..r.end);
            } else {
                cur = rest.next();
            }
            quota -= take;
        }
    }
    out
}

/// The failover-aware fleet scheduler behind every multi-GPU entry point.
///
/// Work proceeds in rounds: the rows still uncovered by `progress` are
/// re-banded over the devices currently alive ([`partition_ranges`], which
/// degenerates to the classic static banding on a fresh run), and each
/// device runs the k-deep ring over its share, committing slab-by-slab
/// into `progress` (and `journal`, when given). A device that fails with a
/// GPU-class error ([`CoreError::is_gpu_failure`]) is marked dead and the
/// round continues; its unfinished rows are simply still uncovered next
/// round and flow to the survivors. Only when *zero* devices remain does
/// the last device error surface — that is the caller's cue for CPU
/// fallback, with everything the fleet did commit salvageable from
/// `progress`.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_multi_checkpointed(
    devices: &[&Device],
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    progress: &mut SlabProgress,
    journal: Option<&mut RunJournal>,
) -> Result<MultiGpuReconstruction> {
    // One scope range covering the whole detector (not a range of scopes,
    // which is what clippy's single_range_in_vec_init guards against).
    let scope = std::array::from_fn::<_, 1, _>(|_| 0..source.n_rows());
    reconstruct_multi_scoped(
        devices, source, geom, cfg, opts, depth, cache, &scope, progress, journal, None, true,
    )
}

/// Scope-restricted fleet run: the workhorse behind both the whole-detector
/// entry point above and the per-node bands of `cluster`. Only rows inside
/// `scope` (disjoint, row-ordered ranges) are considered uncovered; the
/// round-based failover loop is otherwise identical.
///
/// `on_commit` (when given) observes every fresh slab commit as
/// `(row0, rows, at_s)`, where `at_s` is the committing device's virtual
/// elapsed time read *without* synchronizing — the cluster layer uses it to
/// release reduction segments into the interconnect while the rest of the
/// band is still computing. `fresh_meters` controls whether a device's
/// meters reset on its first participation in *this call*: a cluster
/// failover round re-enters a node whose devices must keep accumulating
/// virtual time, so it passes `false` after the node's first round.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_multi_scoped(
    devices: &[&Device],
    source: &mut dyn SlabSource,
    geom: &ScanGeometry,
    cfg: &ReconstructionConfig,
    opts: GpuOptions,
    depth: PipelineDepth,
    cache: Option<&DepthTableCache>,
    scope: &[std::ops::Range<usize>],
    progress: &mut SlabProgress,
    mut journal: Option<&mut RunJournal>,
    mut on_commit: Option<&mut dyn FnMut(usize, usize, f64)>,
    fresh_meters: bool,
) -> Result<MultiGpuReconstruction> {
    if devices.is_empty() {
        return Err(CoreError::InvalidConfig("need at least one device".into()));
    }
    validate_inputs(source, geom, cfg)?;
    let mapper = geom.mapper()?;
    let depth = cfg.pipeline_depth.map(PipelineDepth).unwrap_or(depth);

    let mut recovery = RecoveryLog::default();
    let mut table_cache = TableCacheStats::default();
    let mut slab_densities = Vec::new();
    let mut slab_privatized = Vec::new();
    let mut integrity = IntegrityReport::default();
    let mut devices_lost = 0u32;
    let mut alive: Vec<bool> = devices.iter().map(|d| !d.is_lost()).collect();
    let mut participated: Vec<bool> = vec![false; devices.len()];
    let mut rows_done: Vec<usize> = vec![0; devices.len()];
    let mut last_gpu_err: Option<CoreError> = None;

    loop {
        let pending: Vec<std::ops::Range<usize>> = scope
            .iter()
            .flat_map(|band| progress.uncovered(band.clone()))
            .collect();
        if pending.is_empty() {
            break;
        }
        let alive_idx: Vec<usize> = (0..devices.len()).filter(|&i| alive[i]).collect();
        if alive_idx.is_empty() {
            return Err(last_gpu_err.unwrap_or(CoreError::Device(cuda_sim::SimError::DeviceLost)));
        }
        let assignments = partition_ranges(&pending, alive_idx.len());
        for (k, ranges) in assignments.iter().enumerate() {
            if ranges.is_empty() {
                continue;
            }
            let di = alive_idx[k];
            let device = devices[di];
            if !participated[di] {
                if fresh_meters {
                    device.reset_meters();
                }
                participated[di] = true;
            }
            for band in ranges {
                let before = progress.committed_rows();
                let (image, mut tracker) = progress.split_mut();
                let mut journal = journal.as_deref_mut();
                let mut observer = on_commit.as_deref_mut();
                let mut sink = |event: SlabEvent<'_>| match event {
                    SlabEvent::Commit {
                        row0,
                        rows,
                        stats,
                        data,
                    } => {
                        if let Some(j) = journal.as_mut() {
                            j.append(row0, rows, stats, data)?;
                        }
                        tracker.record(row0, rows, stats);
                        if let Some(obs) = observer.as_mut() {
                            // The device's non-mutating makespan read: when
                            // this slab's download has been scheduled. A
                            // synchronize() here would join stream cursors
                            // and perturb the ring schedule.
                            obs(row0, rows, device.elapsed_s());
                        }
                        Ok(())
                    }
                    SlabEvent::Poison { row0, rows } => {
                        if let Some(j) = journal.as_mut() {
                            j.append_poison(row0, rows)?;
                        }
                        Ok(())
                    }
                };
                let attempt = run_ring(
                    device,
                    source,
                    geom,
                    &mapper,
                    cfg,
                    opts,
                    depth,
                    cache,
                    band.clone(),
                    image,
                    &mut recovery,
                    Some(&mut sink),
                );
                rows_done[di] += progress.committed_rows() - before;
                match attempt {
                    Ok(outcome) => {
                        table_cache.merge(&outcome.cache_stats);
                        slab_densities.extend(outcome.slab_densities);
                        slab_privatized.extend(outcome.slab_privatized);
                        integrity.merge(&outcome.integrity);
                    }
                    Err(e) if e.is_gpu_failure() => {
                        // The device is gone (or hopeless): drain it from
                        // the fleet. Whatever it committed before dying is
                        // already in `progress`; the rest of its rows stay
                        // uncovered and re-band onto the survivors next
                        // round.
                        alive[di] = false;
                        devices_lost += 1;
                        last_gpu_err = Some(e);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    let mut per_device = Vec::new();
    let mut rows_per_device = Vec::new();
    let mut elapsed_s: f64 = 0.0;
    let mut host_table_time_s = 0.0;
    for (i, device) in devices.iter().enumerate() {
        if participated[i] {
            elapsed_s = elapsed_s.max(device.synchronize());
            host_table_time_s += device.host_flops_time_s();
            per_device.push(device.meters());
            rows_per_device.push(rows_done[i]);
        }
    }

    Ok(MultiGpuReconstruction {
        image: progress.image.clone(),
        stats: progress.stats,
        per_device,
        rows_per_device,
        elapsed_s,
        host_table_time_s,
        recovery,
        table_cache,
        devices_lost,
        n_slabs: progress.committed_slabs(),
        slab_densities,
        slab_privatized,
        integrity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{self, Layout};
    use crate::input::InMemorySlabSource;
    use cuda_sim::DeviceProps;

    fn demo() -> (ScanGeometry, ReconstructionConfig, Vec<f64>) {
        let geom = ScanGeometry::demo(8, 6, 10, -60.0, 6.0).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 60);
        let (p, m, n) = (10, 8, 6);
        let data: Vec<f64> = (0..p * m * n)
            .map(|i| {
                let z = i / (m * n);
                let px = i % (m * n);
                800.0 - 23.0 * z as f64 - (px % 5) as f64 * 13.0
            })
            .collect();
        (geom, cfg, data)
    }

    #[test]
    fn row_bands_cover_exactly() {
        for (rows, n) in [(8usize, 2usize), (7, 3), (5, 8), (1, 1), (10, 4)] {
            let bands = row_bands(rows, n);
            assert_eq!(bands[0].start, 0);
            assert_eq!(bands.last().unwrap().end, rows);
            for w in bands.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(!w[0].is_empty());
            }
            // Balanced within one row.
            let lens: Vec<usize> = bands.iter().map(|b| b.len()).collect();
            assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn multi_gpu_matches_single_gpu_bitwise() {
        let (geom, cfg, data) = demo();
        let single = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let ref_out = gpu::reconstruct(&single, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        for n_dev in [1usize, 2, 3, 4] {
            let devices: Vec<Device> = (0..n_dev)
                .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
                .collect();
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
            let out =
                reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
            assert_eq!(out.image.data, ref_out.image.data, "{n_dev} devices");
            assert_eq!(out.stats, ref_out.stats);
            assert_eq!(out.per_device.len(), n_dev);
            assert_eq!(out.rows_per_device.iter().sum::<usize>(), 8);
        }
    }

    #[test]
    fn multi_gpu_shortens_the_makespan() {
        let (geom, cfg, data) = demo();
        let run_with = |n_dev: usize| {
            let devices: Vec<Device> = (0..n_dev)
                .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
                .collect();
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default())
                .unwrap()
                .elapsed_s
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(
            four < one,
            "4 devices must beat 1 in virtual time: {four} vs {one}"
        );
    }

    #[test]
    fn shared_host_fleet_contends_for_the_bus() {
        let (geom, cfg, data) = demo();
        let run = |devices: Vec<Device>| {
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap()
        };
        // A link per device: transfers never queue.
        let private = run((0..4)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect());
        assert!(private.per_device.iter().all(|m| m.bus_wait_s == 0.0));
        // One chassis, one bus: the same transfers now share the link.
        let host = cuda_sim::Host::new_default();
        let shared = run((0..4)
            .map(|_| Device::new_on_host(DeviceProps::tiny(16 * 1024 * 1024), &host))
            .collect());
        assert_eq!(
            shared.image.data, private.image.data,
            "contention moves time, never data"
        );
        assert_eq!(shared.stats, private.stats);
        let stalled: f64 = shared.per_device.iter().map(|m| m.bus_wait_s).sum();
        assert!(stalled > 0.0, "devices must queue on the shared bus");
        assert!(
            shared.elapsed_s > private.elapsed_s,
            "the shared bus must stretch the makespan ({} vs {})",
            shared.elapsed_s,
            private.elapsed_s
        );
        // The bus never idles work away: the makespan still beats one
        // device doing everything alone over the same link.
        let solo = run(vec![Device::new(DeviceProps::tiny(16 * 1024 * 1024))]);
        assert!(
            shared.elapsed_s < solo.elapsed_s,
            "compute still parallelizes ({} vs {})",
            shared.elapsed_s,
            solo.elapsed_s
        );
    }

    #[test]
    fn faulty_device_in_the_fleet_recovers_bitwise() {
        let (geom, cfg, data) = demo();
        let clean: Vec<Device> = (0..2)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = clean.iter().collect();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let ref_out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        assert_eq!(ref_out.recovery, RecoveryLog::default());

        // Second device drops an allocation and flakes one transfer.
        let faulty: Vec<Device> = (0..2)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        faulty[1].set_fault_plan(
            cuda_sim::FaultPlan::new(5)
                .fail_nth_alloc(3)
                .fail_nth_h2d(2),
        );
        let refs: Vec<&Device> = faulty.iter().collect();
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        assert!(out.recovery.replans >= 1);
        assert!(out.recovery.transfer_retries >= 1);
        assert_eq!(
            out.image.data, ref_out.image.data,
            "recovery is invisible in the output"
        );
        assert_eq!(out.stats, ref_out.stats);
    }

    #[test]
    fn pipelined_fleet_with_shared_cache_matches_bitwise() {
        let (geom, cfg, data) = demo();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let single = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let opts = GpuOptions {
            triangulation: crate::gpu::Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let ref_out =
            gpu::reconstruct_with_options(&single, &mut source, &geom, &cfg, opts).unwrap();

        let devices: Vec<Device> = (0..3)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let cache = DepthTableCache::new(8 * 1024 * 1024);
        let run = |source: &mut dyn crate::input::SlabSource| {
            reconstruct_multi_pipelined(
                &refs,
                source,
                &geom,
                &cfg,
                opts,
                PipelineDepth(2),
                Some(&cache),
            )
            .unwrap()
        };
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let cold = run(&mut source);
        assert_eq!(cold.image.data, ref_out.image.data);
        assert_eq!(cold.stats, ref_out.stats);
        // One host miss for the fleet; the other devices hit the host cache.
        assert_eq!(cold.table_cache.host_misses, 1);
        assert_eq!(cold.table_cache.host_hits, 2);
        assert_eq!(cold.table_cache.device_misses, 3, "one upload per device");

        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let warm = run(&mut source);
        assert_eq!(warm.image.data, ref_out.image.data);
        assert_eq!(warm.table_cache.device_hits, 3, "all tables resident");
        assert!(warm.elapsed_s < cold.elapsed_s);
    }

    #[test]
    fn partition_ranges_reproduces_static_banding_on_fresh_runs() {
        for (rows, n) in [(8usize, 2usize), (7, 3), (5, 8), (10, 4)] {
            let full = 0..rows;
            let from_full = partition_ranges(std::slice::from_ref(&full), n);
            let bands = row_bands(rows, n);
            assert_eq!(from_full.len(), bands.len());
            for (group, band) in from_full.iter().zip(&bands) {
                assert_eq!(group.as_slice(), std::slice::from_ref(band));
            }
        }
        // Holes are walked in row order and sliced at quota boundaries.
        let groups = partition_ranges(&[1..3, 5..9], 2);
        assert_eq!(groups, vec![vec![1..3, 5..6], vec![6..9]]);
        let one = 0..1;
        let groups = partition_ranges(std::slice::from_ref(&one), 4);
        assert_eq!(groups, vec![vec![0..1]], "fewer rows than workers");
    }

    #[test]
    fn fleet_survives_losing_each_device_in_turn() {
        let (geom, mut cfg, data) = demo();
        cfg.rows_per_slab = Some(1); // every band is several slabs
        let clean: Vec<Device> = (0..4)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = clean.iter().collect();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let ref_out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        assert_eq!(ref_out.devices_lost, 0);

        for victim in 0..4usize {
            let fleet: Vec<Device> = (0..4)
                .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
                .collect();
            // Die after the first committed slab of the victim's band.
            fleet[victim].set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after_launches(1));
            let refs: Vec<&Device> = fleet.iter().collect();
            let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
            let out =
                reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
            assert_eq!(out.devices_lost, 1, "victim {victim}");
            assert_eq!(
                out.image.data, ref_out.image.data,
                "survivors finish victim {victim}'s rows bit-identically"
            );
            assert_eq!(out.stats, ref_out.stats);
            assert_eq!(out.rows_per_device.iter().sum::<usize>(), 8);
        }
    }

    #[test]
    fn zero_surviving_devices_surfaces_the_loss() {
        let (geom, cfg, data) = demo();
        let fleet: Vec<Device> = (0..2)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        for d in &fleet {
            d.set_fault_plan(cuda_sim::FaultPlan::new(0).fail_after_launches(0));
        }
        let refs: Vec<&Device> = fleet.iter().collect();
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let err =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap_err();
        assert!(err.is_gpu_failure());
        assert!(err.to_string().contains("device lost"), "{err}");
    }

    #[test]
    fn privatized_fleet_matches_atomic_bitwise_even_heterogeneous() {
        let (geom, cfg, data) = demo();
        let single = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let ref_out = gpu::reconstruct(&single, &mut source, &geom, &cfg, Layout::Flat1d).unwrap();

        let mut cfg = cfg.clone();
        cfg.accumulation = crate::config::AccumulationMode::Auto;
        // Homogeneous fleet: every slab privatizes.
        let devices: Vec<Device> = (0..3)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let mut source = InMemorySlabSource::new(data.clone(), 10, 8, 6).unwrap();
        let out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        assert_eq!(out.image.data, ref_out.image.data);
        assert_eq!(out.slab_privatized.len(), out.n_slabs);
        assert!(out.slab_privatized.iter().all(|p| *p));
        assert_eq!(out.stats.privatized_pairs, out.stats.pairs_total);

        // Heterogeneous fleet: one device's shared memory cannot hold a
        // 60-bin row, so its slabs fall back to atomics — the image must
        // still be bit-identical and the mix visible per slab.
        let mut cramped = DeviceProps::tiny(16 * 1024 * 1024);
        cramped.shared_mem_per_block = 64;
        let devices = [
            Device::new(DeviceProps::tiny(16 * 1024 * 1024)),
            Device::new(cramped),
        ];
        let refs: Vec<&Device> = devices.iter().collect();
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        assert_eq!(out.image.data, ref_out.image.data);
        assert_eq!(out.slab_privatized.len(), out.n_slabs);
        assert!(out.slab_privatized.iter().any(|p| *p));
        assert!(out.slab_privatized.iter().any(|p| !*p));
        assert!(out.stats.privatized_pairs > 0);
        assert!(out.stats.accum_fallback_pairs > 0);
        assert_eq!(
            out.stats.privatized_pairs + out.stats.accum_fallback_pairs,
            out.stats.pairs_total
        );
    }

    #[test]
    fn no_devices_is_an_error() {
        let (geom, cfg, data) = demo();
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        assert!(matches!(
            reconstruct_multi(&[], &mut source, &geom, &cfg, GpuOptions::default()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn more_devices_than_rows_still_works() {
        let (geom, cfg, data) = demo();
        let devices: Vec<Device> = (0..12)
            .map(|_| Device::new(DeviceProps::tiny(16 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let mut source = InMemorySlabSource::new(data, 10, 8, 6).unwrap();
        let out =
            reconstruct_multi(&refs, &mut source, &geom, &cfg, GpuOptions::default()).unwrap();
        // Only 8 rows → at most 8 bands get work.
        assert_eq!(out.rows_per_device.len(), 8);
    }
}
