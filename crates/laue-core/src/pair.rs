//! The shared per-(pixel, step-pair) routine.
//!
//! Every engine — CPU sequential, CPU threaded, and the simulated-GPU
//! kernel — funnels through [`plan_pair`], so their numerical behaviour
//! differs only in accumulation order. The planner is split from the
//! deposit loop so the GPU kernel can interleave its own metered atomics;
//! [`process_pair`] is the convenience wrapper the CPU engines use.
//!
//! The module also defines the FLOP estimates that feed the virtual-time
//! performance models, so CPU and GPU see identical logical work.

use laue_geometry::{DepthMapper, Vec3, WireEdge};

use crate::config::ReconstructionConfig;
use crate::stats::PairOutcome;

/// Approximate FLOPs for one edge-depth triangulation (projection, tangent
/// construction, ray/beam intersection).
pub const FLOPS_PER_DEPTH: u64 = 45;

/// Approximate FLOPs for the differential + clamp bookkeeping of one pair.
pub const FLOPS_PER_PAIR: u64 = 12;

/// Approximate FLOPs per depth bin deposited into.
pub const FLOPS_PER_BIN: u64 = 6;

/// Modeled device/host memory traffic per examined pair: two intensity
/// reads, one pixel position, two wire centres.
pub const MEM_BYTES_PER_PAIR: u64 = 2 * 8 + 3 * 8 + 6 * 8;

/// Modeled memory traffic per deposit (read-modify-write of one bin).
pub const MEM_BYTES_PER_DEPOSIT: u64 = 16;

/// Bytes the compaction prescan reads per intensity element. The prescan
/// walks each pixel's step column once, so consecutive pairs share loads —
/// one f64 per touched image, not two per pair.
pub const PRESCAN_BYTES_PER_READ: u64 = 8;

/// FLOPs the prescan spends testing one pair against the cutoff
/// (differential subtract + magnitude compare).
pub const PRESCAN_FLOPS_PER_PAIR: u64 = 2;

/// Bytes per compacted work-list entry: `(row, col, pair)` packed into one
/// u64. Charged once when the prescan emits it and once when the main
/// kernel reads it back.
pub const COMPACT_ENTRY_BYTES: u64 = 8;

/// What [`plan_pair`] decided for one `(pixel, step-pair)` element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairPlan {
    /// `|ΔI|` at or below the cutoff.
    BelowCutoff,
    /// No valid triangulation for one of the two edges.
    InvalidGeometry,
    /// Depth band entirely outside the reconstruction window.
    OutOfRange,
    /// Deposit according to the plan.
    Deposit(DepositPlan),
}

/// A planned deposit: `delta` spread over the bins overlapping
/// `[lo, hi]` (already clamped to the depth window) in proportion to
/// overlap with the *unclamped* band length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepositPlan {
    /// First bin index touched.
    pub first_bin: usize,
    /// One-past-last bin index.
    pub last_bin: usize,
    /// Clamped band, µm.
    pub lo: f64,
    /// Clamped band, µm.
    pub hi: f64,
    /// Unclamped band length, µm (the normalisation).
    pub band_len: f64,
    /// Differential intensity to spread.
    pub delta: f64,
}

impl DepositPlan {
    /// Number of bins the plan touches.
    pub fn n_bins(&self) -> usize {
        self.last_bin - self.first_bin
    }

    /// The deposit amount for bin `bin` (must be within the plan's range).
    #[inline]
    pub fn amount(&self, bin: usize, cfg: &ReconstructionConfig) -> f64 {
        let width = cfg.bin_width();
        let b_lo = cfg.depth_start + bin as f64 * width;
        let b_hi = b_lo + width;
        let overlap = (self.hi.min(b_hi) - self.lo.max(b_lo)).max(0.0);
        self.delta * overlap / self.band_len
    }
}

/// Differential intensity of one pair under the configured edge: what the
/// wire newly occluded (leading) or newly revealed (trailing).
#[inline]
pub fn differential(cfg: &ReconstructionConfig, intensity_z: f64, intensity_z1: f64) -> f64 {
    match cfg.wire_edge {
        WireEdge::Leading => intensity_z - intensity_z1,
        WireEdge::Trailing => intensity_z1 - intensity_z,
    }
}

/// Plan the deposit of `delta` over the depth band `[d0, d1]` (either
/// order; non-finite values mean the triangulation failed). This is the
/// tail of [`plan_pair`], split out so engines with *precomputed* depth
/// tables — the `edge`/`gpuPointArray` arrays of the paper's kernel — can
/// reuse the identical numeric path.
#[inline]
pub fn plan_from_band(
    cfg: &ReconstructionConfig,
    delta: f64,
    d0: f64,
    d1: f64,
    flops: &mut u64,
) -> PairPlan {
    if !d0.is_finite() || !d1.is_finite() {
        return PairPlan::InvalidGeometry;
    }
    let (band_lo, band_hi) = if d0 <= d1 { (d0, d1) } else { (d1, d0) };
    if band_hi <= band_lo {
        // Degenerate zero-width band (wire did not move for this pixel).
        return PairPlan::InvalidGeometry;
    }
    if band_hi <= cfg.depth_start || band_lo >= cfg.depth_end {
        return PairPlan::OutOfRange;
    }

    let width = cfg.bin_width();
    let lo = band_lo.max(cfg.depth_start);
    let hi = band_hi.min(cfg.depth_end);
    let first_bin = ((lo - cfg.depth_start) / width) as usize;
    let last_bin = (((hi - cfg.depth_start) / width).ceil() as usize).min(cfg.n_depth_bins);
    let last_bin = last_bin.max(first_bin + 1).min(cfg.n_depth_bins);
    let n = (last_bin - first_bin) as u64;
    *flops += n * FLOPS_PER_BIN;
    PairPlan::Deposit(DepositPlan {
        first_bin,
        last_bin,
        lo,
        hi,
        band_len: band_hi - band_lo,
        delta,
    })
}

/// Examine one `(pixel, wire-step pair)` element and plan its deposit.
///
/// Adds the logical FLOP estimate for the work actually performed to
/// `flops` (cut-off pairs charge almost nothing — this is what makes the
/// paper's pixel-percentage sweep change the runtime).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn plan_pair(
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    pixel: Vec3,
    wire_center_z: Vec3,
    wire_center_z1: Vec3,
    intensity_z: f64,
    intensity_z1: f64,
    flops: &mut u64,
) -> PairPlan {
    let delta = differential(cfg, intensity_z, intensity_z1);
    *flops += FLOPS_PER_PAIR;
    if delta.abs() <= cfg.intensity_cutoff {
        return PairPlan::BelowCutoff;
    }

    let d0 = mapper.depth(pixel, wire_center_z, cfg.wire_edge);
    let d1 = mapper.depth(pixel, wire_center_z1, cfg.wire_edge);
    *flops += 2 * FLOPS_PER_DEPTH;
    let (d0, d1) = match (d0, d1) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return PairPlan::InvalidGeometry,
    };
    plan_from_band(cfg, delta, d0, d1, flops)
}

/// Convenience wrapper: plan and immediately execute the deposits through a
/// callback. Used by the CPU engines and the tests.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn process_pair<F: FnMut(usize, f64)>(
    mapper: &DepthMapper,
    cfg: &ReconstructionConfig,
    pixel: Vec3,
    wire_center_z: Vec3,
    wire_center_z1: Vec3,
    intensity_z: f64,
    intensity_z1: f64,
    mut deposit: F,
    flops: &mut u64,
) -> PairOutcome {
    match plan_pair(
        mapper,
        cfg,
        pixel,
        wire_center_z,
        wire_center_z1,
        intensity_z,
        intensity_z1,
        flops,
    ) {
        PairPlan::BelowCutoff => PairOutcome::BelowCutoff,
        PairPlan::InvalidGeometry => PairOutcome::InvalidGeometry,
        PairPlan::OutOfRange => PairOutcome::OutOfRange,
        PairPlan::Deposit(plan) => {
            let mut bins = 0usize;
            for bin in plan.first_bin..plan.last_bin {
                let amount = plan.amount(bin, cfg);
                if amount != 0.0 {
                    deposit(bin, amount);
                    bins += 1;
                }
            }
            PairOutcome::Deposited { bins }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ScanGeometry;
    use laue_geometry::DepthMapper;

    fn setup() -> (ScanGeometry, DepthMapper, ReconstructionConfig) {
        let g = ScanGeometry::demo(8, 8, 8, -20.0, 5.0).unwrap();
        let m = g.mapper().unwrap();
        // Depth window wide enough for every pixel row: with 200 µm pitch
        // the leading-edge depths spread over roughly ±900 µm.
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 300);
        (g, m, cfg)
    }

    #[test]
    fn below_cutoff_skips_without_triangulating() {
        let (g, m, mut cfg) = setup();
        cfg.intensity_cutoff = 5.0;
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap();
        let mut flops = 0;
        let outcome = process_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(0).unwrap(),
            g.wire.center(1).unwrap(),
            10.0,
            8.0, // ΔI = 2 < cutoff
            |_, _| panic!("must not deposit"),
            &mut flops,
        );
        assert_eq!(outcome, PairOutcome::BelowCutoff);
        assert_eq!(flops, FLOPS_PER_PAIR, "no triangulation charged");
    }

    #[test]
    fn deposit_conserves_delta_when_band_in_range() {
        let (g, m, cfg) = setup();
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap();
        let mut total = 0.0;
        let mut flops = 0;
        let outcome = process_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(0).unwrap(),
            g.wire.center(1).unwrap(),
            100.0,
            60.0,
            |_, v| total += v,
            &mut flops,
        );
        assert!(matches!(outcome, PairOutcome::Deposited { bins } if bins >= 1));
        assert!(
            (total - 40.0).abs() < 1e-9,
            "ΔI = 40 fully deposited, got {total}"
        );
        assert!(flops > 2 * FLOPS_PER_DEPTH);
    }

    #[test]
    fn trailing_edge_flips_the_sign() {
        let (g, m, mut cfg) = setup();
        cfg.wire_edge = laue_geometry::WireEdge::Trailing;
        let pixel = g.detector.pixel_to_xyz(2, 3).unwrap();
        let mut total = 0.0;
        let mut flops = 0;
        process_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(3).unwrap(),
            g.wire.center(4).unwrap(),
            60.0,
            100.0, // intensity rose: the trailing edge revealed 40
            |_, v| total += v,
            &mut flops,
        );
        assert!((total - 40.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn out_of_range_band_is_counted_not_deposited() {
        let (g, m, mut cfg) = setup();
        // Depth window far away from where this scan's bands fall.
        cfg.depth_start = 100_000.0;
        cfg.depth_end = 100_100.0;
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap();
        let mut flops = 0;
        let outcome = process_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(0).unwrap(),
            g.wire.center(1).unwrap(),
            100.0,
            0.0,
            |_, _| panic!("must not deposit"),
            &mut flops,
        );
        assert_eq!(outcome, PairOutcome::OutOfRange);
    }

    #[test]
    fn partial_overlap_deposits_partially() {
        let (g, m, mut cfg) = setup();
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap();
        let w0 = g.wire.center(0).unwrap();
        let w1 = g.wire.center(1).unwrap();
        // Find the band, then set the window to cover only its lower half.
        let d0 = m.depth(pixel, w0, cfg.wire_edge).unwrap();
        let d1 = m.depth(pixel, w1, cfg.wire_edge).unwrap();
        let (lo, hi) = if d0 < d1 { (d0, d1) } else { (d1, d0) };
        let mid = (lo + hi) / 2.0;
        cfg.depth_start = lo - 50.0;
        cfg.depth_end = mid;
        cfg.n_depth_bins = 64;
        let mut total = 0.0;
        let mut flops = 0;
        process_pair(
            &m,
            &cfg,
            pixel,
            w0,
            w1,
            100.0,
            0.0,
            |_, v| total += v,
            &mut flops,
        );
        assert!(
            (total - 50.0).abs() < 1.0,
            "half the band in range → half of ΔI = 100 deposited, got {total}"
        );
    }

    #[test]
    fn deposited_bins_are_in_range() {
        let (g, m, cfg) = setup();
        for r in 0..8 {
            for c in 0..8 {
                let pixel = g.detector.pixel_to_xyz(r, c).unwrap();
                for z in 0..7 {
                    let mut flops = 0;
                    process_pair(
                        &m,
                        &cfg,
                        pixel,
                        g.wire.center(z).unwrap(),
                        g.wire.center(z + 1).unwrap(),
                        50.0,
                        10.0,
                        |bin, _| assert!(bin < cfg.n_depth_bins),
                        &mut flops,
                    );
                }
            }
        }
    }

    #[test]
    fn negative_differentials_deposit_negative() {
        // Noise can make ΔI negative; the algorithm deposits it as-is (the
        // original code does too — smoothing happens downstream).
        let (g, m, cfg) = setup();
        let pixel = g.detector.pixel_to_xyz(4, 4).unwrap();
        let mut total = 0.0;
        let mut flops = 0;
        process_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(0).unwrap(),
            g.wire.center(1).unwrap(),
            10.0,
            30.0,
            |_, v| total += v,
            &mut flops,
        );
        assert!((total + 20.0).abs() < 1e-9);
    }

    #[test]
    fn plan_amounts_sum_to_deposited_fraction() {
        let (g, m, cfg) = setup();
        let pixel = g.detector.pixel_to_xyz(1, 6).unwrap();
        let mut flops = 0;
        let plan = plan_pair(
            &m,
            &cfg,
            pixel,
            g.wire.center(2).unwrap(),
            g.wire.center(3).unwrap(),
            90.0,
            30.0,
            &mut flops,
        );
        let PairPlan::Deposit(plan) = plan else {
            panic!("expected a deposit, got {plan:?}")
        };
        let sum: f64 = (plan.first_bin..plan.last_bin)
            .map(|b| plan.amount(b, &cfg))
            .sum();
        let expected = plan.delta * (plan.hi - plan.lo) / plan.band_len;
        assert!((sum - expected).abs() < 1e-9);
        assert!(plan.n_bins() >= 1);
    }
}
