//! Property tests for the reconstruction invariants:
//! CPU ≡ GPU, chunking invariance, intensity conservation, cutoff monotonicity.

use cuda_sim::{Device, DeviceProps, ExecMode, Host, Interconnect, InterconnectProps};
use laue_core::cache::{DepthTableCache, DepthTables, TableCacheStats, TableKey};
use laue_core::cluster::reconstruct_cluster;
use laue_core::gpu::{GpuOptions, Layout, PipelineDepth, Triangulation};
use laue_core::{
    cpu, gpu, AccumulationMode, ClusterOptions, CompactionMode, InMemorySlabSource,
    ReconstructionConfig, ReductionTopology, ScanGeometry, ScanView,
};
use proptest::prelude::*;

/// A generated scan scenario: geometry dims + synthetic stack.
#[derive(Debug, Clone)]
struct Scenario {
    n_rows: usize,
    n_cols: usize,
    n_steps: usize,
    data: Vec<f64>,
    cutoff: f64,
    rows_per_slab: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=5, 2usize..=5, 3usize..=8).prop_flat_map(|(n_rows, n_cols, n_steps)| {
        let n = n_rows * n_cols * n_steps;
        (
            proptest::collection::vec(0.0..1000.0f64, n..=n),
            0.0..50.0f64,
            1usize..=5,
        )
            .prop_map(move |(data, cutoff, rows_per_slab)| Scenario {
                n_rows,
                n_cols,
                n_steps,
                data,
                cutoff,
                rows_per_slab: rows_per_slab.min(n_rows),
            })
    })
}

fn geometry(s: &Scenario) -> ScanGeometry {
    ScanGeometry::demo(s.n_rows, s.n_cols, s.n_steps, -40.0, 5.0).unwrap()
}

fn config(s: &Scenario) -> ReconstructionConfig {
    let mut cfg = ReconstructionConfig::new(-1500.0, 1500.0, 60);
    cfg.intensity_cutoff = s.cutoff;
    cfg.rows_per_slab = Some(s.rows_per_slab);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The GPU pipeline (sequential executor) reproduces the CPU baseline
    /// bit for bit, for any stack, cutoff and slab size.
    #[test]
    fn gpu_equals_cpu_bitwise(s in arb_scenario()) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let view = ScanView::new(&s.data, s.n_steps, s.n_rows, s.n_cols).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut src = InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let gpu_out = gpu::reconstruct(&device, &mut src, &geom, &cfg, Layout::Flat1d).unwrap();
        prop_assert_eq!(&cpu_out.image.data, &gpu_out.image.data);
        prop_assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    /// Both device layouts agree functionally; the pointer layout always
    /// costs at least as many transfers.
    #[test]
    fn layouts_agree(s in arb_scenario()) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let device = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut src = InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let flat = gpu::reconstruct(&device, &mut src, &geom, &cfg, Layout::Flat1d).unwrap();
        let mut src = InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let ptr = gpu::reconstruct(&device, &mut src, &geom, &cfg, Layout::Pointer3d).unwrap();
        prop_assert_eq!(&flat.image.data, &ptr.image.data);
        prop_assert!(ptr.meters.transfers >= flat.meters.transfers);
        prop_assert!(ptr.meters.comm_time_s >= flat.meters.comm_time_s);
    }

    /// Slab size never changes the answer (chunking invariance).
    #[test]
    fn chunking_invariance(s in arb_scenario()) {
        let geom = geometry(&s);
        let device = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut reference: Option<Vec<f64>> = None;
        for rows in 1..=s.n_rows {
            let mut cfg = config(&s);
            cfg.rows_per_slab = Some(rows);
            let mut src =
                InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
            let out = gpu::reconstruct(&device, &mut src, &geom, &cfg, Layout::Flat1d).unwrap();
            match &reference {
                None => reference = Some(out.image.data),
                Some(r) => prop_assert_eq!(r, &out.image.data),
            }
        }
    }

    /// The threaded device executor matches within FP-reassociation
    /// tolerance and produces identical statistics.
    #[test]
    fn threaded_executor_tolerant_match(s in arb_scenario(), workers in 2usize..5) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let view = ScanView::new(&s.data, s.n_steps, s.n_rows, s.n_cols).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        let device = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        device.set_exec_mode(ExecMode::Threaded(workers));
        let mut src = InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let gpu_out = gpu::reconstruct(&device, &mut src, &geom, &cfg, Layout::Flat1d).unwrap();
        let scale = cpu_out.image.data.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
        prop_assert!(cpu_out.image.max_abs_diff(&gpu_out.image) <= 1e-9 * scale);
        prop_assert_eq!(cpu_out.stats, gpu_out.stats);
    }

    /// Raising the cutoff never increases the number of active pairs, and
    /// stats stay internally consistent.
    #[test]
    fn cutoff_monotone(s in arb_scenario(), extra in 1.0..200.0f64) {
        let geom = geometry(&s);
        let view = ScanView::new(&s.data, s.n_steps, s.n_rows, s.n_cols).unwrap();
        let cfg_lo = config(&s);
        let mut cfg_hi = cfg_lo.clone();
        cfg_hi.intensity_cutoff += extra;
        let lo = cpu::reconstruct_seq(&view, &geom, &cfg_lo).unwrap();
        let hi = cpu::reconstruct_seq(&view, &geom, &cfg_hi).unwrap();
        prop_assert!(lo.stats.is_consistent());
        prop_assert!(hi.stats.is_consistent());
        prop_assert!(hi.stats.pairs_below_cutoff >= lo.stats.pairs_below_cutoff);
        prop_assert!(hi.stats.active_fraction() <= lo.stats.active_fraction() + 1e-12);
        prop_assert!(hi.cost.flops <= lo.cost.flops);
    }

    /// Total deposited intensity equals the sum of each deposited pair's
    /// in-window fraction of ΔI — intensity conservation at the run level.
    #[test]
    fn intensity_conservation(s in arb_scenario()) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let view = ScanView::new(&s.data, s.n_steps, s.n_rows, s.n_cols).unwrap();
        let out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
        // Recompute expected deposits directly through the pair planner.
        let mapper = geom.mapper().unwrap();
        let mut expected = 0.0;
        for r in 0..s.n_rows {
            for c in 0..s.n_cols {
                let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
                for z in 0..s.n_steps - 1 {
                    let mut fl = 0u64;
                    if let laue_core::pair::PairPlan::Deposit(plan) = laue_core::pair::plan_pair(
                        &mapper,
                        &cfg,
                        pixel,
                        geom.wire.center(z).unwrap(),
                        geom.wire.center(z + 1).unwrap(),
                        view.at(z, r, c),
                        view.at(z + 1, r, c),
                        &mut fl,
                    ) {
                        expected += plan.delta * (plan.hi - plan.lo) / plan.band_len;
                    }
                }
            }
        }
        let got = out.image.total_intensity();
        prop_assert!(
            (got - expected).abs() <= 1e-6 * (1.0 + expected.abs()),
            "conservation: got {}, expected {}", got, expected
        );
    }

    /// Cached depth tables are bit-identical to freshly computed ones for
    /// any geometry, and a cache hit never recomputes.
    #[test]
    fn cached_tables_bit_identical_to_fresh(s in arb_scenario()) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let mapper = geom.mapper().unwrap();
        let fresh = DepthTables::compute(&geom, &mapper, &cfg);
        let key = TableKey::new(&geom, &cfg);
        let cache = DepthTableCache::new(16 * 1024 * 1024);
        let mut run = TableCacheStats::default();
        let cached = cache.host_tables(&key, &mut run, || DepthTables::compute(&geom, &mapper, &cfg));
        let hit = cache.host_tables(&key, &mut run, || panic!("a hit must not recompute"));
        prop_assert_eq!(run.host_misses, 1);
        prop_assert_eq!(run.host_hits, 1);
        // Compare bit patterns: missed pixels are NaN, which `==` rejects.
        let bits = |t: &DepthTables| t.depths.iter().map(|d| d.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&fresh), bits(&cached));
        prop_assert_eq!(bits(&cached), bits(&hit));
    }

    /// A warm-cache reconstruction (host tables found, device-resident
    /// buffer reused) is bit-identical to the cold run for any geometry.
    #[test]
    fn warm_cache_reconstruction_matches_cold(s in arb_scenario()) {
        let geom = geometry(&s);
        let cfg = config(&s);
        let device = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let cache = DepthTableCache::new(8 * 1024 * 1024);
        let opts = GpuOptions {
            triangulation: Triangulation::HostTables,
            ..GpuOptions::default()
        };
        let run = || {
            let mut src =
                InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
            gpu::reconstruct_pipelined(
                &device, &mut src, &geom, &cfg, opts, PipelineDepth(2), Some(&cache),
            )
            .unwrap()
        };
        let cold = run();
        let warm = run();
        prop_assert_eq!(cold.table_cache.host_misses, 1);
        prop_assert_eq!(warm.table_cache.host_hits, 1);
        prop_assert_eq!(warm.table_cache.device_hits, 1);
        prop_assert_eq!(warm.host_table_flops, 0);
        prop_assert_eq!(&cold.image.data, &warm.image.data);
        prop_assert_eq!(cold.stats, warm.stats);
    }
}

/// A generated cluster shape for the reduction-order property: node count
/// (allowed to exceed the row count — excess nodes get empty bands), devices
/// per node, topology, overlap, and the per-slab execution knobs.
#[derive(Debug, Clone)]
struct ClusterShape {
    nodes: usize,
    per_node: usize,
    topology: ReductionTopology,
    overlap: bool,
    compaction: CompactionMode,
    accumulation: AccumulationMode,
}

fn arb_cluster_shape() -> impl Strategy<Value = ClusterShape> {
    (
        1usize..=6,
        1usize..=2,
        prop_oneof![Just(ReductionTopology::Tree), Just(ReductionTopology::Ring)],
        any::<bool>(),
        prop_oneof![
            Just(CompactionMode::Off),
            Just(CompactionMode::Auto),
            Just(CompactionMode::On)
        ],
        prop_oneof![
            Just(AccumulationMode::Atomic),
            Just(AccumulationMode::Privatized),
            Just(AccumulationMode::Auto)
        ],
    )
        .prop_map(
            |(nodes, per_node, topology, overlap, compaction, accumulation)| ClusterShape {
                nodes,
                per_node,
                topology,
                overlap,
                compaction,
                accumulation,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both inter-node reduction orders (tree and ring, overlapped or
    /// barriered) are bit-identical to the single-device reference for any
    /// stack density, node count, devices-per-node, compaction mode, and
    /// accumulation mode: row bands are disjoint, so the reduction is a
    /// gather and no floating-point reassociation can occur.
    #[test]
    fn cluster_reduction_order_is_bitwise_invisible(
        s in arb_scenario(),
        shape in arb_cluster_shape(),
    ) {
        let geom = geometry(&s);
        let mut cfg = config(&s);
        cfg.compaction = shape.compaction;
        cfg.accumulation = shape.accumulation;

        let single = Device::new(DeviceProps::tiny(16 * 1024 * 1024));
        let mut src =
            InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let reference =
            gpu::reconstruct(&single, &mut src, &geom, &cfg, Layout::Flat1d).unwrap();

        let hosts: Vec<_> = (0..shape.nodes).map(|_| Host::new_default()).collect();
        let devices: Vec<Vec<Device>> = hosts
            .iter()
            .map(|h| {
                (0..shape.per_node)
                    .map(|_| Device::new_on_host(DeviceProps::tiny(16 * 1024 * 1024), h))
                    .collect()
            })
            .collect();
        let refs: Vec<Vec<&Device>> =
            devices.iter().map(|ds| ds.iter().collect()).collect();
        let net = Interconnect::new("prop", shape.nodes, InterconnectProps::ib_qdr());
        let mut src =
            InMemorySlabSource::new(s.data.clone(), s.n_steps, s.n_rows, s.n_cols).unwrap();
        let out = reconstruct_cluster(
            &refs,
            &net,
            &mut src,
            &geom,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::SERIAL,
            None,
            ClusterOptions { topology: shape.topology, overlap: shape.overlap },
        )
        .unwrap();

        prop_assert_eq!(&reference.image.data, &out.image.data);
        // Under per-slab `Auto` compaction/accumulation the dense-vs-compact
        // decision depends on slab size, and node bands re-chunk the rows —
        // so attribution counters may shift between launches. The physical
        // counters cannot.
        prop_assert_eq!(reference.stats.pairs_deposited, out.stats.pairs_deposited);
        prop_assert_eq!(reference.stats.deposits, out.stats.deposits);
        if shape.compaction != CompactionMode::Auto
            && shape.accumulation != AccumulationMode::Auto
        {
            prop_assert_eq!(reference.stats, out.stats);
        }
        prop_assert_eq!(out.nodes.len(), shape.nodes);
        let rows: usize = out.nodes.iter().map(|n| n.rows).sum();
        prop_assert_eq!(rows, s.n_rows);
    }
}
