//! Property tests: random datasets round-trip through the container, and
//! every hyperslab read matches a naive in-memory reference.

use mh5::{AttrValue, Codec, Dtype, FileReader, FileWriter};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mh5_prop_{}_{n}.mh5", std::process::id()))
}

/// A random dataset description: shape, chunk shape, payload.
#[derive(Debug, Clone)]
struct Case {
    shape: Vec<usize>,
    chunk: Vec<usize>,
    data: Vec<u16>,
    codec: Codec,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..=4)
        .prop_flat_map(|rank| {
            proptest::collection::vec(1usize..=7, rank).prop_flat_map(move |shape| {
                let chunk_strategies: Vec<_> =
                    shape.iter().map(|&d| (1usize..=d).boxed()).collect();
                let n: usize = shape.iter().product();
                (
                    Just(shape),
                    chunk_strategies,
                    proptest::collection::vec(any::<u16>(), n..=n),
                    prop_oneof![Just(Codec::Raw), Just(Codec::Rle)],
                )
            })
        })
        .prop_map(|(shape, chunk, data, codec)| Case {
            shape,
            chunk,
            data,
            codec,
        })
}

/// Naive reference hyperslab extraction.
fn reference_slab(data: &[u16], shape: &[usize], offset: &[usize], count: &[usize]) -> Vec<u16> {
    let rank = shape.len();
    let mut strides = vec![1usize; rank];
    for i in (0..rank - 1).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let n: usize = count.iter().product();
    let mut out = Vec::with_capacity(n);
    let mut idx = vec![0usize; rank];
    loop {
        let lin: usize = (0..rank).map(|i| (offset[i] + idx[i]) * strides[i]).sum();
        out.push(data[lin]);
        let mut axis = rank;
        loop {
            if axis == 0 {
                return out;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < count[axis] {
                break;
            }
            idx[axis] = 0;
            if axis == 0 {
                return out;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_all_read_all_round_trip(case in arb_case()) {
        let path = tmp();
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset_with_codec(
                FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk, case.codec,
            )
            .unwrap();
        w.write_all(ds, &case.data).unwrap();
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let ds = r.resolve_path("/d").unwrap();
        let back: Vec<u16> = r.read_all(ds).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, case.data);
    }

    #[test]
    fn hyperslabs_match_reference(case in arb_case(), seed in any::<u64>()) {
        let path = tmp();
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset_with_codec(
                FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk, case.codec,
            )
            .unwrap();
        w.write_all(ds, &case.data).unwrap();
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let ds = r.resolve_path("/d").unwrap();

        // Derive a deterministic slab from the seed instead of a nested
        // runner: offset_i = seed % dim, count fills the rest.
        let mut s = seed;
        let mut offset = Vec::new();
        let mut count = Vec::new();
        for &d in &case.shape {
            let o = (s % d as u64) as usize;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = 1 + (s % (d - o) as u64) as usize;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            offset.push(o);
            count.push(c);
        }
        let got: Vec<u16> = r.read_hyperslab(ds, &offset, &count).unwrap();
        let want = reference_slab(&case.data, &case.shape, &offset, &count);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn chunked_writes_equal_bulk_writes(case in arb_case()) {
        // Write the same data once with write_all and once chunk-by-chunk
        // (in reverse order, which the format permits); files must read back
        // identically.
        let p1 = tmp();
        let p2 = tmp();
        {
            let mut w = FileWriter::create(&p1).unwrap();
            let ds = w
                .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk)
                .unwrap();
            w.write_all(ds, &case.data).unwrap();
            w.finish().unwrap();
        }
        {
            // Reconstruct each chunk's payload via the reference extractor.
            let mut w = FileWriter::create(&p2).unwrap();
            let ds = w
                .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk)
                .unwrap();
            let rank = case.shape.len();
            let grid: Vec<usize> =
                (0..rank).map(|i| case.shape[i].div_ceil(case.chunk[i])).collect();
            let n_chunks: usize = grid.iter().product();
            for ci in (0..n_chunks).rev() {
                // chunk coords
                let mut rem = ci;
                let mut coords = vec![0usize; rank];
                for i in (0..rank).rev() {
                    coords[i] = rem % grid[i];
                    rem /= grid[i];
                }
                let origin: Vec<usize> =
                    (0..rank).map(|i| coords[i] * case.chunk[i]).collect();
                let extent: Vec<usize> = (0..rank)
                    .map(|i| case.chunk[i].min(case.shape[i] - origin[i]))
                    .collect();
                let payload = reference_slab(&case.data, &case.shape, &origin, &extent);
                w.write_chunk(ds, ci, &payload).unwrap();
            }
            w.finish().unwrap();
        }
        let r1 = FileReader::open(&p1).unwrap();
        let r2 = FileReader::open(&p2).unwrap();
        let a: Vec<u16> = r1.read_all(r1.resolve_path("/d").unwrap()).unwrap();
        let b: Vec<u16> = r2.read_all(r2.resolve_path("/d").unwrap()).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn extendable_append_equals_bulk_write(
        slice_shape in proptest::collection::vec(1usize..=5, 1..=2),
        n_slices in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let per_slice: usize = slice_shape.iter().product();
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as u16
        };
        let data: Vec<u16> = (0..n_slices * per_slice).map(|_| next()).collect();

        // Write once with append_slice…
        let p1 = tmp();
        {
            let mut w = FileWriter::create(&p1).unwrap();
            let chunk: Vec<usize> = slice_shape.iter().map(|&d| d.max(1).min(d)).collect();
            let ds = w
                .create_extendable_dataset(FileWriter::ROOT, "d", Dtype::U16, &slice_shape, &chunk)
                .unwrap();
            for s in 0..n_slices {
                w.append_slice(ds, &data[s * per_slice..(s + 1) * per_slice]).unwrap();
            }
            w.finish().unwrap();
        }
        // …and once as an ordinary dataset of the final shape.
        let p2 = tmp();
        {
            let mut w = FileWriter::create(&p2).unwrap();
            let mut shape = vec![n_slices];
            shape.extend_from_slice(&slice_shape);
            let mut chunk = vec![1usize];
            chunk.extend_from_slice(&slice_shape);
            let ds = w
                .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &shape, &chunk)
                .unwrap();
            w.write_all(ds, &data).unwrap();
            w.finish().unwrap();
        }
        let r1 = FileReader::open(&p1).unwrap();
        let r2 = FileReader::open(&p2).unwrap();
        let a: Vec<u16> = r1.read_all(r1.resolve_path("/d").unwrap()).unwrap();
        let b: Vec<u16> = r2.read_all(r2.resolve_path("/d").unwrap()).unwrap();
        let info = r1.dataset_info(r1.resolve_path("/d").unwrap()).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        prop_assert_eq!(&a, &data);
        prop_assert_eq!(a, b);
        prop_assert_eq!(info.shape[0], n_slices);
    }

    #[test]
    fn payload_bit_flips_never_panic(
        case in arb_case(),
        byte_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        // Flip a bit anywhere in the payload region: reads must either
        // succeed (flip landed in padding) or fail cleanly — never panic,
        // and never silently return corrupted data for RAW chunks.
        let path = tmp();
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk)
            .unwrap();
        w.write_all(ds, &case.data).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let payload_region = 36..bytes.len().saturating_sub(8);
        prop_assume!(payload_region.len() > 1);
        let idx = payload_region.start
            + ((payload_region.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match FileReader::open(&path) {
            Err(_) => {}
            Ok(r) => match r.resolve_path("/d") {
                Err(_) => {}
                Ok(ds) => match r.read_all::<u16>(ds) {
                    Err(_) => {}
                    Ok(back) => {
                        // A successful read after a flip means the flip hit
                        // dead space — data must be intact.
                        prop_assert_eq!(back, case.data);
                    }
                },
            },
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_bit_flips_never_panic(case in arb_case(), byte in 0usize..36, bit in 0u8..8) {
        let path = tmp();
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &case.shape, &case.chunk)
            .unwrap();
        w.write_all(ds, &case.data).unwrap();
        w.set_attr(FileWriter::ROOT, "note", AttrValue::Str("prop".into())).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // Must either open fine (flip was in padding) or error cleanly.
        if let Ok(r) = FileReader::open(&path) {
            let _ = r.read_all::<u16>(r.resolve_path("/d").unwrap());
        }
        std::fs::remove_file(&path).ok();
    }
}
