//! `mh5ls` — list the contents of an mh5 file, in the spirit of `h5ls -rv`.
//!
//! Usage: `mh5ls <file.mh5> [<file.mh5> …]`

use mh5::tools::dump_tree;
use mh5::FileReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: mh5ls <file.mh5> [<file.mh5> …]");
        return ExitCode::from(2);
    }
    let mut status = ExitCode::SUCCESS;
    for path in &args {
        if args.len() > 1 {
            println!("== {path} ==");
        }
        match FileReader::open(path).and_then(|r| dump_tree(&r)) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("mh5ls: {path}: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}
