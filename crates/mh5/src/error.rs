//! Error type for the mh5 container.

use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing an mh5 file.
#[derive(Debug)]
pub enum Mh5Error {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the mh5 magic.
    BadMagic([u8; 8]),
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims.
    Truncated { expected: u64, actual: u64 },
    /// Metadata CRC mismatch.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// Structurally invalid metadata or chunk payload.
    Corrupt(String),
    /// Lookup of a path or name failed.
    NotFound(String),
    /// A child with this name already exists in the group.
    DuplicateName(String),
    /// Object names must be non-empty and must not contain `/` or NUL.
    InvalidName(String),
    /// The object exists but has the wrong kind (group vs dataset).
    WrongKind {
        path: String,
        expected: &'static str,
    },
    /// Element type requested does not match the dataset dtype.
    TypeMismatch {
        expected: &'static str,
        actual: &'static str,
    },
    /// Shape/chunk-shape validation failure.
    BadShape(String),
    /// A hyperslab selection leaves the dataset bounds.
    SelectionOutOfBounds {
        axis: usize,
        offset: usize,
        count: usize,
        extent: usize,
    },
    /// Data length handed to a write does not match the selection.
    LengthMismatch { expected: usize, actual: usize },
    /// Writer misuse: operating on a finished writer, double-writing a
    /// dataset, or finishing with unwritten datasets.
    WriterState(String),
}

impl fmt::Display for Mh5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mh5Error::Io(e) => write!(f, "I/O error: {e}"),
            Mh5Error::BadMagic(m) => write!(f, "not an mh5 file (magic {m:02x?})"),
            Mh5Error::UnsupportedVersion(v) => write!(f, "unsupported mh5 format version {v}"),
            Mh5Error::Truncated { expected, actual } => {
                write!(f, "file truncated: header records {expected} bytes, found {actual}")
            }
            Mh5Error::ChecksumMismatch { stored, computed } => write!(
                f,
                "metadata checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Mh5Error::Corrupt(what) => write!(f, "corrupt file: {what}"),
            Mh5Error::NotFound(path) => write!(f, "object not found: {path}"),
            Mh5Error::DuplicateName(name) => write!(f, "name already exists in group: {name}"),
            Mh5Error::InvalidName(name) => {
                write!(f, "invalid object name {name:?}: must be non-empty, no '/' or NUL")
            }
            Mh5Error::WrongKind { path, expected } => {
                write!(f, "{path} is not a {expected}")
            }
            Mh5Error::TypeMismatch { expected, actual } => {
                write!(f, "dataset holds {actual}, requested {expected}")
            }
            Mh5Error::BadShape(what) => write!(f, "invalid shape: {what}"),
            Mh5Error::SelectionOutOfBounds { axis, offset, count, extent } => write!(
                f,
                "hyperslab out of bounds on axis {axis}: offset {offset} + count {count} > extent {extent}"
            ),
            Mh5Error::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match selection size {expected}")
            }
            Mh5Error::WriterState(what) => write!(f, "writer misuse: {what}"),
        }
    }
}

impl std::error::Error for Mh5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Mh5Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Mh5Error {
    fn from(e: io::Error) -> Self {
        Mh5Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Mh5Error::BadMagic(*b"NOTMH5!!")
            .to_string()
            .contains("not an mh5 file"));
        assert!(Mh5Error::Truncated {
            expected: 100,
            actual: 7
        }
        .to_string()
        .contains("100"));
        let e = Mh5Error::SelectionOutOfBounds {
            axis: 2,
            offset: 5,
            count: 9,
            extent: 10,
        };
        assert!(e.to_string().contains("axis 2"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: Mh5Error = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
